from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"

setup(
    name="imprecise-repro",
    version="1.0.0",
    description=(
        "Reproduction of IMPrECISE: good-is-good-enough probabilistic XML"
        " data integration (ICDE 2008)"
    ),
    long_description=(
        README.read_text(encoding="utf-8") if README.exists() else ""
    ),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["imprecise=repro.cli:main"]},
    extras_require={
        "test": ["pytest", "hypothesis"],
        "bench": ["pytest", "pytest-benchmark"],
    },
)
