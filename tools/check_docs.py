#!/usr/bin/env python3
"""Documentation link checker (stdlib only; used by the CI docs job).

Scans the repository's Markdown (root ``*.md`` + ``docs/``) and checks
that every relative link resolves:

* ``[text](path)`` — the target file/directory must exist (relative to
  the containing file);
* ``[text](path#anchor)`` / ``[text](#anchor)`` — the target heading
  must exist in the (target or same) file, using GitHub's slugging
  (lowercase, spaces → ``-``, punctuation dropped);
* ``http(s)://`` and ``mailto:`` links are skipped (no network in CI).

It also flags **orphaned pages**: a file under ``docs/`` that no other
Markdown file links to is unreachable from the entry points and fails
the check (root-level ``*.md`` are the entry points and are exempt).

Exit status: 0 when every link resolves and no page is orphaned,
1 otherwise (each failure is listed as ``file:line: message``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: [text](target) — won't match images' leading '!' capture; images are
#: links too and are checked the same way.
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files() -> list[Path]:
    files = sorted(ROOT.glob("*.md"))
    files.extend(sorted((ROOT / "docs").glob("**/*.md")))
    return [path for path in files if path.is_file()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markdown, lowercase, drop punctuation,
    spaces to hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(1)))
    return anchors


def iter_links(path: Path):
    """(line_number, target) pairs, skipping fenced code blocks."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), 1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield number, match.group(1)


def check() -> list[str]:
    failures = []
    anchor_cache: dict = {}
    linked_targets: set = set()
    files = markdown_files()
    for path in files:
        for line_number, target in iter_links(path):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            where = f"{path.relative_to(ROOT)}:{line_number}"
            target, _, fragment = target.partition("#")
            if target:
                resolved = (path.parent / target).resolve()
                if not resolved.exists():
                    failures.append(f"{where}: broken link -> {target}")
                    continue
                if resolved != path.resolve():
                    linked_targets.add(resolved)
            else:
                resolved = path
            if fragment:
                if not resolved.is_file() or resolved.suffix != ".md":
                    continue  # anchors into non-markdown: not checkable
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = anchors_of(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    failures.append(
                        f"{where}: missing anchor"
                        f" #{fragment} in {resolved.name}"
                    )
    # Orphan detection: every page under docs/ must be reachable from
    # some *other* markdown file, or readers will never find it.
    # Root-level pages (README.md, ROADMAP.md, ...) are entry points and
    # exempt.
    for path in files:
        if path.parent == ROOT:
            continue
        if path.resolve() not in linked_targets:
            failures.append(
                f"{path.relative_to(ROOT)}: orphaned page — not linked"
                f" from any other markdown file"
            )
    return failures


def main() -> int:
    files = markdown_files()
    failures = check()
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        print(f"\n{len(failures)} documentation problem(s)", file=sys.stderr)
        return 1
    total = sum(1 for path in files for _ in iter_links(path))
    print(f"checked {total} links across {len(files)} markdown files: all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
