"""Repository tooling (stdlib only): docs checker, impreciselint."""
