"""CLI for impreciselint: ``python -m tools.impreciselint src/``.

Exit status 0 when the tree is clean modulo suppressions and the
baseline, 1 when new findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    report_json,
    run_paths,
    save_baseline,
)
from .rules import CHECKERS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.impreciselint",
        description="AST-based invariant checker for the IMPrECISE repro.",
    )
    parser.add_argument(
        "paths", nargs="+", type=Path, help="files or directories to check"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline JSON of grandfathered findings"
        " (default: tools/impreciselint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline and report every finding",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help=f"comma-separated subset of rules ({', '.join(CHECKERS)})",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write a machine-readable report to PATH",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current findings",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    rules = None
    if args.rules is not None:
        rules = [name.strip() for name in args.rules.split(",") if name.strip()]
    try:
        findings, suppressed, checked = run_paths(args.paths, rules=rules)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.update_baseline:
        save_baseline(args.baseline, findings)
        print(
            f"wrote {args.baseline} with {len(findings)} finding(s)"
            f" from {checked} file(s)"
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(args.baseline)
    new, baselined, stale = apply_baseline(findings, baseline)

    if args.json is not None:
        payload = report_json(
            new=new,
            baselined=baselined,
            suppressed=suppressed,
            stale=stale,
            checked_files=checked,
        )
        args.json.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    for finding in new:
        print(finding.render())
    for identity in stale:
        print(f"note: stale baseline entry (prune it): {identity}")
    summary = (
        f"{checked} file(s): {len(new)} new finding(s),"
        f" {len(baselined)} baselined, {suppressed} suppressed"
    )
    print(summary)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
