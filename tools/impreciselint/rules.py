"""The five impreciselint rule families.

Each checker is a function ``(SourceModule) -> list[Finding]``; the
registry at the bottom (:data:`CHECKERS`) is what the runner iterates.
Rules self-scope: a checker first decides whether the file is one it
guards (path-suffix match against the scope tuples below, or presence of
a marker comment) and returns nothing otherwise, so the whole tree can
be scanned with one command.

Scope tuples are *suffixes* of posix paths, which makes the rules
testable against fixture trees (``tmp/repro/probability.py`` matches the
same rules as ``src/repro/probability.py``).
"""

from __future__ import annotations

import ast
import hashlib
import re
from typing import Iterator, Optional

from . import Finding, SourceModule

__all__ = [
    "CHECKERS",
    "FLOAT_TAINT_SCOPE",
    "FLOAT_TAINT_ALLOWLIST",
    "NO_RECURSION_SCOPE",
    "NO_SWALLOW_SCOPE",
    "CONTRACT_CODEC_SCOPE",
    "check_float_taint",
    "check_lock_discipline",
    "check_no_recursion",
    "check_no_swallow",
    "check_contract_drift",
    "codec_surface_digest",
]


def _scoped_nodes(root: ast.AST, qualname: str = "<module>") -> Iterator:
    """Yield ``(node, qualname)`` for every node, where ``qualname`` is
    the dotted class/function scope the node lives in."""
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            inner = (
                child.name
                if qualname == "<module>"
                else f"{qualname}.{child.name}"
            )
            yield child, qualname
            yield from _scoped_nodes(child, inner)
        else:
            yield child, qualname
            yield from _scoped_nodes(child, qualname)


# -- float-taint --------------------------------------------------------------

#: Probability-carrying modules: float literals, ``float()``, true
#: division, ``math.*`` and ``float`` annotations are all suspect here.
FLOAT_TAINT_SCOPE = (
    "repro/probability.py",
    "repro/pxml/events.py",
    "repro/pxml/events_cache.py",
    "repro/pxml/events_compile.py",
    "repro/feedback/conditioning.py",
    "repro/query/plan.py",
    "repro/query/aggregates.py",
    "repro/query/fusion.py",
    "repro/query/ranking.py",
    "repro/query/approximate.py",
    "repro/core/similarity.py",
    "repro/core/estimate.py",
    "repro/dbms/cache_store.py",
    "repro/server/wire.py",
)

#: Explicitly-lossy display surfaces: (path suffix, qualname) -> reason.
#: These functions exist to turn exact Fractions into human-facing text,
#: so their float use is the contract, not a leak.
FLOAT_TAINT_ALLOWLIST = {
    (
        "repro/probability.py",
        "format_probability",
    ): "display-only decimal rendering of an exact Fraction",
    (
        "repro/probability.py",
        "format_percent",
    ): "display-only percent rendering (ranked-answer tables)",
}


def _allowlisted(module: SourceModule, qualname: str) -> bool:
    posix = module.path.as_posix()
    for (suffix, allowed), _reason in FLOAT_TAINT_ALLOWLIST.items():
        if posix.endswith(suffix) and (
            qualname == allowed or qualname.startswith(allowed + ".")
        ):
            return True
    return False


def _annotation_has_float(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    return any(
        isinstance(node, ast.Name) and node.id == "float"
        for node in ast.walk(annotation)
    )


def check_float_taint(module: SourceModule) -> list:
    if not module.matches(FLOAT_TAINT_SCOPE):
        return []
    findings: list = []

    def report(node: ast.AST, qualname: str, detail: str, message: str) -> None:
        if _allowlisted(module, qualname):
            return
        findings.append(
            Finding(
                rule="float-taint",
                path=module.rel,
                line=getattr(node, "lineno", 1),
                qualname=qualname,
                detail=detail,
                message=message,
            )
        )

    for node, qualname in _scoped_nodes(module.tree):
        if isinstance(node, ast.Constant) and type(node.value) is float:
            report(
                node,
                qualname,
                f"float-literal:{node.value!r}",
                f"float literal {node.value!r} in probability-carrying module"
                " (use Fraction)",
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            report(
                node,
                qualname,
                "float-call",
                "float(...) conversion in probability-carrying module"
                " (convert via repro.probability.as_probability)",
            )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            report(
                node,
                qualname,
                "true-division",
                "true division in probability-carrying module (floats unless"
                " both operands are exact; use Fraction or justify inline)",
            )
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "math"
        ):
            report(
                node,
                qualname,
                f"math.{node.attr}",
                f"math.{node.attr} in probability-carrying module"
                " (float-valued; keep exactness or justify inline)",
            )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            annotated = [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                args.vararg,
                args.kwarg,
            ]
            tainted = any(
                arg is not None and _annotation_has_float(arg.annotation)
                for arg in annotated
            ) or _annotation_has_float(node.returns)
            if tainted:
                inner = (
                    node.name
                    if qualname == "<module>"
                    else f"{qualname}.{node.name}"
                )
                report(
                    node,
                    inner,
                    "float-annotation",
                    f"{node.name} declares float in its signature inside a"
                    " probability-carrying module (accept ProbLike and coerce"
                    " via as_probability)",
                )
        elif isinstance(node, ast.AnnAssign) and _annotation_has_float(
            node.annotation
        ):
            report(
                node,
                qualname,
                "float-annotation",
                "float-annotated binding in probability-carrying module",
            )
    return findings


# -- lock-discipline ----------------------------------------------------------

_GUARDED_BY_RE = re.compile(r"#\s*impreciselint:\s*guarded-by=([A-Za-z_]\w*)")

#: Method names whose call mutates the receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "add",
        "remove",
        "discard",
        "setdefault",
        "move_to_end",
    }
)

#: Construction happens before the object is shared; no lock needed.
_EXEMPT_METHODS = frozenset({"__init__", "__new__"})


def _guard_name(module: SourceModule, node: ast.ClassDef) -> Optional[str]:
    """The declared lock attribute, read from a ``guarded-by`` marker on
    the class header (the ``class`` line through the first body
    statement — conventionally the docstring)."""
    stop = node.body[0].end_lineno if node.body else node.lineno
    for line in module.lines[node.lineno - 1 : stop]:
        match = _GUARDED_BY_RE.search(line)
        if match:
            return match.group(1)
    return None


def _root_self_attr(node: ast.AST) -> Optional[str]:
    """For ``self.X``, ``self.X[...]``, ``self.X.Y[...]`` … the name of
    the attribute on ``self`` at the root of the chain, else ``None``."""
    chain: list = []
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        else:
            break
    if isinstance(current, ast.Name) and current.id == "self" and chain:
        return chain[-1]
    return None


def _lockish(expr: ast.AST, guard: str) -> bool:
    """Does a ``with`` context expression acquire the class's lock?
    Matches the declared guard attribute and anything lock-named, which
    covers shard-lock helpers like ``self._name_lock(name)``."""
    names = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return guard in names or any("lock" in name.lower() for name in names)


def check_lock_discipline(module: SourceModule) -> list:
    findings: list = []
    for node, qualname in _scoped_nodes(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        guard = _guard_name(module, node)
        if guard is None:
            continue
        class_qual = (
            node.name if qualname == "<module>" else f"{qualname}.{node.name}"
        )
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _EXEMPT_METHODS or method.name.endswith("_locked"):
                # ``*_locked`` is the repo's caller-holds-the-lock naming
                # convention (see docs/development.md).
                continue
            _check_method(
                module, findings, f"{class_qual}.{method.name}", method, guard
            )
    return findings


def _check_method(
    module: SourceModule,
    findings: list,
    qualname: str,
    method: ast.AST,
    guard: str,
) -> None:
    def report(node: ast.AST, detail: str, message: str) -> None:
        findings.append(
            Finding(
                rule="lock-discipline",
                path=module.rel,
                line=node.lineno,
                qualname=qualname,
                detail=detail,
                message=message,
            )
        )

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inside = guarded or any(
                _lockish(item.context_expr, guard) for item in node.items
            )
            for child in ast.iter_child_nodes(node):
                visit(child, inside)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A closure created under the lock may run after it is
            # released — its body starts over as unguarded.
            for child in ast.iter_child_nodes(node):
                visit(child, False)
            return
        if not guarded:
            targets: list = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for target in targets:
                attr = _root_self_attr(target)
                if attr is not None:
                    report(
                        node,
                        f"unguarded-write:{attr}",
                        f"write to guarded attribute self.{attr} outside"
                        f" `with self.{guard}` (or a *lock* context)",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                attr = _root_self_attr(node.func.value)
                if attr is not None:
                    report(
                        node,
                        f"unguarded-mutation:{attr}.{node.func.attr}",
                        f"self.{attr}.{node.func.attr}(...) mutates guarded"
                        f" state outside `with self.{guard}`",
                    )
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    for statement in method.body:
        visit(statement, False)


# -- no-recursion -------------------------------------------------------------

#: The PR-4 worklist contract: these modules must stay recursion-free so
#: deep documents cannot blow the interpreter stack.
NO_RECURSION_SCOPE = (
    "repro/pxml/events.py",
    "repro/pxml/events_compile.py",
    "repro/query/aggregates.py",
)


def check_no_recursion(module: SourceModule) -> list:
    if not module.matches(NO_RECURSION_SCOPE):
        return []

    # Collect module-level functions and class methods as graph nodes.
    functions: dict = {}  # ("", name) or (class, name) -> def node
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[("", node.name)] = node
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions[(node.name, member.name)] = member

    edges: dict = {key: set() for key in functions}
    for (owner, name), definition in functions.items():
        for node in ast.walk(definition):
            if not isinstance(node, ast.Call):
                continue
            callee = None
            if isinstance(node.func, ast.Name) and ("", node.func.id) in functions:
                callee = ("", node.func.id)
            elif (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and owner
                and (owner, node.func.attr) in functions
            ):
                callee = (owner, node.func.attr)
            if callee is not None:
                edges[(owner, name)].add(callee)

    findings: list = []
    for cycle in _cycles(edges):
        display = sorted(
            f"{owner}.{name}" if owner else name for owner, name in cycle
        )
        detail = "cycle:" + "+".join(display)
        for key in cycle:
            definition = functions[key]
            owner, name = key
            qualname = f"{owner}.{name}" if owner else name
            findings.append(
                Finding(
                    rule="no-recursion",
                    path=module.rel,
                    line=definition.lineno,
                    qualname=qualname,
                    detail=detail,
                    message=(
                        f"{qualname} participates in recursion"
                        f" ({' <-> '.join(display)}) in a worklist-contract"
                        " module — rewrite with an explicit stack"
                    ),
                )
            )
    return findings


def _cycles(edges: dict) -> list:
    """Strongly connected components of size > 1, plus self-loops
    (iterative Tarjan — the recursion linter must not recurse)."""
    index: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    counter = [0]
    components: list = []

    for start in edges:
        if start in index:
            continue
        work = [(start, iter(sorted(edges[start])))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(edges[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in edges[node]:
                    components.append(sorted(component))
    return components


# -- no-swallow ---------------------------------------------------------------

#: Supervisor / fault-hook modules: the self-healing story depends on
#: :class:`~repro.errors.CacheBusyError` and
#: :class:`~repro.errors.DeadlineExceededError` reaching their sanctioned
#: handling points (absorb-and-count, HTTP 504) — a handler here that
#: could catch one and not re-raise hides a fault instead of healing it.
NO_SWALLOW_SCOPE = (
    "repro/server/multiproc.py",
    "repro/dbms/service.py",
    "repro/dbms/cache_store.py",
    "repro/testing/faults.py",
)

#: The two critical exceptions, plus every umbrella type (and the bare
#: ``except:``, handled separately) whose handler would catch them.
_NO_SWALLOW_CRITICAL = frozenset(
    {"CacheBusyError", "DeadlineExceededError", "Exception", "BaseException"}
)


def _handler_type_names(annotation: ast.AST) -> set:
    """The exception class names an ``except <annotation>`` catches —
    ``Name`` ids and ``Attribute`` tails, through tuples."""
    names: set = set()
    nodes = (
        annotation.elts if isinstance(annotation, ast.Tuple) else [annotation]
    )
    for node in nodes:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a ``raise`` of its own (nested
    callables excluded — a closure raising later proves nothing about
    this handler's control flow)."""
    stack: list = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def check_no_swallow(module: SourceModule) -> list:
    if not module.matches(NO_SWALLOW_SCOPE):
        return []
    findings: list = []
    for node, qualname in _scoped_nodes(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            caught = "bare"
        else:
            hit = sorted(
                _handler_type_names(node.type) & _NO_SWALLOW_CRITICAL
            )
            if not hit:
                continue
            caught = "+".join(hit)
        if _handler_reraises(node):
            continue
        findings.append(
            Finding(
                rule="no-swallow",
                path=module.rel,
                line=node.lineno,
                qualname=qualname,
                detail=f"swallow:{caught}",
                message=(
                    f"except handler catching {caught} swallows"
                    " CacheBusyError/DeadlineExceededError in a"
                    " supervisor/fault-hook module — re-raise, or"
                    " disable with a reason at a sanctioned absorb point"
                ),
            )
        )
    return findings


# -- contract-drift -----------------------------------------------------------

#: Codec modules and the version constant each must reference.
CONTRACT_CODEC_SCOPE = {
    "repro/dbms/cache_store.py": "SCHEMA_VERSION",
    "repro/server/wire.py": "WIRE_VERSION",
}

_PIN_RE = re.compile(r"#\s*impreciselint:\s*schema-surface=([0-9a-f]{12})")


def codec_surface_digest(module: SourceModule) -> str:
    """A 12-hex-digit fingerprint of the module's codec *surface*: the
    whitespace-free string constants inside ``encode_*``/``decode_*``
    functions (field keys and formats; prose and docstrings contain
    spaces and are excluded), module-level ``*_FIELDS`` tuples, and
    whitespace-normalised ``CREATE TABLE`` statements.  Adding a field
    or column changes the digest; rewording an error message does not.
    """
    items: list = []
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node.name.startswith("encode_") or node.name.startswith("decode_")
        ):
            tokens = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    text = sub.value
                    if text and not any(ch.isspace() for ch in text):
                        tokens.add(text)
            items.append(f"fn:{node.name}:" + ",".join(sorted(tokens)))
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Tuple):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.endswith("_FIELDS"):
                    elements = ",".join(
                        repr(element.value)
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                    )
                    items.append(f"fields:{target.id}:{elements}")
    for sub in ast.walk(module.tree):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and "create table" in sub.value.lower()
        ):
            items.append("sql:" + " ".join(sub.value.split()))
    digest = hashlib.blake2b("\n".join(sorted(items)).encode(), digest_size=6)
    return digest.hexdigest()


def _check_codec_surface(module: SourceModule) -> list:
    posix = module.path.as_posix()
    version_name = next(
        (
            name
            for suffix, name in CONTRACT_CODEC_SCOPE.items()
            if posix.endswith(suffix)
        ),
        None,
    )
    if version_name is None:
        return []
    findings: list = []

    version_line = None
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == version_name
            for target in node.targets
        ):
            version_line = node.lineno
    if version_line is None:
        findings.append(
            Finding(
                rule="contract-drift",
                path=module.rel,
                line=1,
                qualname="<module>",
                detail="version-constant",
                message=f"codec module must define {version_name}",
            )
        )

    expected = codec_surface_digest(module)
    pin = None
    pin_line = version_line or 1
    for number, line in enumerate(module.lines, 1):
        match = _PIN_RE.search(line)
        if match:
            pin, pin_line = match.group(1), number
            break
    if pin is None:
        findings.append(
            Finding(
                rule="contract-drift",
                path=module.rel,
                line=pin_line,
                qualname="<module>",
                detail="surface-pin",
                message=(
                    "codec surface is unpinned — add"
                    f" `# impreciselint: schema-surface={expected}` next to"
                    f" {version_name}"
                ),
            )
        )
    elif pin != expected:
        findings.append(
            Finding(
                rule="contract-drift",
                path=module.rel,
                line=pin_line,
                qualname="<module>",
                detail="surface-pin",
                message=(
                    f"codec surface changed (pin {pin}, now {expected}) —"
                    f" decide whether {version_name} must bump, then update"
                    " the schema-surface pin"
                ),
            )
        )
    return findings


def _module_is_public_repro(module: SourceModule) -> bool:
    parts = module.path.parts
    if "repro" not in parts:
        return False
    tail = parts[parts.index("repro") + 1 :]
    for part in tail:
        name = part[:-3] if part.endswith(".py") else part
        if name.startswith("_") and name != "__init__":
            return False
    return True


def _check_public_docs(module: SourceModule) -> list:
    if not _module_is_public_repro(module):
        return []
    findings: list = []
    for node in module.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):
            continue
        missing = []
        if ast.get_docstring(node) is None:
            missing.append("a docstring")
        if node.returns is None:
            missing.append("a return annotation")
        if missing:
            findings.append(
                Finding(
                    rule="contract-drift",
                    path=module.rel,
                    line=node.lineno,
                    qualname=node.name,
                    detail=f"public-docs:{node.name}",
                    message=(
                        f"public function {node.name} is missing"
                        f" {' and '.join(missing)}"
                    ),
                )
            )
    return findings


def check_contract_drift(module: SourceModule) -> list:
    return _check_codec_surface(module) + _check_public_docs(module)


CHECKERS = {
    "float-taint": check_float_taint,
    "lock-discipline": check_lock_discipline,
    "no-recursion": check_no_recursion,
    "no-swallow": check_no_swallow,
    "contract-drift": check_contract_drift,
}
