"""impreciselint — AST-based invariant checker for the IMPrECISE repro.

The repository's correctness story rests on conventions that ordinary
test suites cannot see: probabilities must stay exact
:class:`fractions.Fraction` values end to end, shared ``dbms`` state must
only be mutated under its locks, and the PR-4 event kernel must stay
worklist-driven.  This package checks those conventions *structurally*,
from the AST, with no third-party dependencies.  Rule families (see
:mod:`tools.impreciselint.rules` and ``docs/development.md``):

``float-taint``
    Float literals, ``float()`` calls, true division, ``math.*`` use and
    ``float`` annotations inside the probability-carrying modules.
``lock-discipline``
    Writes to attributes of a ``# impreciselint: guarded-by=<lock>``
    class outside a ``with <lock>:`` block.
``no-recursion``
    Direct or mutual recursion in the worklist-contract modules.
``no-swallow``
    ``except`` handlers in the supervisor/fault-hook modules that could
    catch ``CacheBusyError`` or ``DeadlineExceededError`` (bare, the
    umbrella ``Exception``/``BaseException``, or the types themselves)
    without re-raising — the self-healing tier must route those to
    their sanctioned handling points, never drop them.
``contract-drift``
    Codec field changes without a schema/wire version acknowledgement,
    and public ``repro.*`` functions missing docstrings or return
    annotations.

Findings can be silenced three ways, in increasing scope:

* ``# impreciselint: disable=RULE[,RULE] -- reason`` on the finding's
  line or the line directly above it;
* ``# impreciselint: disable-file=RULE -- reason`` anywhere in a file;
* an entry in the checked-in baseline (``baseline.json``) keyed by the
  finding's stable identity — grandfathered findings that should not
  grow in number but are not worth churning code over.

The CLI lives in ``__main__.py``: ``python -m tools.impreciselint src/``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional

__all__ = [
    "Finding",
    "SourceModule",
    "Suppressions",
    "RULE_NAMES",
    "load_source",
    "iter_source_files",
    "run_paths",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "report_json",
]

#: Repository root (``tools/impreciselint/`` is two levels down).
REPO_ROOT = Path(__file__).resolve().parents[2]

#: Default baseline location — next to this package so that
#: ``python -m tools.impreciselint src/`` needs no flags.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``identity`` deliberately excludes the line number: baselines must
    survive unrelated edits above a grandfathered finding.  ``detail``
    is the stable discriminator within a scope (e.g. which attribute was
    written, which literal appeared).
    """

    rule: str
    path: str  # repository-relative posix path (stable across checkouts)
    line: int
    qualname: str  # enclosing class/function path, or "<module>"
    detail: str
    message: str

    @property
    def identity(self) -> str:
        return f"{self.rule}::{self.path}::{self.qualname}::{self.detail}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


_DISABLE_FILE_RE = re.compile(
    r"#\s*impreciselint:\s*disable-file=([a-z\-, ]+?)(?:\s+--\s+\S.*)?$"
)
_DISABLE_RE = re.compile(
    r"#\s*impreciselint:\s*disable=([a-z\-, ]+?)(?:\s+--\s+\S.*)?$"
)


def _parse_rule_list(text: str) -> set:
    return {name.strip() for name in text.split(",") if name.strip()}


class Suppressions:
    """Per-file suppression comments, parsed once from the source text.

    A line-scoped ``disable`` comment silences findings on its own line
    and on the line directly below it (so a comment can sit above a long
    statement).  ``disable-file`` silences a rule for the whole file.
    """

    def __init__(self, source: str):
        self.file_rules: set = set()
        self.line_rules: dict = {}
        for number, line in enumerate(source.splitlines(), 1):
            match = _DISABLE_FILE_RE.search(line)
            if match:
                self.file_rules |= _parse_rule_list(match.group(1))
                continue
            match = _DISABLE_RE.search(line)
            if match:
                self.line_rules.setdefault(number, set()).update(
                    _parse_rule_list(match.group(1))
                )

    def suppresses(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, ()) or rule in self.line_rules.get(
            line - 1, ()
        )


@dataclass
class SourceModule:
    """A parsed source file handed to every rule checker."""

    path: Path  # absolute
    rel: str  # repository-relative posix path (finding identity key)
    source: str
    tree: ast.Module
    lines: list  # 1-indexed via lines[number - 1]
    suppressions: Suppressions

    def matches(self, suffixes: Iterable[str]) -> bool:
        """True when this file is one of the given scope suffixes."""
        posix = self.path.as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)


def load_source(path: Path) -> SourceModule:
    path = Path(path).resolve()
    source = path.read_text(encoding="utf-8")
    try:
        rel = path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        rel = path.as_posix()
    return SourceModule(
        path=path,
        rel=rel,
        source=source,
        tree=ast.parse(source, filename=str(path)),
        lines=source.splitlines(),
        suppressions=Suppressions(source),
    )


def iter_source_files(paths: Iterable[Path]) -> list:
    """All ``*.py`` files under the given files/directories, sorted."""
    files: set = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.update(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            files.add(entry)
    return sorted(path.resolve() for path in files)


def run_paths(
    paths: Iterable[Path],
    *,
    rules: Optional[Iterable[str]] = None,
    checkers: Optional[dict] = None,
) -> tuple:
    """Run the rule checkers over ``paths``.

    Returns ``(findings, suppressed_count, checked_file_count)`` with
    suppression comments already applied (but no baseline filtering —
    that is the caller's policy, see :func:`apply_baseline`).
    """
    from . import rules as rules_module

    if checkers is None:
        checkers = rules_module.CHECKERS
    selected = set(rules) if rules is not None else set(checkers)
    unknown = selected - set(checkers)
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")

    findings: list = []
    suppressed = 0
    files = iter_source_files(paths)
    for path in files:
        module = load_source(path)
        for rule_name, checker in checkers.items():
            if rule_name not in selected:
                continue
            for finding in checker(module):
                if module.suppressions.suppresses(finding.rule, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.detail))
    return findings, suppressed, len(files)


# -- baseline -----------------------------------------------------------------


def load_baseline(path: Path) -> dict:
    """``identity -> allowed count`` from a baseline JSON file (empty when
    the file does not exist — a fresh tree has nothing grandfathered)."""
    path = Path(path)
    if not path.exists():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload.get("findings", {})
    if not isinstance(entries, dict) or not all(
        isinstance(key, str) and isinstance(value, int)
        for key, value in entries.items()
    ):
        raise ValueError(f"malformed baseline file {path}")
    return dict(entries)


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    counts: dict = {}
    for finding in findings:
        counts[finding.identity] = counts.get(finding.identity, 0) + 1
    payload = {
        "comment": (
            "Grandfathered impreciselint findings; identities are"
            " rule::path::qualname::detail with an allowed count."
            " Shrink, never grow."
        ),
        "findings": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(findings: Iterable[Finding], baseline: dict) -> tuple:
    """Split findings into ``(new, baselined, stale_identities)``.

    Up to ``count`` findings per baselined identity pass; the rest are
    new.  ``stale_identities`` are baseline entries that no longer match
    anything — safe to prune with ``--update-baseline``.
    """
    remaining = dict(baseline)
    new: list = []
    baselined: list = []
    for finding in findings:
        if remaining.get(finding.identity, 0) > 0:
            remaining[finding.identity] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    matched = {finding.identity for finding in baselined}
    stale = sorted(identity for identity in baseline if identity not in matched)
    return new, baselined, stale


# -- machine-readable report --------------------------------------------------


def report_json(
    *,
    new: Iterable[Finding],
    baselined: Iterable[Finding],
    suppressed: int,
    stale: Iterable[str],
    checked_files: int,
) -> dict:
    new = list(new)
    baselined = list(baselined)
    return {
        "version": 1,
        "checked_files": checked_files,
        "counts": {
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": suppressed,
            "stale_baseline_entries": len(list(stale)),
        },
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "qualname": finding.qualname,
                "detail": finding.detail,
                "message": finding.message,
                "identity": finding.identity,
                "baselined": grandfathered,
            }
            for grandfathered, group in ((False, new), (True, baselined))
            for finding in group
        ],
        "stale_baseline_entries": list(stale),
    }


def _rule_names() -> tuple:
    from . import rules as rules_module

    return tuple(rules_module.CHECKERS)


# Re-exported lazily to avoid importing rules at package import time in
# contexts that only need Finding/baseline plumbing.
def __getattr__(name: str):
    if name == "RULE_NAMES":
        return _rule_names()
    raise AttributeError(name)
