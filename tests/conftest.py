"""Shared fixtures and hypothesis strategies.

The strategies build bounded random structures:

* ``xml_trees`` — plain XML elements (for parser/XPath round-trips);
* ``pxml_documents`` — valid probabilistic documents with exact
  probabilities (for worlds/events/simplify invariants);
* ``source_pairs`` — pairs of small record-style documents (for
  integration ↔ estimator agreement).
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import strategies as st

from repro.core.engine import IntegrationConfig
from repro.core.oracle import Oracle
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.pxml.build import certain_prob
from repro.pxml.model import PXDocument, PXElement, PXText, Possibility, ProbNode
from repro.xmlkit.nodes import XDocument, XElement, XText

# -- plain XML strategies -------------------------------------------------------

TAGS = ("a", "b", "item", "x", "rec")
WORDS = ("alpha", "beta", "x1", "hello world", "42", "<&>\"'", "  spaced  ")


@st.composite
def xml_elements(draw, max_depth: int = 3):
    """A random plain XML element with bounded depth and fan-out."""
    tag = draw(st.sampled_from(TAGS))
    attributes = draw(
        st.dictionaries(
            st.sampled_from(("id", "lang", "k")),
            st.sampled_from(WORDS),
            max_size=2,
        )
    )
    element = XElement(tag, attributes)
    if max_depth <= 0:
        children = draw(st.lists(st.sampled_from(WORDS), max_size=1))
        for word in children:
            element.append(XText(word))
        return element
    count = draw(st.integers(min_value=0, max_value=3))
    for _ in range(count):
        if draw(st.booleans()):
            element.append(draw(xml_elements(max_depth=max_depth - 1)))
        else:
            element.append(XText(draw(st.sampled_from(WORDS))))
    return element


@st.composite
def xml_documents(draw, max_depth: int = 3):
    return XDocument(draw(xml_elements(max_depth=max_depth)))


# -- probabilistic XML strategies ---------------------------------------------------

def _distribution(draw, count: int) -> list[Fraction]:
    """Exact positive fractions summing to 1."""
    weights = [draw(st.integers(min_value=1, max_value=5)) for _ in range(count)]
    total = sum(weights)
    return [Fraction(w, total) for w in weights]


@st.composite
def prob_nodes(draw, max_depth: int = 2):
    """A random valid probability node."""
    branch = draw(st.integers(min_value=1, max_value=3))
    probabilities = _distribution(draw, branch)
    node = ProbNode()
    for prob in probabilities:
        child_count = draw(st.integers(min_value=0, max_value=2))
        children = []
        for _ in range(child_count):
            if max_depth > 0 and draw(st.booleans()):
                children.append(draw(px_elements(max_depth=max_depth - 1)))
            else:
                children.append(PXText(draw(st.sampled_from(WORDS))))
        node.append(Possibility(prob, children))
    return node


@st.composite
def px_elements(draw, max_depth: int = 2):
    tag = draw(st.sampled_from(TAGS))
    count = draw(st.integers(min_value=0, max_value=2))
    children = [draw(prob_nodes(max_depth=max_depth)) for _ in range(count)]
    return PXElement(tag, None, children)


@st.composite
def pxml_documents(draw, max_depth: int = 2):
    """A random valid probabilistic document (root possibilities hold
    exactly one element each, so every world is a document)."""
    branch = draw(st.integers(min_value=1, max_value=3))
    probabilities = _distribution(draw, branch)
    root = ProbNode()
    for prob in probabilities:
        root.append(Possibility(prob, [draw(px_elements(max_depth=max_depth))]))
    return PXDocument(root)


# -- integration source strategies ----------------------------------------------------

NAMES = ("ann", "bob", "cliff", "dora")
PHONES = ("111", "222", "333")


@st.composite
def record_documents(draw, max_records: int = 3):
    """An address-book-like document: repeated <person> records with
    leaf fields — the shape integration cares about."""
    root = XElement("book")
    for _ in range(draw(st.integers(min_value=0, max_value=max_records))):
        person = XElement("person")
        person.append(XElement("nm", children=[draw(st.sampled_from(NAMES))]))
        if draw(st.booleans()):
            person.append(XElement("tel", children=[draw(st.sampled_from(PHONES))]))
        root.append(person)
    return XDocument(root)


@st.composite
def source_pairs(draw):
    return draw(record_documents()), draw(record_documents())


# -- fixtures ---------------------------------------------------------------------

@pytest.fixture
def address_books():
    return addressbook_documents()


@pytest.fixture
def address_dtd():
    return ADDRESSBOOK_DTD


@pytest.fixture
def generic_rules():
    return [DeepEqualRule(), LeafValueRule()]


@pytest.fixture
def generic_config(generic_rules):
    return IntegrationConfig(oracle=Oracle(generic_rules))


def make_leaf(tag: str, value: str) -> PXElement:
    """Helper used across pxml tests: certain leaf element."""
    return PXElement(tag, children=[certain_prob(PXText(value))])
