"""Tests for ``tools.impreciselint`` — the invariant checker suite.

Each rule family gets positive / negative / suppressed / baselined
fixtures (written under ``tmp_path`` with ``repro/...`` suffixes, which
is how the scope matching works), plus *seeded mutations* of the real
source: we take the live module, break the invariant the way a careless
edit would, and assert the rule catches it.  Finally a meta-test runs
the linter over the real ``src/`` tree and requires it clean modulo the
checked-in baseline — the same gate CI enforces.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # ``tools`` lives at the repo root
    sys.path.insert(0, str(REPO_ROOT))

from tools.impreciselint import (  # noqa: E402
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    run_paths,
    save_baseline,
)
from tools.impreciselint.rules import codec_surface_digest  # noqa: E402
from tools.impreciselint import load_source  # noqa: E402

SRC = REPO_ROOT / "src"


def write_fixture(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def lint(tmp_path: Path, rules=None):
    findings, suppressed, checked = run_paths([tmp_path], rules=rules)
    return findings, suppressed


# -- float-taint --------------------------------------------------------------


class TestFloatTaint:
    def test_flags_float_literal_call_division_math_annotation(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/probability.py",
            """\
            import math

            def leak(x, share: float):
                a = 0.5
                b = float(x)
                c = x / 2
                d = math.sqrt(x)
                return a, b, c, d
            """,
        )
        findings, _ = lint(tmp_path, rules=["float-taint"])
        details = sorted(f.detail for f in findings)
        assert details == [
            "float-annotation",
            "float-call",
            "float-literal:0.5",
            "math.sqrt",
            "true-division",
        ]
        assert all(f.rule == "float-taint" for f in findings)
        assert all(f.qualname == "leak" for f in findings)

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/experiments.py",  # not a probability-carrying module
            "def f(x):\n    return x / 2 + 0.5\n",
        )
        findings, _ = lint(tmp_path, rules=["float-taint"])
        assert findings == []

    def test_exact_code_in_scope_is_clean(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/probability.py",
            """\
            from fractions import Fraction

            def half():
                return Fraction(1, 2)
            """,
        )
        findings, _ = lint(tmp_path, rules=["float-taint"])
        assert findings == []

    def test_inline_and_line_above_suppression(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/probability.py",
            """\
            def f(x):
                a = 0.5  # impreciselint: disable=float-taint -- fixture
                # impreciselint: disable=float-taint -- fixture
                b = 0.25
                return a, b
            """,
        )
        findings, suppressed = lint(tmp_path, rules=["float-taint"])
        assert findings == []
        assert suppressed == 2

    def test_disable_file_pragma(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/core/similarity.py",
            """\
            # impreciselint: disable-file=float-taint -- fixture
            def f(x):
                return x / 2 + 0.5
            """,
        )
        findings, suppressed = lint(tmp_path, rules=["float-taint"])
        assert findings == []
        assert suppressed == 2

    def test_wrong_rule_suppression_does_not_apply(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/probability.py",
            """\
            def f():
                return 0.5  # impreciselint: disable=no-recursion -- wrong rule
            """,
        )
        findings, suppressed = lint(tmp_path, rules=["float-taint"])
        assert [f.detail for f in findings] == ["float-literal:0.5"]
        assert suppressed == 0

    def test_display_allowlist(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/probability.py",
            """\
            def format_probability(value):
                return f"{float(value):.4g}"

            def not_allowlisted(value):
                return float(value)
            """,
        )
        findings, _ = lint(tmp_path, rules=["float-taint"])
        assert [f.qualname for f in findings] == ["not_allowlisted"]

    def test_seeded_mutation_of_real_probability_module(self, tmp_path):
        """Stripping the justified suppressions from the real module must
        resurface its (exact, Fraction/Fraction) divisions."""
        source = (SRC / "repro/probability.py").read_text(encoding="utf-8")
        stripped = "\n".join(
            line
            for line in source.splitlines()
            if "impreciselint: disable" not in line
        )
        write_fixture(tmp_path, "repro/probability.py", stripped)
        findings, _ = lint(tmp_path, rules=["float-taint"])
        assert any(f.detail == "true-division" for f in findings)


# -- lock-discipline ----------------------------------------------------------


LOCKED_CLASS = """\
import threading

class Stats:  # impreciselint: guarded-by=_lock
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.rows = []

    def good(self):
        with self._lock:
            self.hits += 1
            self.rows.append(1)

    def _bump_locked(self):
        self.hits += 1  # caller holds the lock (naming convention)

    def bad_write(self):
        self.hits += 1

    def bad_mutation(self):
        self.rows.append(2)

    def bad_closure(self):
        with self._lock:
            def later():
                self.hits += 1
            return later
"""


class TestLockDiscipline:
    def test_flags_unguarded_writes_only(self, tmp_path):
        write_fixture(tmp_path, "repro/dbms/stats.py", LOCKED_CLASS)
        findings, _ = lint(tmp_path, rules=["lock-discipline"])
        assert sorted((f.qualname, f.detail) for f in findings) == [
            ("Stats.bad_closure", "unguarded-write:hits"),
            ("Stats.bad_mutation", "unguarded-mutation:rows.append"),
            ("Stats.bad_write", "unguarded-write:hits"),
        ]

    def test_unmarked_class_is_ignored(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/dbms/stats.py",
            LOCKED_CLASS.replace("  # impreciselint: guarded-by=_lock", ""),
        )
        findings, _ = lint(tmp_path, rules=["lock-discipline"])
        assert findings == []

    def test_helper_lock_context_counts_as_guarded(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/dbms/stats.py",
            """\
            class Sharded:  # impreciselint: guarded-by=_mu
                def put(self, name):
                    with self._name_lock(name):
                        self.count += 1
            """,
        )
        findings, _ = lint(tmp_path, rules=["lock-discipline"])
        assert findings == []

    def test_seeded_mutation_of_real_cache_store(self, tmp_path):
        """Replacing the first ``with self._lock:`` of the real store
        with ``if True:`` must produce unguarded findings."""
        source = (SRC / "repro/dbms/cache_store.py").read_text(encoding="utf-8")
        mutated = source.replace("with self._lock:", "if True:")
        assert mutated != source
        write_fixture(tmp_path, "repro/dbms/cache_store.py", mutated)
        findings, _ = lint(tmp_path, rules=["lock-discipline"])
        assert any(f.detail.startswith("unguarded-") for f in findings)
        # the untouched original is clean
        write_fixture(tmp_path / "clean", "repro/dbms/cache_store.py", source)
        findings, _ = lint(tmp_path / "clean", rules=["lock-discipline"])
        assert findings == []


# -- no-recursion -------------------------------------------------------------


class TestNoRecursion:
    def test_flags_direct_and_mutual_recursion(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/pxml/events.py",
            """\
            def direct(x):
                return direct(x)

            def ping(x):
                return pong(x)

            def pong(x):
                return ping(x)

            def iterative(x):
                while x:
                    x -= 1
                return x
            """,
        )
        findings, _ = lint(tmp_path, rules=["no-recursion"])
        names = {f.qualname for f in findings}
        assert "direct" in names
        assert names & {"ping", "pong"}
        assert "iterative" not in names

    def test_method_self_recursion(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/query/aggregates.py",
            """\
            class Agg:
                def fold(self, node):
                    return self.fold(node)
            """,
        )
        findings, _ = lint(tmp_path, rules=["no-recursion"])
        assert [f.qualname for f in findings] == ["Agg.fold"]

    def test_out_of_scope_recursion_allowed(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/xmlkit/parser.py",  # recursion is fine outside the scope
            "def walk(n):\n    return walk(n)\n",
        )
        findings, _ = lint(tmp_path, rules=["no-recursion"])
        assert findings == []

    def test_seeded_mutation_of_real_events_module(self, tmp_path):
        source = (SRC / "repro/pxml/events.py").read_text(encoding="utf-8")
        mutated = source + "\n\ndef _resurrect(event):\n    return _resurrect(event)\n"
        write_fixture(tmp_path, "repro/pxml/events.py", mutated)
        findings, _ = lint(tmp_path, rules=["no-recursion"])
        assert [f.qualname for f in findings] == ["_resurrect"]
        # the real module itself is recursion-free
        write_fixture(tmp_path / "clean", "repro/pxml/events.py", source)
        findings, _ = lint(tmp_path / "clean", rules=["no-recursion"])
        assert findings == []


# -- no-swallow ---------------------------------------------------------------


class TestNoSwallow:
    def test_flags_bare_umbrella_and_explicit_swallows(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/server/multiproc.py",
            """\
            def supervise(step):
                try:
                    step()
                except:
                    pass

            def probe(step):
                try:
                    step()
                except Exception:
                    return None

            def absorb(step):
                try:
                    step()
                except (OSError, CacheBusyError):
                    return None

            def expire(step):
                try:
                    step()
                except DeadlineExceededError:
                    return None
            """,
        )
        findings, _ = lint(tmp_path, rules=["no-swallow"])
        details = sorted(f.detail for f in findings)
        assert details == [
            "swallow:CacheBusyError",
            "swallow:DeadlineExceededError",
            "swallow:Exception",
            "swallow:bare",
        ]
        assert all(f.rule == "no-swallow" for f in findings)

    def test_reraise_and_unrelated_types_are_clean(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/dbms/service.py",
            """\
            def contained(step):
                try:
                    step()
                except Exception:
                    cleanup()
                    raise

            def typed_raise(step):
                try:
                    step()
                except CacheBusyError as error:
                    raise StoreError("busy") from error

            def benign(step):
                try:
                    step()
                except (OSError, ValueError):
                    return None
            """,
        )
        findings, _ = lint(tmp_path, rules=["no-swallow"])
        assert findings == []

    def test_nested_callable_raise_does_not_count(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/dbms/cache_store.py",
            """\
            def hook(step):
                try:
                    step()
                except DeadlineExceededError:
                    def later():
                        raise RuntimeError("too late")
                    return later
            """,
        )
        findings, _ = lint(tmp_path, rules=["no-swallow"])
        assert [f.detail for f in findings] == [
            "swallow:DeadlineExceededError"
        ]

    def test_attribute_qualified_names_are_seen(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/testing/faults.py",
            """\
            import repro.errors as errors

            def hook(step):
                try:
                    step()
                except errors.CacheBusyError:
                    return None
            """,
        )
        findings, _ = lint(tmp_path, rules=["no-swallow"])
        assert [f.detail for f in findings] == ["swallow:CacheBusyError"]

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/server/app.py",  # the HTTP front maps, not swallows
            """\
            def handle(step):
                try:
                    step()
                except Exception:
                    return None
            """,
        )
        findings, _ = lint(tmp_path, rules=["no-swallow"])
        assert findings == []

    def test_disable_pragma_marks_the_sanctioned_absorb_point(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/dbms/service.py",
            """\
            def guarded_put(write):
                try:
                    write()
                # impreciselint: disable=no-swallow -- fixture absorb point
                except CacheBusyError:
                    count()
            """,
        )
        findings, suppressed = lint(tmp_path, rules=["no-swallow"])
        assert findings == []
        assert suppressed == 1


# -- contract-drift -----------------------------------------------------------


CODEC_MODULE = """\
SCHEMA_VERSION = 1{pin}

def encode_row(row):
    return {{"value": row.value, "prob": row.prob}}
"""


class TestContractDrift:
    def codec(self, tmp_path, pin=""):
        return write_fixture(
            tmp_path,
            "repro/dbms/cache_store.py",
            CODEC_MODULE.format(pin=pin),
        )

    def test_missing_pin_is_flagged_with_expected_digest(self, tmp_path):
        path = self.codec(tmp_path)
        expected = codec_surface_digest(load_source(path))
        findings, _ = lint(tmp_path, rules=["contract-drift"])
        surface = [f for f in findings if f.detail == "surface-pin"]
        assert len(surface) == 1
        assert expected in surface[0].message

    def test_correct_pin_is_clean_and_field_addition_breaks_it(self, tmp_path):
        path = self.codec(tmp_path)
        digest = codec_surface_digest(load_source(path))
        self.codec(tmp_path, pin=f"  # impreciselint: schema-surface={digest}")
        findings, _ = lint(tmp_path, rules=["contract-drift"])
        assert [f for f in findings if f.detail == "surface-pin"] == []
        # adding a payload field without refreshing the pin is caught
        path.write_text(
            path.read_text(encoding="utf-8").replace(
                '"prob": row.prob}', '"prob": row.prob, "extra": 1}'
            ),
            encoding="utf-8",
        )
        findings, _ = lint(tmp_path, rules=["contract-drift"])
        assert [f.detail for f in findings if f.detail == "surface-pin"] == [
            "surface-pin"
        ]

    def test_missing_version_constant(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/server/wire.py",
            "def encode_x(x):\n    return {'x': x}\n",
        )
        findings, _ = lint(tmp_path, rules=["contract-drift"])
        assert any(f.detail == "version-constant" for f in findings)

    def test_seeded_pin_tamper_of_real_cache_store(self, tmp_path):
        source = (SRC / "repro/dbms/cache_store.py").read_text(encoding="utf-8")
        tampered = re.sub(
            r"schema-surface=[0-9a-f]{12}", "schema-surface=000000000000", source
        )
        assert tampered != source
        write_fixture(tmp_path, "repro/dbms/cache_store.py", tampered)
        findings, _ = lint(tmp_path, rules=["contract-drift"])
        assert any(f.detail == "surface-pin" for f in findings)

    def test_public_function_docs(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/newmod.py",
            """\
            def documented() -> int:
                \"\"\"Has both docstring and return annotation.\"\"\"
                return 1

            def bare(x):
                return x

            def _private(x):
                return x
            """,
        )
        findings, _ = lint(tmp_path, rules=["contract-drift"])
        assert [f.detail for f in findings] == ["public-docs:bare"]


# -- baseline and identities --------------------------------------------------


class TestBaseline:
    def make_findings(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/probability.py",
            "def f():\n    return 0.5\n\ndef g():\n    return 0.25\n",
        )
        findings, _ = lint(tmp_path, rules=["float-taint"])
        assert len(findings) == 2
        return findings

    def test_identity_has_no_line_numbers(self, tmp_path):
        finding = self.make_findings(tmp_path)[0]
        parts = finding.identity.split("::")
        assert parts[0] == "float-taint"
        assert parts[2] == "f"
        assert str(finding.line) not in parts

    def test_round_trip_and_split(self, tmp_path):
        findings = self.make_findings(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, findings[:1])
        baseline = load_baseline(baseline_path)
        new, baselined, stale = apply_baseline(findings, baseline)
        assert [f.identity for f in baselined] == [findings[0].identity]
        assert [f.identity for f in new] == [findings[1].identity]
        assert stale == []

    def test_stale_entries_are_reported(self, tmp_path):
        findings = self.make_findings(tmp_path)
        baseline = {"float-taint::gone.py::h::float-literal:0.5": 1}
        new, baselined, stale = apply_baseline(findings, baseline)
        assert len(new) == 2 and baselined == []
        assert stale == ["float-taint::gone.py::h::float-literal:0.5"]

    def test_baseline_count_caps_matches(self, tmp_path):
        write_fixture(
            tmp_path,
            "repro/probability.py",
            "def f():\n    return 0.5 + 0.5\n",
        )
        findings, _ = lint(tmp_path, rules=["float-taint"])
        assert len(findings) == 2  # same identity, twice
        baseline = {findings[0].identity: 1}
        new, baselined, _ = apply_baseline(findings, baseline)
        assert len(baselined) == 1 and len(new) == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def run_cli(self, *args, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "tools.impreciselint", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
        )

    def test_dirty_fixture_fails_and_emits_json(self, tmp_path):
        write_fixture(
            tmp_path, "repro/probability.py", "def f():\n    return 0.5\n"
        )
        report = tmp_path / "report.json"
        result = self.run_cli(
            str(tmp_path),
            "--no-baseline",
            "--rules",
            "float-taint",
            "--json",
            str(report),
        )
        assert result.returncode == 1
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["counts"]["new"] == 1
        assert payload["findings"][0]["rule"] == "float-taint"

    def test_unknown_rule_exits_2(self, tmp_path):
        write_fixture(tmp_path, "repro/probability.py", "x = 1\n")
        result = self.run_cli(str(tmp_path), "--rules", "no-such-rule")
        assert result.returncode == 2

    def test_update_baseline_then_clean(self, tmp_path):
        write_fixture(
            tmp_path, "repro/probability.py", "def f():\n    return 0.5\n"
        )
        baseline = tmp_path / "baseline.json"
        first = self.run_cli(
            str(tmp_path), "--baseline", str(baseline), "--update-baseline"
        )
        assert first.returncode == 0
        second = self.run_cli(str(tmp_path), "--baseline", str(baseline))
        assert second.returncode == 0


# -- the real tree ------------------------------------------------------------


class TestLiveTree:
    def test_src_is_clean_modulo_checked_in_baseline(self):
        """The CI gate: the live source produces no findings beyond the
        checked-in baseline, and the baseline carries no stale entries."""
        findings, _suppressed, checked = run_paths([SRC])
        assert checked > 50  # sanity: the tree was actually scanned
        baseline = load_baseline(DEFAULT_BASELINE)
        new, baselined, stale = apply_baseline(findings, baseline)
        assert [f.render() for f in new] == []
        assert stale == []

    def test_checked_in_baseline_is_small_and_known(self):
        """The baseline shrinks, never grows: every grandfathered
        identity is one of the two known aggregate recursion cycles."""
        baseline = load_baseline(DEFAULT_BASELINE)
        assert len(baseline) == 2
        for identity in baseline:
            assert identity.startswith(
                "no-recursion::src/repro/query/aggregates.py::"
            )

    def test_real_codec_pins_match_current_surface(self):
        for rel in ("repro/dbms/cache_store.py", "repro/server/wire.py"):
            module = load_source(SRC / rel)
            digest = codec_surface_digest(module)
            assert f"schema-surface={digest}" in module.source
