"""Tests for incremental (multi-source) integration."""

from fractions import Fraction

import pytest

from repro.core.engine import IntegrationConfig, Integrator
from repro.core.incremental import IncrementalIntegrator, integrate_many
from repro.core.oracle import Oracle
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.errors import IntegrationError
from repro.pxml.model import validate_document
from repro.pxml.worlds import distinct_worlds, world_count
from repro.xmlkit.nodes import canonical_key
from repro.xmlkit.parser import parse_document

GENERIC = [DeepEqualRule(), LeafValueRule()]


def config():
    return IntegrationConfig(oracle=Oracle(GENERIC), dtd=ADDRESSBOOK_DTD)


def book(*entries):
    persons = "".join(
        f"<person><nm>{name}</nm><tel>{tel}</tel></person>" for name, tel in entries
    )
    return parse_document(f"<addressbook>{persons}</addressbook>")


class TestTwoSources:
    def test_matches_pairwise_engine(self):
        """Folding two sources must equal the ordinary pairwise result."""
        book_a, book_b = addressbook_documents()
        folded, _ = integrate_many([book_a, book_b], config())
        pairwise = Integrator(config()).integrate(book_a, book_b).document
        folded_worlds = {
            canonical_key(d.root): p for d, p in distinct_worlds(folded)
        }
        pairwise_worlds = {
            canonical_key(d.root): p for d, p in distinct_worlds(pairwise)
        }
        assert folded_worlds == pairwise_worlds

    def test_single_source_is_certain(self):
        document, history = integrate_many([book(("Ann", "1"))], config())
        assert document.is_certain()
        assert history[0].is_exact


class TestThreeSources:
    def test_three_books_fold(self):
        sources = [book(("John", "1111")), book(("John", "2222")),
                   book(("John", "3333"))]
        document, history = integrate_many(sources, config())
        validate_document(document)
        assert all(step.is_exact for step in history)
        total = sum(p for _, p in distinct_worlds(document, limit=None))
        assert total == 1

    def test_third_source_grows_uncertainty(self):
        two, _ = integrate_many(
            [book(("John", "1111")), book(("John", "2222"))], config()
        )
        three, _ = integrate_many(
            [book(("John", "1111")), book(("John", "2222")),
             book(("John", "3333"))],
            config(),
        )
        assert world_count(three) > world_count(two)

    def test_identical_sources_stay_certain(self):
        same = book(("Ann", "1"), ("Bo", "2"))
        document, _ = integrate_many([same, same.copy(), same.copy()], config())
        assert document.is_certain()


class TestBudget:
    def test_budget_truncates_and_reports(self):
        sources = [book(("John", "1111")), book(("John", "2222")),
                   book(("John", "3333"))]
        integrator = IncrementalIntegrator(config=config(), world_budget=2)
        for source in sources:
            report = integrator.add_source(source)
        assert not report.is_exact
        assert report.retained_mass < 1
        assert report.worlds_retained == 2
        # The approximate posterior is still a proper distribution.
        total = sum(p for _, p in distinct_worlds(integrator.document, limit=None))
        assert total == 1

    def test_zero_budget_rejected(self):
        integrator = IncrementalIntegrator(config=config(), world_budget=0)
        with pytest.raises(IntegrationError):
            integrator.add_source(book(("Ann", "1")))

    def test_empty_sources_rejected(self):
        with pytest.raises(IntegrationError):
            integrate_many([], config())

    def test_history_accumulates(self):
        integrator = IncrementalIntegrator(config=config())
        integrator.add_source(book(("Ann", "1")))
        integrator.add_source(book(("Ann", "2")))
        assert len(integrator.history) == 2
        assert "worlds" in integrator.history[-1].summary()
