"""Tests for probabilistic-tree compaction.

The key invariant: simplification never changes the distribution over
*distinct* worlds (it may merge duplicate choice-worlds, which is the
point).
"""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings

from repro.pxml.build import certain_prob, choice_prob
from repro.pxml.model import PXDocument, PXElement, PXText, Possibility, ProbNode
from repro.pxml.simplify import simplify, simplify_fixpoint
from repro.pxml.worlds import distinct_worlds, world_count
from repro.xmlkit.nodes import canonical_key
from .conftest import make_leaf, pxml_documents


def world_distribution(doc):
    return {
        canonical_key(document.root): prob
        for document, prob in distinct_worlds(doc, limit=None)
    }


class TestMergeDuplicates:
    def test_identical_possibilities_merge(self):
        node = choice_prob([("1/2", [make_leaf("a", "x")]),
                            ("1/2", [make_leaf("a", "x")])])
        doc = PXDocument(certain_prob(PXElement("r", children=[node])))
        simplified, report = simplify(doc)
        assert report.duplicates_merged == 1
        assert world_count(simplified) == 1

    def test_merged_probability_sums(self):
        node = choice_prob([("1/4", [make_leaf("a", "x")]),
                            ("1/4", [make_leaf("a", "x")]),
                            ("1/2", [make_leaf("a", "y")])])
        doc = PXDocument(certain_prob(PXElement("r", children=[node])))
        simplified, _ = simplify(doc)
        distribution = world_distribution(simplified)
        assert set(distribution.values()) == {Fraction(1, 2)}


class TestPruneZero:
    def test_zero_possibility_dropped(self):
        node = ProbNode([
            Possibility(1, [make_leaf("a", "x")]),
            Possibility(0, [make_leaf("a", "y")]),
        ])
        doc = PXDocument(ProbNode([Possibility(1, [PXElement("r", children=[node])])]))
        simplified, report = simplify(doc)
        assert report.zero_pruned == 1
        assert world_count(simplified) == 1


class TestFactorCommon:
    def test_common_child_extracted(self):
        shared = make_leaf("k", "same")
        node = choice_prob([
            ("1/2", [shared.copy(), make_leaf("a", "1")]),
            ("1/2", [shared.copy(), make_leaf("a", "2")]),
        ])
        doc = PXDocument(certain_prob(PXElement("r", children=[node])))
        before = doc.node_count()
        simplified, report = simplify(doc)
        assert report.common_factored == 1
        assert simplified.node_count() < before

    def test_distribution_preserved(self):
        shared = make_leaf("k", "same")
        node = choice_prob([
            ("1/3", [shared.copy(), make_leaf("a", "1")]),
            ("2/3", [shared.copy(), make_leaf("a", "2")]),
        ])
        doc = PXDocument(certain_prob(PXElement("r", children=[node])))
        simplified, _ = simplify(doc)
        assert world_distribution(simplified) == world_distribution(doc)

    def test_multiplicity_respected(self):
        # 'same' appears twice in one branch, once in the other: only one
        # copy is common.
        node = choice_prob([
            ("1/2", [make_leaf("k", "same"), make_leaf("k", "same")]),
            ("1/2", [make_leaf("k", "same")]),
        ])
        doc = PXDocument(certain_prob(PXElement("r", children=[node])))
        simplified, report = simplify(doc)
        assert report.common_factored == 1
        assert world_distribution(simplified) == world_distribution(doc)


class TestRenormalize:
    def test_renormalizes_after_prune(self):
        node = ProbNode([
            Possibility(Fraction(1, 4), [make_leaf("a", "x")]),
            Possibility(Fraction(1, 4), [make_leaf("a", "y")]),
        ])
        doc = PXDocument(ProbNode([Possibility(1, [PXElement("r", children=[node])])]))
        simplified, _ = simplify(doc, renormalize=True)
        inner = simplified.root.possibilities[0].children[0].children[0]
        assert inner.total_probability() == 1


class TestDistributionInvariance:
    @given(pxml_documents())
    @settings(suppress_health_check=[HealthCheck.too_slow], max_examples=40)
    def test_simplify_preserves_distinct_world_distribution(self, doc):
        if world_count(doc) > 200:
            return
        simplified, _ = simplify(doc)
        assert world_distribution(simplified) == world_distribution(doc)

    @given(pxml_documents())
    @settings(suppress_health_check=[HealthCheck.too_slow], max_examples=25)
    def test_fixpoint_never_grows(self, doc):
        if world_count(doc) > 200:
            return
        simplified, report = simplify_fixpoint(doc)
        assert simplified.node_count() <= doc.node_count()
        assert report.nodes_after == simplified.node_count()
        assert world_distribution(simplified) == world_distribution(doc)
