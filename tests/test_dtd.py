"""Tests for the mini-DTD."""

import pytest

from repro.errors import DTDError, DTDViolation
from repro.xmlkit.dtd import DTD, Cardinality, parse_dtd
from repro.xmlkit.parser import parse_document

MOVIE_DTD_TEXT = """
<!ELEMENT movies (movie*)>
<!ELEMENT movie (title, year?, genre*, director+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT genre (#PCDATA)>
<!ELEMENT director (#PCDATA)>
"""


class TestCardinality:
    @pytest.mark.parametrize(
        "card,counts",
        [
            (Cardinality.ONE, {0: False, 1: True, 2: False}),
            (Cardinality.OPTIONAL, {0: True, 1: True, 2: False}),
            (Cardinality.MANY, {0: True, 1: True, 5: True}),
            (Cardinality.PLUS, {0: False, 1: True, 5: True}),
        ],
    )
    def test_admits(self, card, counts):
        for count, expected in counts.items():
            assert card.admits(count) is expected

    def test_repeatable_flags(self):
        assert Cardinality.MANY.repeatable
        assert Cardinality.PLUS.repeatable
        assert not Cardinality.ONE.repeatable
        assert not Cardinality.OPTIONAL.repeatable

    def test_required_flags(self):
        assert Cardinality.ONE.required
        assert Cardinality.PLUS.required
        assert not Cardinality.OPTIONAL.required


class TestParseDtd:
    def test_parses_cardinalities(self):
        dtd = parse_dtd(MOVIE_DTD_TEXT)
        assert dtd.cardinality("movie", "title") == Cardinality.ONE
        assert dtd.cardinality("movie", "year") == Cardinality.OPTIONAL
        assert dtd.cardinality("movie", "genre") == Cardinality.MANY
        assert dtd.cardinality("movie", "director") == Cardinality.PLUS

    def test_pcdata_allows_text(self):
        dtd = parse_dtd(MOVIE_DTD_TEXT)
        assert dtd.declaration("title").allows_text
        assert not dtd.declaration("movie").allows_text

    def test_empty_model(self):
        dtd = parse_dtd("<!ELEMENT br EMPTY>")
        assert dtd.declaration("br").children == {}

    def test_any_model_allows_text(self):
        dtd = parse_dtd("<!ELEMENT x ANY>")
        assert dtd.declaration("x").allows_text

    def test_choice_separator_accepted(self):
        dtd = parse_dtd("<!ELEMENT x (a | b)>")
        assert set(dtd.declaration("x").children) == {"a", "b"}

    def test_duplicate_child_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("<!ELEMENT x (a, a)>")

    def test_garbage_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("this is not a dtd")

    def test_unsupported_model_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("<!ELEMENT x ((a, b) | c)>")

    def test_empty_text_gives_empty_dtd(self):
        assert parse_dtd("").declarations == {}


class TestValidation:
    @pytest.fixture
    def dtd(self):
        return parse_dtd(MOVIE_DTD_TEXT)

    def test_valid_document(self, dtd):
        doc = parse_document(
            "<movies><movie><title>J</title><director>S</director></movie></movies>"
        )
        assert dtd.validate(doc) == []

    def test_missing_required_child(self, dtd):
        doc = parse_document("<movies><movie><title>J</title></movie></movies>")
        violations = dtd.validate(doc)
        assert any("director" in str(v) for v in violations)

    def test_duplicate_single_child(self, dtd):
        doc = parse_document(
            "<movies><movie><title>a</title><title>b</title>"
            "<director>d</director></movie></movies>"
        )
        assert any("title" in str(v) for v in dtd.validate(doc))

    def test_unexpected_child(self, dtd):
        doc = parse_document(
            "<movies><movie><title>a</title><director>d</director>"
            "<budget>1</budget></movie></movies>"
        )
        assert any("budget" in str(v) for v in dtd.validate(doc))

    def test_text_where_disallowed(self, dtd):
        doc = parse_document("<movies>stray text</movies>")
        assert any("text" in str(v) for v in dtd.validate(doc))

    def test_undeclared_elements_are_open_world(self, dtd):
        doc = parse_document("<library><movies/></library>")
        assert dtd.validate(doc) == []

    def test_check_raises(self, dtd):
        doc = parse_document("<movies><movie/></movies>")
        with pytest.raises(DTDViolation):
            dtd.check(doc)

    def test_is_single(self, dtd):
        assert dtd.is_single("movie", "title")
        assert dtd.is_single("movie", "year")
        assert not dtd.is_single("movie", "genre")
        assert not dtd.is_single("movies", "movie")
        assert not dtd.is_single("unknown", "title")

    def test_programmatic_declare(self):
        dtd = DTD()
        dtd.declare("person", {"nm": Cardinality.ONE, "tel": Cardinality.ONE})
        assert dtd.is_single("person", "tel")
