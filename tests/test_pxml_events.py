"""Tests for the event algebra and exact probability inference."""

from fractions import Fraction
from itertools import product

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProbabilityError
from repro.probability import ONE, ZERO
from repro.pxml.build import choice_prob
from repro.pxml.events import (
    FALSE_EVENT,
    TRUE_EVENT,
    all_of,
    any_of,
    event_probability,
    lit,
    negate,
    none_of,
)
from repro.pxml.model import PXText, Possibility, ProbNode


def binary(p="1/2"):
    """A two-possibility choice node."""
    q = 1 - Fraction(p)
    return choice_prob([(Fraction(p), [PXText("a")]), (q, [PXText("b")])])


class TestConstructors:
    def test_lit_on_certain_node_is_true(self):
        node = ProbNode([Possibility(1, [PXText("x")])])
        assert lit(node, 0) is TRUE_EVENT

    def test_lit_out_of_range(self):
        with pytest.raises(ProbabilityError):
            lit_node = binary()
            from repro.pxml.events import Lit
            Lit(lit_node, 5)

    def test_and_contradiction_is_false(self):
        node = binary()
        assert all_of([lit(node, 0), lit(node, 1)]) is FALSE_EVENT

    def test_and_dedupes(self):
        node = binary()
        event = all_of([lit(node, 0), lit(node, 0)])
        assert event.key() == lit(node, 0).key()

    def test_and_identity(self):
        assert all_of([]) is TRUE_EVENT
        assert all_of([TRUE_EVENT, TRUE_EVENT]) is TRUE_EVENT
        assert all_of([TRUE_EVENT, FALSE_EVENT]) is FALSE_EVENT

    def test_or_identity(self):
        assert any_of([]) is FALSE_EVENT
        assert any_of([FALSE_EVENT]) is FALSE_EVENT
        assert any_of([TRUE_EVENT, FALSE_EVENT]) is TRUE_EVENT

    def test_or_flattens(self):
        a, b, c = binary(), binary(), binary()
        event = any_of([any_of([lit(a, 0), lit(b, 0)]), lit(c, 0)])
        assert len(event.operands) == 3

    def test_negate_involution(self):
        node = binary()
        event = lit(node, 0)
        assert negate(negate(event)).key() == event.key()

    def test_negate_constants(self):
        assert negate(TRUE_EVENT) is FALSE_EVENT
        assert negate(FALSE_EVENT) is TRUE_EVENT

    def test_none_of(self):
        node = binary()
        assert none_of([lit(node, 0)]).key() == negate(lit(node, 0)).key()

    def test_operator_sugar(self):
        a, b = binary(), binary()
        assert (lit(a, 0) & lit(b, 0)).key() == all_of([lit(a, 0), lit(b, 0)]).key()
        assert (lit(a, 0) | lit(b, 0)).key() == any_of([lit(a, 0), lit(b, 0)]).key()
        assert (~lit(a, 0)).key() == negate(lit(a, 0)).key()


class TestProbability:
    def test_constants(self):
        assert event_probability(TRUE_EVENT) == ONE
        assert event_probability(FALSE_EVENT) == ZERO

    def test_single_literal(self):
        node = binary("1/3")
        assert event_probability(lit(node, 0)) == Fraction(1, 3)

    def test_negation(self):
        node = binary("1/3")
        assert event_probability(negate(lit(node, 0))) == Fraction(2, 3)

    def test_independent_and(self):
        a, b = binary("1/2"), binary("1/3")
        assert event_probability(all_of([lit(a, 0), lit(b, 0)])) == Fraction(1, 6)

    def test_independent_or(self):
        a, b = binary("1/2"), binary("1/3")
        expected = Fraction(1, 2) + Fraction(1, 3) - Fraction(1, 6)
        assert event_probability(any_of([lit(a, 0), lit(b, 0)])) == expected

    def test_exclusive_or_within_node(self):
        node = choice_prob([
            ("1/4", [PXText("a")]), ("1/4", [PXText("b")]), ("1/2", [PXText("c")]),
        ])
        event = any_of([lit(node, 0), lit(node, 1)])
        assert event_probability(event) == Fraction(1, 2)

    def test_shared_subexpression(self):
        a, b = binary("1/2"), binary("1/2")
        common = all_of([lit(a, 0), lit(b, 0)])
        event = any_of([common, all_of([lit(a, 0), lit(b, 1)])])
        # = lit(a,0) regardless of b.
        assert event_probability(event) == Fraction(1, 2)

    @given(st.lists(st.sampled_from(["1/4", "1/2", "2/3"]), min_size=1, max_size=4),
           st.integers(min_value=0, max_value=10**6))
    def test_matches_brute_force(self, probs, seed):
        """Random DNF over up to 4 binary variables: Shannon result must
        equal brute-force enumeration over all assignments."""
        import random
        rng = random.Random(seed)
        nodes = [binary(p) for p in probs]
        terms = []
        for _ in range(rng.randint(1, 3)):
            literals = [
                lit(node, rng.randint(0, 1))
                for node in rng.sample(nodes, rng.randint(1, len(nodes)))
            ]
            if rng.random() < 0.3:
                literals[0] = negate(literals[0])
            terms.append(all_of(literals))
        event = any_of(terms)

        expected = ZERO
        for assignment in product(range(2), repeat=len(nodes)):
            mapping = {node.uid: choice for node, choice in zip(nodes, assignment)}
            weight = ONE
            for node, choice in zip(nodes, assignment):
                weight *= node.possibilities[choice].prob
            if event.evaluate(mapping):
                expected += weight
        assert event_probability(event) == expected

    def test_memoization_handles_large_or(self):
        # 16 independent literals OR'ed: P = 1 - (1/2)^16, computed fast.
        nodes = [binary() for _ in range(16)]
        event = any_of([lit(node, 0) for node in nodes])
        assert event_probability(event) == 1 - Fraction(1, 2**16)


class TestAssign:
    def test_assign_resolves_literal(self):
        node = binary()
        assert lit(node, 0).assign(node.uid, 0) is TRUE_EVENT
        assert lit(node, 0).assign(node.uid, 1) is FALSE_EVENT

    def test_assign_ignores_other_nodes(self):
        a, b = binary(), binary()
        event = lit(a, 0)
        assert event.assign(b.uid, 1) is event

    def test_assign_simplifies_and(self):
        a, b = binary(), binary()
        event = all_of([lit(a, 0), lit(b, 0)])
        assert event.assign(a.uid, 0).key() == lit(b, 0).key()
        assert event.assign(a.uid, 1) is FALSE_EVENT

    def test_evaluate_full_assignment(self):
        a, b = binary(), binary()
        event = any_of([lit(a, 0), lit(b, 0)])
        assert event.evaluate({a.uid: 0, b.uid: 1})
        assert not event.evaluate({a.uid: 1, b.uid: 1})
