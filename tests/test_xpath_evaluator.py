"""Tests for XPath evaluation over plain XML."""

import math

import pytest

from repro.errors import XPathEvaluationError
from repro.xmlkit.parser import parse_document
from repro.xmlkit.xpath import XPath, evaluate_xpath

DOC = parse_document(
    """
    <movies>
      <movie id="m1">
        <title>Jaws</title><year>1975</year>
        <genre>Horror</genre><genre>Thriller</genre>
        <director>Steven Spielberg</director>
      </movie>
      <movie id="m2">
        <title>Die Hard</title><year>1988</year>
        <genre>Action</genre>
        <director>John McTiernan</director>
      </movie>
      <movie id="m3">
        <title>Mission: Impossible II</title><year>2000</year>
        <genre>Action</genre>
        <director>John Woo</director>
      </movie>
    </movies>
    """
)


def titles(expression, doc=DOC, **variables):
    result = XPath(expression).select(doc, variables or None)
    return [node.text() if hasattr(node, "text") else node.value for node in result]


class TestNavigation:
    def test_descendant_all(self):
        assert len(XPath("//movie").select(DOC)) == 3

    def test_absolute_child(self):
        assert len(XPath("/movies/movie").select(DOC)) == 3

    def test_root_element_matched_by_descendant(self):
        assert len(XPath("//movies").select(DOC)) == 1

    def test_child_then_child(self):
        assert titles("/movies/movie/title") == [
            "Jaws", "Die Hard", "Mission: Impossible II",
        ]

    def test_wildcard(self):
        assert len(XPath("/movies/*").select(DOC)) == 3

    def test_parent_axis(self):
        result = XPath("//title/..").select(DOC)
        assert all(node.tag == "movie" for node in result)

    def test_self_axis(self):
        movie = XPath("//movie").select(DOC)[0]
        assert XPath(".").select(movie) == [movie]

    def test_text_nodes(self):
        values = [n.value for n in XPath("//title/text()").select(DOC)]
        assert "Jaws" in values

    def test_attribute_axis(self):
        values = [a.value for a in XPath("//movie/@id").select(DOC)]
        assert values == ["m1", "m2", "m3"]

    def test_document_order_and_dedup(self):
        # Both arms select overlapping nodes; result must be unique, in order.
        result = XPath("//movie | /movies/movie").select(DOC)
        assert len(result) == 3

    def test_descendant_from_inner(self):
        movie = XPath("//movie").select(DOC)[0]
        assert len(XPath(".//genre").select(movie)) == 2


class TestPredicates:
    def test_value_comparison(self):
        assert titles('//movie[year="1988"]/title') == ["Die Hard"]

    def test_numeric_comparison(self):
        assert titles("//movie[year > 1980]/title") == [
            "Die Hard", "Mission: Impossible II",
        ]

    def test_existence_predicate(self):
        assert len(XPath("//movie[genre]").select(DOC)) == 3

    def test_positional_predicate(self):
        assert titles("//movie[2]/title") == ["Die Hard"]

    def test_position_function(self):
        assert titles("//movie[position()=3]/title") == ["Mission: Impossible II"]

    def test_last_function(self):
        assert titles("//movie[last()]/title") == ["Mission: Impossible II"]

    def test_paper_query_1(self):
        assert titles('//movie[.//genre="Horror"]/title') == ["Jaws"]

    def test_paper_query_2(self):
        result = titles(
            '//movie[some $d in .//director satisfies contains($d,"John")]/title'
        )
        assert result == ["Die Hard", "Mission: Impossible II"]

    def test_every_quantifier(self):
        result = titles('//movie[every $g in genre satisfies $g="Action"]/title')
        assert result == ["Die Hard", "Mission: Impossible II"]

    def test_and_or(self):
        assert titles('//movie[genre="Action" and year="1988"]/title') == ["Die Hard"]
        assert titles('//movie[year="1975" or year="2000"]/title') == [
            "Jaws", "Mission: Impossible II",
        ]

    def test_not(self):
        assert titles('//movie[not(genre="Action")]/title') == ["Jaws"]

    def test_attribute_predicate(self):
        assert titles('//movie[@id="m2"]/title') == ["Die Hard"]

    def test_nodeset_comparison_is_existential(self):
        # movie m1 has two genres; = matches if ANY equals.
        assert titles('//movie[genre="Thriller"]/title') == ["Jaws"]


class TestValues:
    def test_string_function(self):
        assert XPath("string(//movie[1]/title)").evaluate(DOC) == "Jaws"

    def test_count(self):
        assert XPath("count(//genre)").evaluate(DOC) == 4.0

    def test_sum(self):
        assert XPath("sum(//year)").evaluate(DOC) == 1975 + 1988 + 2000

    def test_concat(self):
        assert XPath('concat("a", "b", "c")').evaluate(DOC) == "abc"

    def test_contains(self):
        assert XPath('contains("hello", "ell")').evaluate(DOC) is True

    def test_starts_ends_with(self):
        assert XPath('starts-with("abc", "ab")').evaluate(DOC) is True
        assert XPath('ends-with("abc", "bc")').evaluate(DOC) is True

    def test_substring(self):
        assert XPath('substring("12345", 2, 3)').evaluate(DOC) == "234"

    def test_substring_before_after(self):
        assert XPath('substring-before("a-b", "-")').evaluate(DOC) == "a"
        assert XPath('substring-after("a-b", "-")').evaluate(DOC) == "b"

    def test_normalize_space(self):
        assert XPath('normalize-space("  a   b ")').evaluate(DOC) == "a b"

    def test_translate(self):
        assert XPath('translate("abc", "abc", "xyz")').evaluate(DOC) == "xyz"

    def test_translate_removes_unmapped(self):
        assert XPath('translate("abc", "b", "")').evaluate(DOC) == "ac"

    def test_case_functions(self):
        assert XPath('upper-case("ab")').evaluate(DOC) == "AB"
        assert XPath('lower-case("AB")').evaluate(DOC) == "ab"

    def test_string_length(self):
        assert XPath('string-length("abcd")').evaluate(DOC) == 4.0

    def test_boolean_and_not(self):
        assert XPath("not(false())").evaluate(DOC) is True
        assert XPath('boolean("")').evaluate(DOC) is False

    def test_number_conversion(self):
        assert XPath('number("42")').evaluate(DOC) == 42.0
        assert math.isnan(XPath('number("x")').evaluate(DOC))

    def test_arithmetic(self):
        assert XPath("2 + 3 * 4").evaluate(DOC) == 14.0
        assert XPath("10 div 4").evaluate(DOC) == 2.5
        assert XPath("10 mod 4").evaluate(DOC) == 2.0

    def test_division_by_zero(self):
        assert XPath("1 div 0").evaluate(DOC) == math.inf
        assert math.isnan(XPath("0 div 0").evaluate(DOC))

    def test_floor_ceiling_round(self):
        assert XPath("floor(1.7)").evaluate(DOC) == 1.0
        assert XPath("ceiling(1.2)").evaluate(DOC) == 2.0
        assert XPath("round(2.5)").evaluate(DOC) == 3.0

    def test_name_function(self):
        assert XPath("name(//movie[1])").evaluate(DOC) == "movie"

    def test_unknown_function_rejected(self):
        with pytest.raises(XPathEvaluationError):
            XPath("frobnicate()").evaluate(DOC)

    def test_wrong_arity_rejected(self):
        with pytest.raises(XPathEvaluationError):
            XPath('contains("a")').evaluate(DOC)


class TestVariables:
    def test_bound_variable(self):
        movie = XPath("//movie").select(DOC)[1]
        assert evaluate_xpath(DOC, "$m/title", {"m": [movie]})[0].text() == "Die Hard"

    def test_unbound_variable_rejected(self):
        with pytest.raises(XPathEvaluationError):
            XPath("$nope").evaluate(DOC)

    def test_select_requires_nodeset(self):
        with pytest.raises(XPathEvaluationError):
            XPath("count(//movie)").select(DOC)

    def test_matches_ebv(self):
        assert XPath("//movie").matches(DOC)
        assert not XPath("//tvshow").matches(DOC)
