"""Tests for XML serialization."""

from hypothesis import given

from repro.xmlkit.nodes import XText, deep_equal, element
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serializer import (
    escape_attribute,
    escape_text,
    serialize,
    serialize_pretty,
)
from .conftest import xml_documents


class TestEscaping:
    def test_text_escapes_specials(self):
        assert escape_text("<a & b>") == "&lt;a &amp; b&gt;"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_attribute_escapes_newline(self):
        assert "&#10;" in escape_attribute("a\nb")


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(element("a")) == "<a/>"

    def test_attributes_sorted(self):
        assert serialize(element("a", z="1", b="2")) == '<a b="2" z="1"/>'

    def test_text_inline(self):
        assert serialize(element("a", "x")) == "<a>x</a>"

    def test_nested(self):
        assert serialize(element("a", element("b", "x"))) == "<a><b>x</b></a>"


class TestSerializePretty:
    def test_indents_nested_elements(self):
        text = serialize_pretty(element("a", element("b", "x")))
        assert text == "<a>\n  <b>x</b>\n</a>"

    def test_leaf_text_stays_inline(self):
        assert serialize_pretty(element("t", "Jaws")) == "<t>Jaws</t>"

    def test_empty_self_closes(self):
        assert serialize_pretty(element("a")) == "<a/>"

    @given(xml_documents())
    def test_pretty_roundtrip_semantically_equal(self, doc):
        reparsed = parse_document(serialize_pretty(doc))
        assert deep_equal(reparsed.root, doc.root)
