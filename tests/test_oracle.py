"""Tests for The Oracle (rule combination)."""

from fractions import Fraction

import pytest

from repro.core.oracle import ConstantPrior, MatchJudgement, Oracle, SimilarityPrior
from repro.core.rules import (
    Decision,
    DeepEqualRule,
    LeafValueRule,
    MatchContext,
    PredicateRule,
)
from repro.errors import IntegrationConflict
from repro.xmlkit.nodes import element

CTX = MatchContext(parent_tag="r", tag="x")


def always(decision, name="stub", tags=None):
    return PredicateRule(name, lambda a, b, ctx: decision, tags=tags)


class TestJudgement:
    def test_first_decision_wins(self):
        oracle = Oracle([always(Decision.NO_MATCH, "no"), always(Decision.MATCH, "yes")])
        judgement = oracle.judge(element("x"), element("x"), CTX)
        assert judgement.is_certain_no_match
        assert judgement.fired_rules == ("no",)

    def test_match_probability_one(self):
        oracle = Oracle([always(Decision.MATCH)])
        assert oracle.judge(element("x"), element("x"), CTX).probability == 1

    def test_abstaining_rules_skipped(self):
        oracle = Oracle([always(None, "quiet"), always(Decision.MATCH, "loud")])
        judgement = oracle.judge(element("x"), element("x"), CTX)
        assert judgement.fired_rules == ("loud",)

    def test_uncertain_when_all_abstain(self):
        oracle = Oracle([always(None)])
        judgement = oracle.judge(element("x"), element("x"), CTX)
        assert judgement.is_uncertain
        assert judgement.probability == Fraction(1, 2)
        assert judgement.fired_rules == ()

    def test_different_tags_never_match(self):
        oracle = Oracle([always(Decision.MATCH)])
        judgement = oracle.judge(element("x"), element("y"), CTX)
        assert judgement.is_certain_no_match
        assert judgement.fired_rules == ("tag-mismatch",)

    def test_irrelevant_rules_not_consulted(self):
        oracle = Oracle([always(Decision.MATCH, "scoped", tags=("other",))])
        assert oracle.judge(element("x"), element("x"), CTX).is_uncertain


class TestConflicts:
    def test_first_mode_ignores_conflict(self):
        oracle = Oracle(
            [always(Decision.MATCH, "m"), always(Decision.NO_MATCH, "n")],
            on_conflict="first",
        )
        assert oracle.judge(element("x"), element("x"), CTX).is_certain_match

    def test_error_mode_raises(self):
        oracle = Oracle(
            [always(Decision.MATCH, "m"), always(Decision.NO_MATCH, "n")],
            on_conflict="error",
        )
        with pytest.raises(IntegrationConflict):
            oracle.judge(element("x"), element("x"), CTX)

    def test_error_mode_consistent_decisions_fine(self):
        oracle = Oracle(
            [always(Decision.MATCH, "m1"), always(Decision.MATCH, "m2")],
            on_conflict="error",
        )
        assert oracle.judge(element("x"), element("x"), CTX).is_certain_match

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Oracle([], on_conflict="panic")


class TestPriors:
    def test_constant_prior(self):
        oracle = Oracle([], prior=ConstantPrior("1/5"))
        assert oracle.judge(element("x"), element("x"), CTX).probability == Fraction(1, 5)

    def test_constant_prior_rejects_certainty(self):
        with pytest.raises(ValueError):
            ConstantPrior(0)
        with pytest.raises(ValueError):
            ConstantPrior(1)

    def test_similarity_prior_scales_with_field(self):
        prior = SimilarityPrior("title")
        close_a = element("m", element("title", "Jaws"))
        close_b = element("m", element("title", "Jaws 2"))
        far_b = element("m", element("title", "Heat"))
        high = prior(close_a, close_b, CTX)
        low = prior(close_a, far_b, CTX)
        assert high > low

    def test_similarity_prior_clamps(self):
        prior = SimilarityPrior("title", floor=0.2, ceiling=0.8)
        same = element("m", element("title", "Jaws"))
        assert prior(same, same, CTX) <= Fraction(4, 5)

    def test_similarity_prior_missing_field_is_half(self):
        prior = SimilarityPrior("title")
        assert prior(element("m"), element("m"), CTX) == Fraction(1, 2)

    def test_similarity_prior_validates_bounds(self):
        with pytest.raises(ValueError):
            SimilarityPrior("title", floor=0.9, ceiling=0.1)

    def test_degenerate_prior_clamped_into_open_interval(self):
        oracle = Oracle([], prior=lambda a, b, ctx: Fraction(1))
        judgement = oracle.judge(element("x"), element("x"), CTX)
        assert judgement.is_uncertain

    def test_with_rules_copies_configuration(self):
        oracle = Oracle([], prior=ConstantPrior("1/5"), on_conflict="error")
        clone = oracle.with_rules([always(Decision.MATCH)])
        assert clone.on_conflict == "error"
        assert clone.judge(element("x"), element("x"), CTX).is_certain_match


class TestRealRuleStack:
    def test_deep_equal_then_leaf(self):
        oracle = Oracle([DeepEqualRule(), LeafValueRule()])
        a, b = element("genre", "Action"), element("genre", "Action")
        assert oracle.judge(a, b, CTX).is_certain_match
        c = element("genre", "Horror")
        assert oracle.judge(a, c, CTX).is_certain_no_match
