"""Tests for the probabilistic query engine (§VI).

The central property: the event-based engine and per-world enumeration
return identical (value, probability) sets on every document.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.engine import integrate
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.errors import QueryError
from repro.pxml.build import certain_document, certain_prob, choice_prob
from repro.pxml.model import PXDocument, PXElement, PXText
from repro.pxml.worlds import world_count
from repro.query.engine import ProbQueryEngine, query_enumeration
from repro.xmlkit.parser import parse_document
from .conftest import make_leaf, pxml_documents

GENERIC = [DeepEqualRule(), LeafValueRule()]


def ranked_map(answer):
    return {item.value: item.probability for item in answer}


def assert_engines_agree(document, expression):
    event_based = ranked_map(ProbQueryEngine(document).query(expression))
    enumerated = ranked_map(query_enumeration(document, expression))
    assert event_based == enumerated, expression
    return event_based


@pytest.fixture(scope="module")
def figure2_document():
    book_a, book_b = addressbook_documents()
    return integrate(book_a, book_b, rules=GENERIC, dtd=ADDRESSBOOK_DTD).document


class TestCertainDocuments:
    def test_simple_path(self):
        doc = certain_document(parse_document("<r><m><t>Jaws</t></m></r>"))
        answer = ProbQueryEngine(doc).query("//m/t")
        assert ranked_map(answer) == {"Jaws": Fraction(1)}

    def test_predicate(self):
        doc = certain_document(parse_document(
            "<r><m><t>A</t><y>1</y></m><m><t>B</t><y>2</y></m></r>"
        ))
        answer = ProbQueryEngine(doc).query('//m[y="2"]/t')
        assert ranked_map(answer) == {"B": Fraction(1)}

    def test_attribute_value(self):
        doc = certain_document(parse_document('<r><m id="x"><t>A</t></m></r>'))
        answer = ProbQueryEngine(doc).query("//m/@id")
        assert ranked_map(answer) == {"x": Fraction(1)}

    def test_attribute_predicate(self):
        doc = certain_document(parse_document(
            '<r><m id="x"><t>A</t></m><m id="y"><t>B</t></m></r>'
        ))
        assert ranked_map(ProbQueryEngine(doc).query('//m[@id="y"]/t')) == {
            "B": Fraction(1)
        }


class TestFigure2Queries:
    def test_tel_values(self, figure2_document):
        answer = assert_engines_agree(figure2_document, "//person/tel")
        assert answer == {"1111": Fraction(3, 4), "2222": Fraction(3, 4)}

    def test_predicate_on_name(self, figure2_document):
        answer = assert_engines_agree(figure2_document, '//person[nm="John"]/tel')
        assert answer["1111"] == Fraction(3, 4)

    def test_quantified_contains(self, figure2_document):
        answer = assert_engines_agree(
            figure2_document,
            '//person[some $t in tel satisfies contains($t,"11")]/nm',
        )
        assert answer == {"John": Fraction(3, 4)}

    def test_negated_predicate(self, figure2_document):
        answer = assert_engines_agree(
            figure2_document, '//person[not(tel="1111")]/nm'
        )
        # John-without-1111 exists in: no-match world (the 2222 John) and
        # the match-world where tel chose 2222 → 1/2 + 1/4.
        assert answer == {"John": Fraction(3, 4)}

    def test_existence_probability(self, figure2_document):
        engine = ProbQueryEngine(figure2_document)
        assert engine.exists_probability('//person[tel="1111"]') == Fraction(3, 4)
        assert engine.exists_probability("//person") == Fraction(1)

    def test_answer_probability(self, figure2_document):
        engine = ProbQueryEngine(figure2_document)
        assert engine.answer_probability("//person/tel", "1111") == Fraction(3, 4)
        assert engine.answer_probability("//person/tel", "9999") == Fraction(0)


class TestValueAlternatives:
    def test_uncertain_leaf_value_splits_answer(self):
        title = PXElement("t", children=[
            choice_prob([("3/4", [PXText("Jaws")]), ("1/4", [PXText("Jaws 2")])])
        ])
        doc = PXDocument(certain_prob(PXElement("m", children=[certain_prob(title)])))
        answer = assert_engines_agree(doc, "//t")
        assert answer == {"Jaws": Fraction(3, 4), "Jaws 2": Fraction(1, 4)}

    def test_same_value_from_multiple_nodes_ors(self):
        node = choice_prob([
            ("1/2", [make_leaf("g", "Horror")]),
            ("1/2", [make_leaf("g", "Horror"), make_leaf("g", "Action")]),
        ])
        doc = PXDocument(certain_prob(PXElement("m", children=[node])))
        answer = assert_engines_agree(doc, "//g")
        assert answer["Horror"] == Fraction(1)
        assert answer["Action"] == Fraction(1, 2)

    def test_comparison_against_uncertain_value(self):
        year = PXElement("y", children=[
            choice_prob([("1/3", [PXText("1975")]), ("2/3", [PXText("1987")])])
        ])
        movie = PXElement("m", children=[certain_prob(year),
                                         certain_prob(make_leaf("t", "Jaws"))])
        doc = PXDocument(certain_prob(PXElement("r", children=[certain_prob(movie)])))
        answer = assert_engines_agree(doc, '//m[y="1975"]/t')
        assert answer == {"Jaws": Fraction(1, 3)}

    def test_numeric_comparison(self):
        year = PXElement("y", children=[
            choice_prob([("1/3", [PXText("1975")]), ("2/3", [PXText("1987")])])
        ])
        movie = PXElement("m", children=[certain_prob(year),
                                         certain_prob(make_leaf("t", "Jaws"))])
        doc = PXDocument(certain_prob(PXElement("r", children=[certain_prob(movie)])))
        answer = assert_engines_agree(doc, "//m[y > 1980]/t")
        assert answer == {"Jaws": Fraction(2, 3)}


class TestUnsupportedFeatures:
    def test_positional_predicate_rejected(self):
        doc = certain_document(parse_document("<r><m/></r>"))
        with pytest.raises(QueryError):
            ProbQueryEngine(doc).query("//m[1]")

    def test_value_query_rejected(self):
        doc = certain_document(parse_document("<r><m/></r>"))
        with pytest.raises(QueryError):
            ProbQueryEngine(doc).query("count(//m)")

    def test_unknown_function_in_predicate_rejected(self):
        doc = certain_document(parse_document("<r><m><t>x</t></m></r>"))
        with pytest.raises(QueryError):
            ProbQueryEngine(doc).query("//m[frobnicate(t)]")


class TestAgreementProperty:
    QUERIES = (
        "//a",
        "//b",
        "//rec",
        "//a/b",
        "//a//x",
        '//a[b="alpha"]',
        '//a[contains(., "alpha")]/b',
        '//a[not(b)]',
        "//a[b or x]",
        '//a[some $c in .//b satisfies contains($c, "a")]',
    )

    @given(pxml_documents())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_event_engine_matches_enumeration(self, doc):
        if world_count(doc) > 400:
            return
        for query in self.QUERIES:
            assert_engines_agree(doc, query)
