"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.addressbook import addressbook_documents
from repro.xmlkit.serializer import serialize

DTD_TEXT = (
    "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel)>"
    "<!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>"
)


@pytest.fixture
def workspace(tmp_path):
    book_a, book_b = addressbook_documents()
    (tmp_path / "a.xml").write_text(serialize(book_a), encoding="utf-8")
    (tmp_path / "b.xml").write_text(serialize(book_b), encoding="utf-8")
    (tmp_path / "ab.dtd").write_text(DTD_TEXT, encoding="utf-8")
    return tmp_path


def run(args):
    return main([str(arg) for arg in args])


class TestIntegrate:
    def test_integrate_writes_pxml(self, workspace, capsys):
        status = run([
            "integrate", workspace / "a.xml", workspace / "b.xml",
            "--dtd", workspace / "ab.dtd", "-o", workspace / "out.pxml",
        ])
        assert status == 0
        assert (workspace / "out.pxml").exists()
        assert "3 worlds" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, workspace, capsys):
        status = run([
            "integrate", workspace / "missing.xml", workspace / "b.xml",
            "-o", workspace / "out.pxml",
        ])
        assert status == 1
        assert "error" in capsys.readouterr().err

    def test_mismatched_roots_error(self, workspace, capsys):
        (workspace / "c.xml").write_text("<other/>", encoding="utf-8")
        status = run([
            "integrate", workspace / "a.xml", workspace / "c.xml",
            "-o", workspace / "out.pxml",
        ])
        assert status == 1
        assert "error" in capsys.readouterr().err


class TestQueryAndStats:
    @pytest.fixture
    def integrated(self, workspace, capsys):
        run([
            "integrate", workspace / "a.xml", workspace / "b.xml",
            "--dtd", workspace / "ab.dtd", "-o", workspace / "out.pxml",
        ])
        capsys.readouterr()
        return workspace / "out.pxml"

    def test_query_ranked_output(self, integrated, capsys):
        assert run(["query", integrated, "//person/tel"]) == 0
        out = capsys.readouterr().out
        assert "75% 1111" in out

    def test_stats_output(self, integrated, capsys):
        assert run(["stats", integrated]) == 0
        out = capsys.readouterr().out
        assert "possible worlds:   3" in out

    def test_worlds_output(self, integrated, capsys):
        assert run(["worlds", integrated, "--limit", 10]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3

    def test_feedback_roundtrip(self, integrated, workspace, capsys):
        assert run([
            "feedback", integrated, "//person/tel", "1111", "--correct",
            "-o", workspace / "post.pxml",
        ]) == 0
        capsys.readouterr()
        assert run(["query", workspace / "post.pxml", "//person/tel"]) == 0
        assert "100% 1111" in capsys.readouterr().out

    def test_bad_xpath_fails_cleanly(self, integrated, capsys):
        assert run(["query", integrated, "//person["]) == 1
        assert "error" in capsys.readouterr().err

    def test_batch_query_output(self, integrated, capsys):
        assert run([
            "query", integrated, "--batch", "//person/tel", "//person/nm",
        ]) == 0
        out = capsys.readouterr().out
        assert "== //person/tel" in out
        assert "== //person/nm" in out
        assert "75% 1111" in out

    def test_multiple_queries_imply_batch(self, integrated, capsys):
        assert run(["query", integrated, "//person/tel", "//person/nm"]) == 0
        assert "== //person/tel" in capsys.readouterr().out

    def test_queries_file(self, integrated, workspace, capsys):
        (workspace / "workload.txt").write_text(
            "# the workload\n//person/tel\n\n//person/nm\n", encoding="utf-8"
        )
        assert run([
            "query", integrated, "--queries-file", workspace / "workload.txt",
        ]) == 0
        out = capsys.readouterr().out
        assert "== //person/tel" in out and "== //person/nm" in out

    def test_no_queries_fails_cleanly(self, integrated, capsys):
        assert run(["query", integrated]) == 1
        assert "no queries" in capsys.readouterr().err

    def test_no_cache_and_stats_flags(self, integrated, capsys):
        assert run([
            "query", integrated, "//person/tel", "--no-cache", "--cache-stats",
        ]) == 0
        captured = capsys.readouterr()
        assert "75% 1111" in captured.out
        assert "cache:" in captured.err

    def test_aggregate_count(self, integrated, capsys):
        assert run(["query", integrated, "//person", "--aggregate", "count"]) == 0
        out = capsys.readouterr().out
        assert "== count //person" in out
        assert "expected:" in out

    def test_aggregate_sum_with_distribution_lines(self, integrated, capsys):
        assert run(["query", integrated, "tel", "--aggregate", "sum"]) == 0
        out = capsys.readouterr().out
        assert "== sum tel" in out
        # The 1111/2222 conflict: sums 1111 and 2222 at 50% each, plus
        # the exact fraction rendering of each outcome's probability.
        assert "(1/2)" in out

    def test_aggregate_text_filter(self, integrated, capsys):
        assert run([
            "query", integrated, "tel", "--aggregate", "count",
            "--text", "1111",
        ]) == 0
        out = capsys.readouterr().out
        assert "[text='1111']" in out

    def test_text_without_aggregate_fails_cleanly(self, integrated, capsys):
        assert run(["query", integrated, "//person", "--text", "x"]) == 1
        assert "--aggregate" in capsys.readouterr().err

    def test_aggregate_cache_stats(self, integrated, capsys):
        assert run([
            "query", integrated, "//person", "--aggregate", "count",
            "--cache-stats",
        ]) == 0
        captured = capsys.readouterr()
        assert "== count //person" in captured.out
        assert "cache: 1 aggregate distribution(s) memoized" in captured.err

    def test_aggregate_rejects_batch(self, integrated, capsys):
        assert run([
            "query", integrated, "//person", "--aggregate", "count", "--batch",
        ]) == 1
        assert "--batch" in capsys.readouterr().err

    def test_aggregate_bad_target_fails_cleanly(self, integrated, capsys):
        assert run([
            "query", integrated, "person/nm", "--aggregate", "count",
        ]) == 1
        assert "error" in capsys.readouterr().err

    def test_aggregate_non_numeric_fails_cleanly(self, integrated, capsys):
        assert run(["query", integrated, "nm", "--aggregate", "sum"]) == 1
        assert "not numeric" in capsys.readouterr().err


class TestSearchFanOut:
    """``imprecise query STORE --all/--glob``: the dataspace fan-out."""

    @pytest.fixture
    def store(self, workspace, capsys):
        store = workspace / "store"
        assert run([
            "serve", store,
            "--exec", f"put a {workspace / 'a.xml'}",
            "--exec", f"put b {workspace / 'b.xml'}",
            "--exec", "integrate a b ab",
        ]) == 0
        capsys.readouterr()
        return store

    def test_all_prob_fusion_with_provenance(self, store, capsys):
        assert run(["query", store, "//person/tel", "--all"]) == 0
        out = capsys.readouterr().out
        # Probability-weighted fusion over {a, ab, b}: both phone
        # numbers score 2/3, ties broken by value, provenance listing
        # each contributing document with its local rank.
        assert " 67% 1111  [a#1, ab#1]" in out
        assert " 67% 2222  [ab#2, b#1]" in out

    def test_glob_rrf_fusion(self, store, capsys):
        assert run([
            "query", store, "//person/tel",
            "--glob", "a*", "--fusion", "rrf", "--rrf-k", "10",
        ]) == 0
        out = capsys.readouterr().out
        # Exact-rational RRF over {a, ab} at k=10: 1111 ranks first in
        # both (1/2·1/11 + 1/2·1/11 = 1/11), 2222 only in ab at rank 2.
        assert "1/11 1111  [a#1, ab#1]" in out
        assert "1/24 2222  [ab#2]" in out

    def test_multiple_queries_get_labels(self, store, capsys):
        assert run([
            "query", store, "//person/tel", "//person/nm", "--all",
        ]) == 0
        out = capsys.readouterr().out
        assert "== //person/tel" in out and "== //person/nm" in out

    def test_all_aggregate_mixture(self, store, capsys):
        assert run([
            "query", store, "//person", "--all", "--aggregate", "count",
        ]) == 0
        out = capsys.readouterr().out
        assert "== count //person" in out
        # Equal-weight mixture of the three per-document count
        # distributions: a and b are certain (1 person), ab is 1-or-2.
        assert "83% 1  (5/6)" in out
        assert "17% 2  (1/6)" in out

    def test_fan_out_cache_stats(self, store, capsys):
        assert run([
            "query", store, "//person/tel", "--all", "--cache-stats",
        ]) == 0
        assert "engines" in capsys.readouterr().err

    def test_fusion_without_fan_out_fails_cleanly(self, workspace, capsys):
        run([
            "integrate", workspace / "a.xml", workspace / "b.xml",
            "--dtd", workspace / "ab.dtd", "-o", workspace / "out.pxml",
        ])
        capsys.readouterr()
        assert run([
            "query", workspace / "out.pxml", "//person/tel",
            "--fusion", "rrf",
        ]) == 1
        assert "--all or --glob" in capsys.readouterr().err

    def test_all_and_glob_together_fails_cleanly(self, store, capsys):
        assert run([
            "query", store, "//x", "--all", "--glob", "a*",
        ]) == 1
        assert "not both" in capsys.readouterr().err

    def test_fan_out_needs_a_directory(self, workspace, capsys):
        assert run(["query", workspace / "a.xml", "//x", "--all"]) == 1
        assert "store directory" in capsys.readouterr().err

    def test_fan_out_rejects_batch(self, store, capsys):
        assert run([
            "query", store, "//x", "--all", "--batch",
        ]) == 1
        assert "--batch" in capsys.readouterr().err

    def test_aggregate_fan_out_rejects_fusion_flag(self, store, capsys):
        assert run([
            "query", store, "//person", "--all", "--aggregate", "count",
            "--fusion", "rrf",
        ]) == 1
        assert "mixture" in capsys.readouterr().err

    def test_unmatched_glob_fails_cleanly(self, store, capsys):
        assert run(["query", store, "//x", "--glob", "zzz*"]) == 1
        assert "selected no documents" in capsys.readouterr().err

    def test_serve_search_command(self, store, workspace, capsys):
        assert run([
            "serve", store,
            "--exec", "search //person/tel",
            "--exec", "search //person/nm a* rrf 5",
        ]) == 0
        out = capsys.readouterr().out
        assert " 67% 1111  [a#1, ab#1]" in out
        assert "1/6 John  [a#1, ab#1]" in out

    def test_serve_search_usage_error_keeps_serving(self, store, capsys):
        assert run([
            "serve", store,
            "--exec", "search",
            "--exec", "search //person/tel",
        ]) == 1  # the bad command failed, the loop kept serving
        captured = capsys.readouterr()
        assert "usage: search" in captured.err
        assert "1111" in captured.out


class TestEstimate:
    def test_estimate_output(self, workspace, capsys):
        assert run([
            "estimate", workspace / "a.xml", workspace / "b.xml",
            "--dtd", workspace / "ab.dtd",
        ]) == 0
        out = capsys.readouterr().out
        assert "worlds:        3" in out

    def test_estimate_joint(self, workspace, capsys):
        assert run([
            "estimate", workspace / "a.xml", workspace / "b.xml",
            "--dtd", workspace / "ab.dtd", "--joint",
        ]) == 0
        assert "nodes:" in capsys.readouterr().out


class TestServe:
    @pytest.fixture
    def dataspace(self, workspace):
        store = workspace / "store"
        cache = workspace / "cache"
        assert run([
            "serve", store, "--cache-dir", cache,
            "--exec", f"put a {workspace / 'a.xml'}",
            "--exec", f"put b {workspace / 'b.xml'}",
            "--exec", "integrate a b ab",
        ]) == 0
        return store, cache

    def test_exec_query(self, dataspace, capsys):
        store, cache = dataspace
        capsys.readouterr()
        assert run([
            "serve", store, "--cache-dir", cache,
            "--exec", "query ab //person/tel",
        ]) == 0
        assert "100% 1111" in capsys.readouterr().out

    def test_warm_restart_hits(self, dataspace, capsys):
        store, cache = dataspace
        run(["serve", store, "--cache-dir", cache,
             "--exec", "query ab //person/tel"])
        capsys.readouterr()
        assert run([
            "serve", store, "--cache-dir", cache, "--cache-stats",
            "--exec", "query ab //person/tel",
        ]) == 0
        captured = capsys.readouterr()
        assert "100% 1111" in captured.out
        # --cache-stats renders through the shared format_cache_stats
        # path: one sorted "key: value" line per counter.
        assert "persistent_hits: 1" in captured.err

    def test_stdin_protocol(self, dataspace, capsys, monkeypatch):
        import io

        store, cache = dataspace
        capsys.readouterr()
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("list\nstats ab\nquit\nquery ab //x\n")
        )
        assert run(["serve", store, "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "pxml ab" in out
        assert "worlds" in out
        assert "//x" not in out  # nothing after quit runs

    def test_batch_and_feedback(self, dataspace, capsys):
        store, cache = dataspace
        capsys.readouterr()
        assert run([
            "serve", store, "--cache-dir", cache,
            "--exec", "batch ab //person/tel //person/nm",
            "--exec", "feedback ab //person/tel 1111 correct",
            "--exec", "query ab //person/tel",
        ]) == 0
        out = capsys.readouterr().out
        assert "== //person/tel" in out and "== //person/nm" in out
        assert "confirm '1111'" in out
        assert "100% 1111" in out

    def test_aggregate_command(self, dataspace, capsys):
        store, cache = dataspace
        capsys.readouterr()
        assert run([
            "serve", store, "--cache-dir", cache,
            "--exec", "aggregate ab count person",
            "--exec", "aggregate ab sum tel",
            "--exec", "aggregate ab count tel 1111",
        ]) == 0
        out = capsys.readouterr().out
        # count(//person) is itself uncertain: 1 or 2, even odds.
        assert "50% 1  (1/2)" in out and "50% 2  (1/2)" in out

    def test_aggregate_warm_restart_hits(self, dataspace, capsys):
        store, cache = dataspace
        capsys.readouterr()
        assert run([
            "serve", store, "--cache-dir", cache,
            "--exec", "aggregate ab sum tel",
        ]) == 0
        capsys.readouterr()
        assert run([
            "serve", store, "--cache-dir", cache, "--cache-stats",
            "--exec", "aggregate ab sum tel",
        ]) == 0
        captured = capsys.readouterr()
        assert "persistent_aggregate_hits: 1" in captured.err

    def test_aggregate_usage_error_keeps_serving(self, dataspace, capsys):
        store, cache = dataspace
        capsys.readouterr()
        assert run([
            "serve", store, "--cache-dir", cache,
            "--exec", "aggregate ab",
            "--exec", "aggregate ab count person",
        ]) == 1  # the bad command failed, the loop kept serving
        captured = capsys.readouterr()
        assert "usage: aggregate" in captured.err
        assert "50%" in captured.out

    def test_bad_command_keeps_serving(self, dataspace, capsys):
        store, cache = dataspace
        capsys.readouterr()
        assert run([
            "serve", store, "--cache-dir", cache,
            "--exec", "nonsense",
            "--exec", "query ab //person/nm",
        ]) == 1
        captured = capsys.readouterr()
        assert "unknown service command" in captured.err
        assert "John" in captured.out  # the loop survived the bad command

    def test_serve_without_cache_dir(self, workspace, capsys):
        assert run([
            "serve", workspace / "store2",
            "--exec", f"put a {workspace / 'a.xml'}",
            "--exec", "query a //person/nm",
            "--exec", "delete a",
            "--exec", "list",
        ]) == 0
        out = capsys.readouterr().out
        assert "100% John" in out
        assert "deleted a" in out


class TestServeHttp:
    """Flag handling of `imprecise serve --http` (the live-server paths
    are exercised end-to-end in tests/test_http_server.py)."""

    def test_http_conflicts_with_exec(self, workspace, capsys):
        status = run([
            "serve", workspace / "store", "--http", "127.0.0.1:0",
            "--exec", "list",
        ])
        assert status == 1
        assert "--http" in capsys.readouterr().err

    @pytest.mark.parametrize("address", ["notaport", "1.2.3.4:notaport",
                                         "1.2.3.4:99999", "::1"])
    def test_invalid_address_fails_cleanly(self, workspace, capsys, address):
        status = run(["serve", workspace / "store", "--http", address])
        assert status == 1
        assert "invalid --http address" in capsys.readouterr().err

    def test_parse_http_address(self):
        from repro.cli import _parse_http_address

        assert _parse_http_address("127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert _parse_http_address("8080") == ("127.0.0.1", 8080)
        assert _parse_http_address("[::1]:0") == ("::1", 0)

    def test_cache_max_rows_flag_bounds_the_store(self, workspace, capsys):
        store, cache2 = workspace / "store", workspace / "cache2"
        assert run([
            "serve", store, "--cache-dir", cache2,
            "--exec", f"put a {workspace / 'a.xml'}",
            "--exec", f"put b {workspace / 'b.xml'}",
            "--exec", "integrate a b ab",
        ]) == 0
        capsys.readouterr()
        assert run([
            "serve", store, "--cache-dir", cache2, "--cache-max-rows", "1",
            "--exec", "query ab //person/tel",
            "--exec", "query ab //person/nm",
            "--exec", "cache-stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "persistent_answers: 1" in out   # bound enforced
        assert "persistent_evictions: 1" in out
