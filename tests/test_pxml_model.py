"""Tests for the layered probabilistic XML model."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.errors import ModelError
from repro.pxml.model import (
    PXDocument,
    PXElement,
    PXText,
    Possibility,
    ProbNode,
    px_canonical_key,
    px_deep_equal,
    validate_document,
)
from repro.pxml.build import certain_prob, choice_prob
from .conftest import make_leaf, pxml_documents


class TestLayering:
    def test_element_children_must_be_prob_nodes(self):
        with pytest.raises(ModelError):
            PXElement("a").append(PXText("x"))

    def test_possibility_children_must_be_regular(self):
        with pytest.raises(ModelError):
            Possibility(1).append(ProbNode())

    def test_prob_children_must_be_possibilities(self):
        with pytest.raises(ModelError):
            ProbNode().append(PXElement("a"))

    def test_possibility_accepts_string_shorthand(self):
        possibility = Possibility(1, ["text"])
        assert isinstance(possibility.children[0], PXText)

    def test_document_root_must_be_prob(self):
        with pytest.raises(ModelError):
            PXDocument(PXElement("a"))


class TestUids:
    def test_uids_unique(self):
        assert ProbNode().uid != ProbNode().uid

    def test_copy_gets_fresh_uid(self):
        node = certain_prob(make_leaf("a", "x"))
        assert node.copy().uid != node.uid

    def test_copy_is_structurally_equal(self):
        node = choice_prob([(Fraction(1, 2), [PXText("a")]),
                            (Fraction(1, 2), [PXText("b")])])
        assert px_deep_equal(node, node.copy())


class TestCertainty:
    def test_single_possibility_prob_one_is_certain(self):
        assert certain_prob(make_leaf("a", "x")).is_certain()

    def test_two_possibilities_not_certain(self):
        node = choice_prob([(Fraction(1, 2), [PXText("a")]),
                            (Fraction(1, 2), [PXText("b")])])
        assert not node.is_certain()

    def test_nested_uncertainty_propagates(self):
        inner = choice_prob([(Fraction(1, 2), [PXText("a")]),
                             (Fraction(1, 2), [PXText("b")])])
        outer = certain_prob(PXElement("e", children=[inner]))
        assert not outer.is_certain()

    def test_document_certainty(self):
        doc = PXDocument(certain_prob(make_leaf("a", "x")))
        assert doc.is_certain()


class TestValidation:
    def test_valid_document_passes(self):
        validate_document(PXDocument(certain_prob(make_leaf("a", "x"))))

    def test_probabilities_must_sum_to_one(self):
        node = ProbNode([Possibility(Fraction(1, 3), [PXText("a")])])
        with pytest.raises(ModelError):
            validate_document(PXDocument(
                ProbNode([Possibility(1, [PXElement("r", children=[node])])])
            ))

    def test_empty_prob_node_rejected(self):
        bad = PXElement("r", children=[ProbNode()])
        with pytest.raises(ModelError):
            validate_document(
                PXDocument(ProbNode([Possibility(1, [bad])]))
            )

    def test_root_possibility_needs_single_element(self):
        root = ProbNode([Possibility(1, [PXText("loose text")])])
        with pytest.raises(ModelError):
            validate_document(PXDocument(root))

    def test_root_possibility_two_elements_rejected(self):
        root = ProbNode([Possibility(1, [PXElement("a"), PXElement("b")])])
        with pytest.raises(ModelError):
            validate_document(PXDocument(root))

    def test_subtree_mode_allows_loose_roots(self):
        root = ProbNode([Possibility(1, [PXText("loose text")])])
        validate_document(root, as_document=False)

    @given(pxml_documents())
    def test_generated_documents_are_valid(self, doc):
        validate_document(doc)


class TestCanonicalKeys:
    def test_order_insensitive(self):
        a = PXElement("m", children=[certain_prob(make_leaf("x", "1")),
                                     certain_prob(make_leaf("y", "2"))])
        b = PXElement("m", children=[certain_prob(make_leaf("y", "2")),
                                     certain_prob(make_leaf("x", "1"))])
        assert px_deep_equal(a, b)

    def test_probability_matters(self):
        a = choice_prob([(Fraction(1, 2), [PXText("x")]),
                         (Fraction(1, 2), [PXText("y")])])
        b = choice_prob([(Fraction(1, 3), [PXText("x")]),
                         (Fraction(2, 3), [PXText("y")])])
        assert not px_deep_equal(a, b)

    def test_value_matters(self):
        assert not px_deep_equal(make_leaf("a", "x"), make_leaf("a", "y"))

    def test_key_is_hashable(self):
        hash(px_canonical_key(make_leaf("a", "x")))

    def test_node_count(self):
        # leaf = elem + prob + poss + text
        assert make_leaf("a", "x").node_count() == 4
