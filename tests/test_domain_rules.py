"""Tests for the paper's movie-domain rules (§V)."""

import pytest

from repro.core.domain import GenreRule, TitleRule, YearRule, movie_rules
from repro.core.rules import Decision, MatchContext
from repro.xmlkit.nodes import element

CTX = MatchContext(parent_tag="movies", tag="movie")


def movie(title=None, year=None, genres=()):
    children = []
    if title is not None:
        children.append(element("title", title))
    if year is not None:
        children.append(element("year", year))
    children.extend(element("genre", genre) for genre in genres)
    return element("movie", *children)


class TestGenreRule:
    def test_disjoint_genres_no_match(self):
        a = movie(genres=("Horror", "Thriller"))
        b = movie(genres=("Comedy",))
        assert GenreRule().judge(a, b, CTX) is Decision.NO_MATCH

    def test_overlap_abstains(self):
        a = movie(genres=("Action", "Thriller"))
        b = movie(genres=("Thriller",))
        assert GenreRule().judge(a, b, CTX) is None

    def test_case_insensitive(self):
        a = movie(genres=("horror",))
        b = movie(genres=("HORROR",))
        assert GenreRule().judge(a, b, CTX) is None  # overlap → abstain

    def test_missing_genres_abstains(self):
        assert GenreRule().judge(movie(), movie(genres=("Action",)), CTX) is None


class TestTitleRule:
    def test_dissimilar_titles_no_match(self):
        assert TitleRule().judge(movie("Jaws"), movie("Die Hard"), CTX) is Decision.NO_MATCH

    def test_similar_titles_abstain(self):
        assert TitleRule().judge(movie("Jaws"), movie("Jaws 2"), CTX) is None

    def test_equal_titles_abstain(self):
        # similarity proves nothing; only *dis*similarity decides.
        assert TitleRule().judge(movie("Jaws"), movie("Jaws"), CTX) is None

    def test_missing_title_abstains(self):
        assert TitleRule().judge(movie(), movie("Jaws"), CTX) is None

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            TitleRule(threshold=0.0)
        with pytest.raises(ValueError):
            TitleRule(threshold=1.5)

    def test_custom_threshold_changes_verdict(self):
        a, b = movie("Die Hard"), movie("Die Hard: With a Vengeance")
        assert TitleRule(threshold=0.65).judge(a, b, CTX) is None
        assert TitleRule(threshold=0.95).judge(a, b, CTX) is Decision.NO_MATCH


class TestYearRule:
    def test_different_years_no_match(self):
        assert YearRule().judge(movie(year="1975"), movie(year="1978"), CTX) is Decision.NO_MATCH

    def test_same_year_abstains(self):
        assert YearRule().judge(movie(year="1975"), movie(year="1975"), CTX) is None

    def test_missing_year_abstains(self):
        assert YearRule().judge(movie(), movie(year="1975"), CTX) is None

    def test_empty_year_abstains(self):
        assert YearRule().judge(movie(year=""), movie(year="1975"), CTX) is None


class TestMovieRules:
    def test_factory_order_preserved(self):
        rules = movie_rules("genre", "title", "year")
        assert [rule.name for rule in rules] == ["genre", "title", "year"]

    def test_empty_factory(self):
        assert movie_rules() == []

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            movie_rules("budget")

    def test_title_threshold_forwarded(self):
        (rule,) = movie_rules("title", title_threshold=0.8)
        assert rule.threshold == 0.8

    def test_rules_scoped_to_movie_tag(self):
        for rule in movie_rules("genre", "title", "year"):
            assert rule.relevant("movie")
            assert not rule.relevant("person")
