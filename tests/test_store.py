"""Tests for the document store."""

import pytest

from repro.dbms.store import DocumentStore
from repro.errors import StoreError
from repro.pxml.build import certain_document
from repro.pxml.model import PXDocument, px_deep_equal
from repro.xmlkit.nodes import XDocument, deep_equal, element
from repro.xmlkit.parser import parse_document


@pytest.fixture
def plain_doc():
    return parse_document("<movies><movie><title>Jaws</title></movie></movies>")


class TestInMemory:
    def test_put_get(self, plain_doc):
        store = DocumentStore()
        store.put("movies", plain_doc)
        assert store.get("movies") is plain_doc

    def test_missing_raises(self):
        with pytest.raises(StoreError):
            DocumentStore().get("nope")

    def test_contains(self, plain_doc):
        store = DocumentStore()
        store.put("movies", plain_doc)
        assert "movies" in store
        assert "other" not in store

    def test_list_sorted(self, plain_doc):
        store = DocumentStore()
        store.put("zeta", plain_doc)
        store.put("alpha", plain_doc.copy())
        assert store.list() == ["alpha", "zeta"]

    def test_list_pinned_order_ignores_insertion_order(self, plain_doc):
        """The listing order is code-point sorted, never insertion order
        (directory iteration is insertion-ordered on some filesystems) —
        fan-out ranks depend on this being reproducible everywhere."""
        store = DocumentStore()
        names = ["m2", "Z", "a-1", "m10", "A", "a.1"]
        for name in names:
            store.put(name, plain_doc.copy())
        expected = sorted(names)  # code points: upper < '-'/'.' < lower
        assert store.list() == expected
        assert store.glob("*") == expected

    def test_glob_patterns(self, plain_doc):
        store = DocumentStore()
        for name in ("pair.b", "pair.a", "other", "p2"):
            store.put(name, plain_doc.copy())
        assert store.glob("pair.*") == ["pair.a", "pair.b"]
        assert store.glob("p*") == ["p2", "pair.a", "pair.b"]
        assert store.glob("?ther") == ["other"]
        assert store.glob("pair.[ab]") == ["pair.a", "pair.b"]
        assert store.glob("zzz*") == []

    def test_glob_is_case_sensitive_everywhere(self, plain_doc):
        """fnmatchcase semantics: 'Doc*' must not match 'doc1' even on a
        case-insensitive OS (plain fnmatch folds case per platform,
        which would reorder/regrow fan-outs across machines)."""
        store = DocumentStore()
        store.put("Doc1", plain_doc)
        store.put("doc1", plain_doc.copy())
        assert store.glob("Doc*") == ["Doc1"]
        assert store.glob("doc*") == ["doc1"]
        assert store.glob("[Dd]oc*") == ["Doc1", "doc1"]

    def test_delete(self, plain_doc):
        store = DocumentStore()
        store.put("movies", plain_doc)
        store.delete("movies")
        assert "movies" not in store

    def test_delete_missing_raises(self):
        with pytest.raises(StoreError):
            DocumentStore().delete("nope")

    def test_kind(self, plain_doc):
        store = DocumentStore()
        store.put("plain", plain_doc)
        store.put("prob", certain_document(plain_doc))
        assert store.kind("plain") == "xml"
        assert store.kind("prob") == "pxml"

    @pytest.mark.parametrize("name", ["", "a b", "../etc", "x" * 200, ".hidden"])
    def test_invalid_names_rejected(self, name, plain_doc):
        with pytest.raises(StoreError):
            DocumentStore().put(name, plain_doc)

    def test_invalid_payload_rejected(self):
        with pytest.raises(StoreError):
            DocumentStore().put("x", "<not-a-document/>")


class TestPersistence:
    def test_plain_roundtrip(self, tmp_path, plain_doc):
        DocumentStore(tmp_path).put("movies", plain_doc)
        loaded = DocumentStore(tmp_path).get("movies")
        assert isinstance(loaded, XDocument)
        assert deep_equal(loaded.root, plain_doc.root)

    def test_pxml_roundtrip(self, tmp_path, plain_doc):
        document = certain_document(plain_doc)
        DocumentStore(tmp_path).put("movies", document)
        loaded = DocumentStore(tmp_path).get("movies")
        assert isinstance(loaded, PXDocument)
        assert px_deep_equal(loaded.root, document.root)

    def test_glob_sees_unmaterialized_files(self, tmp_path, plain_doc):
        """glob/list pick up on-disk documents a fresh store has never
        parsed, in the same pinned order as a warm one."""
        warm = DocumentStore(tmp_path)
        for name in ("pair.b", "other", "pair.a"):
            warm.put(name, plain_doc.copy())
        fresh = DocumentStore(tmp_path)
        assert fresh.glob("pair.*") == ["pair.a", "pair.b"]
        assert fresh.list() == warm.list() == ["other", "pair.a", "pair.b"]
        assert fresh.cached_count() == 0  # listing parsed nothing

    def test_files_on_disk(self, tmp_path, plain_doc):
        store = DocumentStore(tmp_path)
        store.put("plain", plain_doc)
        store.put("prob", certain_document(plain_doc))
        assert (tmp_path / "plain.xml").exists()
        assert (tmp_path / "prob.pxml").exists()

    def test_overwrite_changes_kind(self, tmp_path, plain_doc):
        store = DocumentStore(tmp_path)
        store.put("doc", plain_doc)
        store.put("doc", certain_document(plain_doc))
        assert not (tmp_path / "doc.xml").exists()
        assert DocumentStore(tmp_path).kind("doc") == "pxml"

    def test_list_sees_disk(self, tmp_path, plain_doc):
        DocumentStore(tmp_path).put("movies", plain_doc)
        assert DocumentStore(tmp_path).list() == ["movies"]

    def test_delete_removes_file(self, tmp_path, plain_doc):
        store = DocumentStore(tmp_path)
        store.put("movies", plain_doc)
        store.delete("movies")
        assert not (tmp_path / "movies.xml").exists()


class TestDigestsAndVersions:
    def test_digest_matches_document_digest(self, plain_doc):
        from repro.dbms.cache_store import document_digest

        store = DocumentStore()
        store.put("movies", plain_doc)
        assert store.digest("movies") == document_digest(plain_doc)

    def test_digest_from_file_without_materializing(self, tmp_path, plain_doc):
        document = certain_document(plain_doc)
        DocumentStore(tmp_path).put("movies", document)
        from repro.dbms.cache_store import document_digest

        fresh = DocumentStore(tmp_path)
        assert fresh.digest("movies") == document_digest(document)
        assert fresh.cached_count() == 0  # keyed without parsing

    def test_digest_changes_with_content(self, tmp_path):
        from repro.xmlkit.parser import parse_document as parse

        store = DocumentStore(tmp_path)
        store.put("doc", parse("<r><x>1</x></r>"))
        first = store.digest("doc")
        store.put("doc", parse("<r><x>2</x></r>"))
        assert store.digest("doc") != first

    def test_digest_missing_raises(self):
        with pytest.raises(StoreError):
            DocumentStore().digest("nope")

    def test_version_counts_mutations(self, plain_doc):
        store = DocumentStore()
        assert store.version("movies") == 0
        store.put("movies", plain_doc)
        store.put("movies", plain_doc.copy())
        assert store.version("movies") == 2
        store.delete("movies")
        assert store.version("movies") == 3


class TestLRU:
    def test_bound_enforced(self, tmp_path, plain_doc):
        store = DocumentStore(tmp_path, max_cached=2)
        for index in range(5):
            store.put(f"doc{index}", plain_doc.copy())
        assert store.cached_count() == 2
        assert len(store.list()) == 5  # disk unaffected

    def test_recently_used_survives(self, tmp_path, plain_doc):
        store = DocumentStore(tmp_path, max_cached=2)
        store.put("a", plain_doc.copy())
        store.put("b", plain_doc.copy())
        kept = store.get("a")  # refresh 'a'
        store.put("c", plain_doc.copy())  # evicts 'b'
        assert store.get("a") is kept
        assert store.get("b") is not None  # reloads from disk

    def test_bound_requires_directory(self):
        # Evicting from an in-memory store would silently lose documents.
        with pytest.raises(StoreError):
            DocumentStore(max_cached=2)

    def test_unbounded_by_default(self, plain_doc):
        store = DocumentStore()
        for index in range(10):
            store.put(f"doc{index}", plain_doc.copy())
        assert store.cached_count() == 10


class TestConcurrency:
    def test_parallel_readers_share_one_materialization(self, tmp_path, plain_doc):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        DocumentStore(tmp_path).put("movies", certain_document(plain_doc))
        store = DocumentStore(tmp_path)
        barrier = threading.Barrier(8)

        def read(_):
            barrier.wait(timeout=30)
            return store.get("movies")

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(read, range(8)))
        assert all(result is results[0] for result in results)

    def test_parallel_writers_distinct_names(self, tmp_path, plain_doc):
        from concurrent.futures import ThreadPoolExecutor

        store = DocumentStore(tmp_path)

        def write(index):
            store.put(f"doc{index}", plain_doc.copy())
            return store.digest(f"doc{index}")

        with ThreadPoolExecutor(max_workers=8) as pool:
            digests = list(pool.map(write, range(16)))
        assert len(store.list()) == 16
        assert len(set(digests)) == 1  # identical content, identical digest


class TestRefresh:
    """`refresh()` — the store half of the cross-process invalidation
    fence: forget in-memory state so the next read hits the disk that a
    sibling process rewrote."""

    def test_refresh_drops_materialization_and_digest(self, tmp_path):
        from repro.xmlkit.parser import parse_document as parse

        writer = DocumentStore(tmp_path)
        reader = DocumentStore(tmp_path)
        writer.put("doc", parse("<r><x>old</x></r>"))
        stale = reader.get("doc")
        stale_digest = reader.digest("doc")
        # A sibling rewrites the file; the reader's memos are now stale.
        writer.put("doc", parse("<r><x>new</x></r>"))
        assert reader.get("doc") is stale          # served from memory
        assert reader.digest("doc") == stale_digest
        reader.refresh("doc")
        assert reader.get("doc") is not stale
        # The re-read digest now matches the rewritten disk content.
        assert reader.digest("doc") == writer.digest("doc")
        assert reader.digest("doc") != stale_digest

    def test_refresh_does_not_bump_version(self, tmp_path, plain_doc):
        store = DocumentStore(tmp_path)
        store.put("doc", plain_doc)
        before = store.version("doc")
        store.refresh("doc")
        assert store.version("doc") == before

    def test_refresh_unknown_name_is_noop(self, tmp_path):
        DocumentStore(tmp_path).refresh("never-stored")

    def test_refresh_rejects_bad_names(self, tmp_path):
        with pytest.raises(StoreError):
            DocumentStore(tmp_path).refresh("../escape")
