"""Tests for the document store."""

import pytest

from repro.dbms.store import DocumentStore
from repro.errors import StoreError
from repro.pxml.build import certain_document
from repro.pxml.model import PXDocument, px_deep_equal
from repro.xmlkit.nodes import XDocument, deep_equal, element
from repro.xmlkit.parser import parse_document


@pytest.fixture
def plain_doc():
    return parse_document("<movies><movie><title>Jaws</title></movie></movies>")


class TestInMemory:
    def test_put_get(self, plain_doc):
        store = DocumentStore()
        store.put("movies", plain_doc)
        assert store.get("movies") is plain_doc

    def test_missing_raises(self):
        with pytest.raises(StoreError):
            DocumentStore().get("nope")

    def test_contains(self, plain_doc):
        store = DocumentStore()
        store.put("movies", plain_doc)
        assert "movies" in store
        assert "other" not in store

    def test_list_sorted(self, plain_doc):
        store = DocumentStore()
        store.put("zeta", plain_doc)
        store.put("alpha", plain_doc.copy())
        assert store.list() == ["alpha", "zeta"]

    def test_delete(self, plain_doc):
        store = DocumentStore()
        store.put("movies", plain_doc)
        store.delete("movies")
        assert "movies" not in store

    def test_delete_missing_raises(self):
        with pytest.raises(StoreError):
            DocumentStore().delete("nope")

    def test_kind(self, plain_doc):
        store = DocumentStore()
        store.put("plain", plain_doc)
        store.put("prob", certain_document(plain_doc))
        assert store.kind("plain") == "xml"
        assert store.kind("prob") == "pxml"

    @pytest.mark.parametrize("name", ["", "a b", "../etc", "x" * 200, ".hidden"])
    def test_invalid_names_rejected(self, name, plain_doc):
        with pytest.raises(StoreError):
            DocumentStore().put(name, plain_doc)

    def test_invalid_payload_rejected(self):
        with pytest.raises(StoreError):
            DocumentStore().put("x", "<not-a-document/>")


class TestPersistence:
    def test_plain_roundtrip(self, tmp_path, plain_doc):
        DocumentStore(tmp_path).put("movies", plain_doc)
        loaded = DocumentStore(tmp_path).get("movies")
        assert isinstance(loaded, XDocument)
        assert deep_equal(loaded.root, plain_doc.root)

    def test_pxml_roundtrip(self, tmp_path, plain_doc):
        document = certain_document(plain_doc)
        DocumentStore(tmp_path).put("movies", document)
        loaded = DocumentStore(tmp_path).get("movies")
        assert isinstance(loaded, PXDocument)
        assert px_deep_equal(loaded.root, document.root)

    def test_files_on_disk(self, tmp_path, plain_doc):
        store = DocumentStore(tmp_path)
        store.put("plain", plain_doc)
        store.put("prob", certain_document(plain_doc))
        assert (tmp_path / "plain.xml").exists()
        assert (tmp_path / "prob.pxml").exists()

    def test_overwrite_changes_kind(self, tmp_path, plain_doc):
        store = DocumentStore(tmp_path)
        store.put("doc", plain_doc)
        store.put("doc", certain_document(plain_doc))
        assert not (tmp_path / "doc.xml").exists()
        assert DocumentStore(tmp_path).kind("doc") == "pxml"

    def test_list_sees_disk(self, tmp_path, plain_doc):
        DocumentStore(tmp_path).put("movies", plain_doc)
        assert DocumentStore(tmp_path).list() == ["movies"]

    def test_delete_removes_file(self, tmp_path, plain_doc):
        store = DocumentStore(tmp_path)
        store.put("movies", plain_doc)
        store.delete("movies")
        assert not (tmp_path / "movies.xml").exists()
