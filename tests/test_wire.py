"""Property-based round-trip tests for the exact-Fraction wire format.

Stdlib-only "property testing": a seeded :class:`random.Random` drives
thousands of generated Fractions, count distributions and ranked-answer
payloads through ``encode → json → decode`` and asserts bit-identity.
The seed is fixed, so a failure reproduces deterministically; crank
``WIRE_CASES`` up locally for a deeper sweep.
"""

import json
import math
import os
import random
from fractions import Fraction

import pytest

from repro.dbms.cache_store import _decode_answer, _encode_answer
from repro.errors import WireFormatError
from repro.feedback.conditioning import FeedbackStep
from repro.pxml.stats import NodeStats
from repro.query.fusion import fuse_answers
from repro.query.ranking import RankedAnswer, RankedItem
from repro.server import wire

#: Fractions per property sweep (distributions/answers derive from it).
WIRE_CASES = int(os.environ.get("WIRE_CASES", "2000"))

RNG_SEED = 0x1337


def random_fraction(rng: random.Random) -> Fraction:
    """Probability-shaped and adversarial Fractions alike: tiny, huge
    (hundreds of digits), negative, integral, and exact-float values."""
    shape = rng.randrange(6)
    if shape == 0:  # plain small probability
        denominator = rng.randrange(1, 1000)
        return Fraction(rng.randrange(0, denominator + 1), denominator)
    if shape == 1:  # huge numerator/denominator (SQLite/JSON carry strings)
        bits = rng.randrange(64, 1024)
        return Fraction(rng.getrandbits(bits), rng.getrandbits(bits) + 1)
    if shape == 2:  # negative (the format is general, not probability-only)
        return Fraction(-rng.getrandbits(48), rng.getrandbits(48) + 1)
    if shape == 3:  # integral values keep their /1 denominator
        return Fraction(rng.randrange(-5, 6))
    if shape == 4:  # exact binary floats (the decay the format prevents)
        return Fraction(rng.random()).limit_denominator(10**12)
    # products of many small factors — the Shannon-expansion shape
    value = Fraction(1)
    for _ in range(rng.randrange(1, 12)):
        denominator = rng.randrange(1, 30)
        value *= Fraction(rng.randrange(0, denominator + 1), denominator)
    return value


def random_value(rng: random.Random) -> str:
    """Answer values: ASCII, unicode (CJK/emoji/combining), JSON-hostile
    quotes/backslashes/control characters, empty strings."""
    alphabets = [
        "abcdefghijklmnopqrstuvwxyz0123456789 _-",
        "äöüßéèêñçживётフランス語中文字汉字",
        "\"\\'/<>&{}[]:,\n\t\r",
        "😀🎬🍿⭐🔬",
    ]
    pieces = []
    for _ in range(rng.randrange(0, 12)):
        alphabet = rng.choice(alphabets)
        pieces.append(rng.choice(alphabet))
    return "".join(pieces)


def random_answer(rng: random.Random) -> RankedAnswer:
    values = set()
    items = []
    for _ in range(rng.randrange(0, 12)):
        value = random_value(rng)
        if value in values:
            continue  # RankedAnswer values are distinct by construction
        values.add(value)
        probability = abs(random_fraction(rng))
        items.append(RankedItem(value, probability, rng.randrange(1, 5)))
    return RankedAnswer(items)


def random_distribution(rng: random.Random) -> dict:
    return {
        count: abs(random_fraction(rng))
        for count in rng.sample(range(0, 10**6), rng.randrange(0, 20))
    }


def random_aggregate_distribution(rng: random.Random) -> dict:
    """Aggregate-shaped keys: ints, non-integral Fractions, and the
    min/max no-match outcome (``None``)."""
    distribution: dict = {}
    for _ in range(rng.randrange(0, 16)):
        shape = rng.randrange(3)
        if shape == 0:
            key = rng.randrange(-10**6, 10**6)
        elif shape == 1:
            value = random_fraction(rng)
            if value.denominator == 1:
                value += Fraction(1, 2)  # keep it non-integral
            key = value
        else:
            key = None
        distribution[key] = abs(random_fraction(rng))
    return distribution


class TestFractionRoundTrip:
    def test_thousands_of_fractions(self):
        rng = random.Random(RNG_SEED)
        for _ in range(WIRE_CASES):
            value = random_fraction(rng)
            encoded = wire.encode_fraction(value)
            # Survives a real JSON hop (string in, string out).
            hopped = json.loads(json.dumps(encoded))
            decoded = wire.decode_fraction(hopped)
            assert decoded == value
            assert isinstance(decoded, Fraction)
            # Exactness, not closeness: numerator/denominator identity.
            assert (decoded.numerator, decoded.denominator) == (
                value.numerator,
                value.denominator,
            )

    def test_canonical_form_is_reduced(self):
        assert wire.encode_fraction(Fraction(2, 4)) == "1/2"
        assert wire.encode_fraction(Fraction(3)) == "3/1"
        assert wire.decode_fraction("2/4") == Fraction(1, 2)

    @pytest.mark.parametrize(
        "garbage",
        ["", "1", "1/", "/2", "a/b", "1/0", "1.5/2", "1/2/3", "0x1/2",
         "1 /2", "∞/1", None, 0.5, ["1", "2"], {"n": 1, "d": 2}],
    )
    def test_malformed_fraction_raises(self, garbage):
        with pytest.raises(WireFormatError):
            wire.decode_fraction(garbage)


class TestAnswerRoundTrip:
    def test_hundreds_of_answers(self):
        rng = random.Random(RNG_SEED + 1)
        for _ in range(max(WIRE_CASES // 5, 50)):
            answer = random_answer(rng)
            payload = json.loads(json.dumps(wire.encode_answer(answer)))
            decoded = wire.decode_answer(payload)
            assert [
                (item.value, item.probability, item.occurrences)
                for item in decoded.items
            ] == [
                (item.value, item.probability, item.occurrences)
                for item in answer.items
            ]

    def test_order_survives(self):
        """RankedAnswer orders by (-probability, value); the wire keeps
        that order so a decoded answer ranks identically."""
        rng = random.Random(RNG_SEED + 2)
        for _ in range(200):
            answer = random_answer(rng)
            decoded = wire.decode_answer(wire.encode_answer(answer))
            assert decoded.values() == answer.values()

    def test_cache_store_payload_is_the_same_format(self):
        """The persistent cache rows and the HTTP wire share one
        encoding — a row payload decodes through the wire module and
        vice versa."""
        rng = random.Random(RNG_SEED + 3)
        for _ in range(100):
            answer = random_answer(rng)
            row = _encode_answer(answer)                  # cache row text
            via_wire = wire.decode_answer(json.loads(row))
            via_store = _decode_answer(json.dumps(wire.encode_answer(answer)))
            for decoded in (via_wire, via_store):
                assert [
                    (item.value, item.probability, item.occurrences)
                    for item in decoded.items
                ] == [
                    (item.value, item.probability, item.occurrences)
                    for item in answer.items
                ]

    @pytest.mark.parametrize(
        "garbage",
        [
            None,
            "items",
            {"items": []},
            [["only-two", "1/2"]],
            [["v", "1/2", 1, "extra"]],
            [[1, "1/2", 1]],            # non-string value
            [["v", 0.5, 1]],            # float probability
            [["v", "1/2", "1"]],        # non-int occurrences
            [["v", "1/2", True]],       # bool is not an occurrence count
        ],
    )
    def test_malformed_answer_raises(self, garbage):
        with pytest.raises(WireFormatError):
            wire.decode_answer(garbage)


class TestDistributionRoundTrip:
    def test_hundreds_of_distributions(self):
        rng = random.Random(RNG_SEED + 4)
        for _ in range(max(WIRE_CASES // 5, 50)):
            distribution = random_distribution(rng)
            payload = json.loads(json.dumps(wire.encode_distribution(distribution)))
            decoded = wire.decode_distribution(payload)
            assert decoded == distribution
            # Counts stay ints (no "2" vs 2 decay through JSON objects).
            assert all(isinstance(count, int) for count in decoded)

    def test_encoded_form_is_sorted(self):
        encoded = wire.encode_distribution(
            {3: Fraction(1, 4), 1: Fraction(1, 2), 2: Fraction(1, 4)}
        )
        assert [entry[0] for entry in encoded] == [1, 2, 3]

    @pytest.mark.parametrize(
        "garbage",
        [
            None,
            {"1": "1/2"},
            [[1, "1/2"], [1, "1/3"]],   # duplicate count
            [["1", "1/2"]],             # string count
            [[1.0, "1/2"]],             # float count
            [[1]],
        ],
    )
    def test_malformed_distribution_raises(self, garbage):
        with pytest.raises(WireFormatError):
            wire.decode_distribution(garbage)


class TestAggregateDistributionRoundTrip:
    def test_hundreds_of_aggregate_distributions(self):
        rng = random.Random(RNG_SEED + 5)
        for _ in range(max(WIRE_CASES // 5, 50)):
            distribution = random_aggregate_distribution(rng)
            payload = json.loads(
                json.dumps(wire.encode_aggregate_distribution(distribution))
            )
            decoded = wire.decode_aggregate_distribution(payload)
            assert decoded == distribution
            # Canonical key types survive: integral values are ints,
            # non-integral exact Fractions, the no-match outcome None.
            for key in decoded:
                if isinstance(key, Fraction):
                    assert key.denominator != 1
                else:
                    assert key is None or isinstance(key, int)

    def test_count_distributions_share_the_wire_shape(self):
        """A pure count distribution encodes to exactly the
        encode_distribution payload — one wire shape for both codecs."""
        distribution = {0: Fraction(1, 3), 2: Fraction(2, 3)}
        assert wire.encode_aggregate_distribution(distribution) == \
            wire.encode_distribution(distribution)

    def test_canonical_order_none_first(self):
        encoded = wire.encode_aggregate_distribution(
            {Fraction(5, 2): Fraction(1, 4), None: Fraction(1, 4),
             1: Fraction(1, 2)}
        )
        assert [entry[0] for entry in encoded] == [None, 1, "5/2"]

    def test_integral_fraction_keys_normalize(self):
        encoded = wire.encode_aggregate_distribution(
            {Fraction(4, 2): Fraction(1, 2)}
        )
        assert encoded == [[2, "1/2"]]
        decoded = wire.decode_aggregate_distribution([["4/1", "1/2"]])
        assert decoded == {4: Fraction(1, 2)}
        assert all(isinstance(key, int) for key in decoded)

    @pytest.mark.parametrize(
        "garbage",
        [
            None,
            {"1": "1/2"},
            [[1, "1/2"], ["1/1", "1/3"]],  # duplicate value after normalize
            [[1.5, "1/2"]],                # float value
            [[True, "1/2"]],               # bool value
            [["x", "1/2"]],                # malformed fraction value
            [[None, 0.5]],                 # float probability
            [[1]],
        ],
    )
    def test_malformed_aggregate_distribution_raises(self, garbage):
        with pytest.raises(WireFormatError):
            wire.decode_aggregate_distribution(garbage)


def random_fused_answer(rng: random.Random):
    """A structurally honest FusedAnswer: built by actually fusing
    random per-document ranked answers, so scores, provenance and the
    normalized weights obey the fusion invariants."""
    documents = rng.sample(
        ["alpha", "beta", "gamma", "delta", "epsilon"], rng.randrange(1, 5)
    )
    answers = {}
    for name in documents:
        seen: set = set()
        items = []
        for _ in range(rng.randrange(0, 6)):
            value = random_value(rng)
            if not value or value in seen:
                continue
            seen.add(value)
            denominator = rng.randrange(2, 50)
            probability = Fraction(rng.randrange(1, denominator + 1), denominator)
            items.append(RankedItem(value, probability, rng.randrange(1, 4)))
        answers[name] = RankedAnswer(items)
    strategy = rng.choice(["prob", "rrf"])
    kwargs: dict = {"strategy": strategy}
    if rng.randrange(2):
        boosted = rng.sample(documents, rng.randrange(0, len(documents) + 1))
        kwargs["weights"] = {name: rng.randrange(1, 5) for name in boosted}
    if strategy == "rrf":
        kwargs["rrf_k"] = rng.choice([0, 7, 60, Fraction(121, 2)])
    return fuse_answers(answers, **kwargs)


class TestFusedAnswerRoundTrip:
    def test_hundreds_of_fused_answers(self):
        rng = random.Random(RNG_SEED + 7)
        for _ in range(max(WIRE_CASES // 5, 50)):
            fused = random_fused_answer(rng)
            payload = json.loads(json.dumps(wire.encode_fused_answer(fused)))
            decoded = wire.decode_fused_answer(payload)
            # Dataclass equality: strategy, exact scores, provenance
            # triples, membership order, normalized weights and k.
            assert decoded == fused
            assert decoded.values() == fused.values()
            for item in decoded.items:
                assert isinstance(item.score, Fraction)
                for source in item.sources:
                    assert isinstance(source.probability, Fraction)
                    assert isinstance(source.rank, int)

    def test_k_only_present_for_rrf(self):
        rng = random.Random(RNG_SEED + 8)
        answers = {"a": random_answer(rng)}
        prob = wire.encode_fused_answer(fuse_answers(answers))
        rrf = wire.encode_fused_answer(
            fuse_answers(answers, strategy="rrf", rrf_k=9)
        )
        assert "k" not in prob
        assert rrf["k"] == "9/1"

    @pytest.mark.parametrize(
        "garbage",
        [
            None,
            [],
            {},
            {"strategy": "borda", "documents": [], "weights": {}, "items": []},
            {"strategy": "prob", "weights": {}, "items": []},   # no documents
            {"strategy": "prob", "documents": "a", "weights": {}, "items": []},
            {"strategy": "prob", "documents": [1], "weights": {}, "items": []},
            {"strategy": "prob", "documents": [], "weights": [], "items": []},
            {"strategy": "prob", "documents": [],
             "weights": {"a": 0.5}, "items": []},               # float weight
            {"strategy": "prob", "documents": [], "weights": {}, "items": {}},
            {"strategy": "prob", "documents": [], "weights": {},
             "items": [{"value": "v", "score": "1/2"}]},        # no sources
            {"strategy": "prob", "documents": [], "weights": {},
             "items": [{"value": "v", "score": 0.5, "sources": []}]},
            {"strategy": "prob", "documents": [], "weights": {},
             "items": [{"value": "v", "score": "1/2",
                        "sources": [["a", 1]]}]},               # short triple
            {"strategy": "prob", "documents": [], "weights": {},
             "items": [{"value": "v", "score": "1/2",
                        "sources": [["a", True, "1/2"]]}]},     # bool rank
            {"strategy": "prob", "documents": [], "weights": {},
             "items": [{"value": "v", "score": "1/2",
                        "sources": [["a", 1, 0.5]]}]},          # float prob
        ],
    )
    def test_malformed_fused_answer_raises(self, garbage):
        with pytest.raises(WireFormatError):
            wire.decode_fused_answer(garbage)


class TestStructRoundTrip:
    def test_node_stats(self):
        rng = random.Random(RNG_SEED + 5)
        for _ in range(200):
            stats = NodeStats(
                probability_nodes=rng.randrange(10**6),
                possibility_nodes=rng.randrange(10**6),
                element_nodes=rng.randrange(10**6),
                text_nodes=rng.randrange(10**6),
                choice_points=rng.randrange(10**4),
                max_branching=rng.randrange(1, 100),
                world_count=rng.randrange(1, 10**12),
            )
            payload = json.loads(json.dumps(wire.encode_node_stats(stats)))
            assert payload["total"] == stats.total
            assert wire.decode_node_stats(payload) == stats

    def test_feedback_step(self):
        rng = random.Random(RNG_SEED + 6)
        for _ in range(200):
            step = FeedbackStep(
                kind=rng.choice(["confirm", "reject"]),
                expression="//person/tel",
                value=random_value(rng),
                prior=abs(random_fraction(rng)),
                nodes_before=rng.randrange(10**6),
                nodes_after=rng.randrange(10**6),
                worlds_before=rng.randrange(1, 10**9),
                worlds_after=rng.randrange(1, 10**9),
            )
            payload = json.loads(json.dumps(wire.encode_feedback_step(step)))
            assert wire.decode_feedback_step(payload) == step

    @pytest.mark.parametrize("codec", ["node_stats", "feedback_step"])
    def test_missing_fields_raise(self, codec):
        decode = getattr(wire, f"decode_{codec}")
        with pytest.raises(WireFormatError):
            decode({})
        with pytest.raises(WireFormatError):
            decode(None)


def test_sweep_is_not_degenerate():
    """The generators actually cover the interesting regions (guards the
    property tests against silently shrinking)."""
    rng = random.Random(RNG_SEED)
    fractions = [random_fraction(rng) for _ in range(1000)]
    assert any(value < 0 for value in fractions)
    assert any(value.denominator == 1 for value in fractions)
    assert any(value.denominator > 10**18 for value in fractions)
    assert any(math.gcd(value.numerator, value.denominator) == 1 and
               value.numerator > 10**18 for value in fractions)
    values = [random_value(rng) for _ in range(500)]
    assert any('"' in value or "\\" in value for value in values)
    assert any(any(ord(ch) > 0x2000 for ch in value) for value in values)
