"""Tests for the public API surface and the docstring examples.

Docstrings are executable documentation: every doctest in the library
must pass, and every name exported through ``repro.__all__`` must
resolve.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES_WITH_DOCTESTS = [
    "repro.probability",
    "repro.xmlkit.nodes",
    "repro.xmlkit.dtd",
    "repro.xmlkit.xpath.parser",
    "repro.xmlkit.xpath.evaluator",
    "repro.pxml.build",
    "repro.pxml.stats",
    "repro.pxml.serialize",
    "repro.core.similarity",
    "repro.core.rules",
    "repro.core.domain",
    "repro.core.oracle",
    "repro.core.matching",
    "repro.core.engine",
    "repro.query.quality",
    "repro.dbms.store",
    "repro.dbms.module",
    "repro.dbms.xq",
    "repro.data.imdb",
    "repro.data.mpeg7",
    "repro.data.addressbook",
    "repro.data.perturb",
]


def _all_library_modules():
    modules = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(info.name)
    return modules


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("module_name", _all_library_modules())
    def test_every_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", _all_library_modules())
    def test_every_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"


class TestDoctests:
    @pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
    def test_module_doctests(self, module_name):
        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0, f"{result.failed} doctest failure(s) in {module_name}"
        assert result.attempted > 0, f"expected doctests in {module_name}"
