"""Tests for answer-quality measures (paper ref [13])."""

from fractions import Fraction

from hypothesis import given, strategies as st

from repro.query.quality import answer_quality, precision_recall_at
from repro.query.ranking import RankedAnswer, RankedItem


def answer(*pairs):
    return RankedAnswer([RankedItem(value, Fraction(prob)) for value, prob in pairs])


class TestAnswerQuality:
    def test_perfect_answer(self):
        quality = answer_quality(answer(("a", 1), ("b", 1)), {"a", "b"})
        assert quality.precision == 1
        assert quality.recall == 1
        assert quality.f1 == 1

    def test_empty_answer_empty_truth(self):
        quality = answer_quality(answer(), set())
        assert quality.precision == 1 and quality.recall == 1

    def test_wrong_value_lowers_precision(self):
        quality = answer_quality(answer(("a", 1), ("junk", 1)), {"a"})
        assert quality.precision == Fraction(1, 2)
        assert quality.recall == 1

    def test_low_probability_wrong_value_hurts_less(self):
        hedged = answer_quality(answer(("a", 1), ("junk", "1/10")), {"a"})
        confident = answer_quality(answer(("a", 1), ("junk", 1)), {"a"})
        assert hedged.precision > confident.precision

    def test_missing_truth_lowers_recall(self):
        quality = answer_quality(answer(("a", 1)), {"a", "b"})
        assert quality.recall == Fraction(1, 2)

    def test_partial_probability_partial_recall(self):
        quality = answer_quality(answer(("a", "3/4")), {"a"})
        assert quality.recall == Fraction(3, 4)
        assert quality.precision == 1

    def test_f1_zero_when_nothing_right(self):
        quality = answer_quality(answer(("junk", 1)), {"a"})
        assert quality.f1 == 0

    def test_summary_format(self):
        text = answer_quality(answer(("a", 1)), {"a"}).summary()
        assert "precision=1.000" in text

    @given(st.lists(st.tuples(st.sampled_from("abcdef"),
                              st.fractions(min_value=0, max_value=1)), max_size=6),
           st.sets(st.sampled_from("abcdef"), max_size=6))
    def test_bounds(self, items, truth):
        merged = {}
        for value, prob in items:
            merged[value] = prob
        ranked = answer(*((v, p) for v, p in merged.items() if p > 0))
        quality = answer_quality(ranked, truth)
        assert 0 <= quality.precision <= 1
        assert 0 <= quality.recall <= 1
        assert 0 <= quality.f1 <= 1


class TestThresholded:
    def test_threshold_drops_uncertain(self):
        ranked = answer(("a", 1), ("b", "1/10"))
        quality = precision_recall_at(ranked, {"a"}, Fraction(1, 2))
        assert quality.precision == 1
        assert quality.recall == 1

    def test_threshold_zero_keeps_everything(self):
        ranked = answer(("a", "1/10"), ("junk", "1/10"))
        quality = precision_recall_at(ranked, {"a"}, Fraction(0))
        assert quality.precision == Fraction(1, 2)

    def test_empty_after_threshold(self):
        ranked = answer(("a", "1/10"))
        quality = precision_recall_at(ranked, {"a"}, Fraction(1, 2))
        assert quality.recall == 0
