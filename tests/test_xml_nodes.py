"""Tests for the plain XML node model."""

import pytest
from hypothesis import given

from repro.xmlkit.nodes import (
    XDocument,
    XElement,
    XText,
    canonical_key,
    deep_equal,
    element,
)
from .conftest import xml_elements


class TestXText:
    def test_holds_value(self):
        assert XText("hi").value == "hi"

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            XText(42)

    def test_node_count(self):
        assert XText("x").node_count() == 1

    def test_copy_is_independent(self):
        original = XText("x")
        clone = original.copy()
        assert clone.value == "x"
        assert clone is not original


class TestXElement:
    def test_string_children_become_text(self):
        node = XElement("a", children=["hello"])
        assert isinstance(node.children[0], XText)

    def test_rejects_bad_tag(self):
        with pytest.raises(ValueError):
            XElement("")

    def test_rejects_bad_child(self):
        with pytest.raises(TypeError):
            XElement("a").append(42)

    def test_parent_links(self):
        parent = XElement("a")
        child = parent.append(XElement("b"))
        assert child.parent is parent

    def test_find_returns_first(self):
        node = element("r", element("x", "1"), element("x", "2"))
        assert node.find("x").text() == "1"

    def test_find_missing_returns_none(self):
        assert element("r").find("x") is None

    def test_child_elements_filters_by_tag(self):
        node = element("r", element("x"), element("y"), element("x"))
        assert len(node.child_elements("x")) == 2
        assert len(node.child_elements()) == 3

    def test_text_concatenates_descendants(self):
        node = element("r", element("a", "foo"), XText("-"), element("b", "bar"))
        assert node.text() == "foo-bar"

    def test_node_count_counts_subtree(self):
        node = element("r", element("a", "x"), element("b"))
        # r + a + text + b
        assert node.node_count() == 4

    def test_iter_preorder(self):
        node = element("r", element("a", "x"), element("b"))
        tags = [n.tag for n in node.iter() if isinstance(n, XElement)]
        assert tags == ["r", "a", "b"]

    def test_iter_elements_by_tag(self):
        node = element("r", element("a"), element("b", element("a")))
        assert len(list(node.iter_elements("a"))) == 2

    def test_copy_deep_and_unparented(self):
        node = element("r", element("a", "x"))
        clone = node.copy()
        assert deep_equal(node, clone)
        assert clone is not node
        assert clone.children[0] is not node.children[0]
        assert clone.parent is None

    def test_ancestors(self):
        root = element("r", element("a", element("b")))
        leaf = root.find("a").find("b")
        assert [n.tag for n in leaf.ancestors()] == ["a", "r"]


class TestXDocument:
    def test_requires_element_root(self):
        with pytest.raises(TypeError):
            XDocument("nope")

    def test_node_count_delegates(self):
        doc = XDocument(element("r", element("a")))
        assert doc.node_count() == 2

    def test_copy(self):
        doc = XDocument(element("r", "x"))
        assert deep_equal(doc.copy().root, doc.root)


class TestDeepEqual:
    def test_equal_ignoring_order(self):
        a = element("m", element("t", "Jaws"), element("g", "Horror"))
        b = element("m", element("g", "Horror"), element("t", "Jaws"))
        assert deep_equal(a, b)
        assert not deep_equal(a, b, ignore_order=False)

    def test_whitespace_only_text_ignored(self):
        a = element("m", XText("  "), element("t", "x"))
        b = element("m", element("t", "x"))
        assert deep_equal(a, b)

    def test_adjacent_text_merged(self):
        a = element("m", XText("ab"))
        b = element("m", XText("a"), XText("b"))
        assert deep_equal(a, b)

    def test_attributes_matter(self):
        assert not deep_equal(element("a", k="1"), element("a", k="2"))

    def test_different_multiplicity_not_equal(self):
        a = element("r", element("x", "1"), element("x", "1"))
        b = element("r", element("x", "1"))
        assert not deep_equal(a, b)

    @given(xml_elements())
    def test_reflexive(self, tree):
        assert deep_equal(tree, tree)

    @given(xml_elements())
    def test_copy_is_deep_equal(self, tree):
        assert deep_equal(tree, tree.copy())

    @given(xml_elements())
    def test_canonical_key_matches_deep_equal_on_copy(self, tree):
        assert canonical_key(tree) == canonical_key(tree.copy())
