"""End-to-end scenarios across the whole stack.

Each test walks a complete user journey — load sources, integrate, store,
query, give feedback, reload — asserting cross-module invariants that no
single-module test covers (persistence round-trips of *conditioned*
documents, query consistency across serialisation, report/stats
agreement).
"""

from fractions import Fraction

import pytest

from repro.core.rules import DeepEqualRule, KeyFieldRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD
from repro.data.imdb import MOVIE_DTD, imdb_document
from repro.data.movies import confusing_mpeg7_six, sequels_six_imdb
from repro.data.mpeg7 import mpeg7_document
from repro.dbms.module import ImpreciseModule
from repro.dbms.store import DocumentStore
from repro.experiments import (
    QUERY_HORROR,
    movie_config,
    section6_document,
    standard_rules,
)
from repro.pxml.model import px_deep_equal
from repro.pxml.serialize import parse_pxml, pxml_to_text
from repro.pxml.stats import tree_stats
from repro.query.engine import ProbQueryEngine
from repro.xmlkit.serializer import serialize

GENERIC = [DeepEqualRule(), LeafValueRule()]


class TestMovieWorkflow:
    """The §VII demo, start to finish, on a persistent store."""

    @pytest.fixture
    def module(self, tmp_path):
        module = ImpreciseModule(DocumentStore(tmp_path))
        module.load_document("mpeg7", mpeg7_document(confusing_mpeg7_six()))
        module.load_document("imdb", imdb_document(sequels_six_imdb()))
        return module

    def test_full_demo_workflow(self, module, tmp_path):
        # 1. Configure with the full rule set, integrate, store.
        report = module.integrate(
            "mpeg7", "imdb", "movies",
            rules=standard_rules("genre", "title", "year"),
            dtd=MOVIE_DTD,
        )
        assert report.undecided_pairs == 3  # one per franchise

        # 2. Query the stored result.
        titles = module.query("movies", "//movie/title")
        assert titles.probability_of("Jaws") == 1

        # 3. Feedback persists through the store.
        module.feedback("movies", "//movie/title", "Jaws: The Revenge",
                        correct=True)

        # 4. A fresh module over the same directory sees the posterior.
        reopened = ImpreciseModule(DocumentStore(tmp_path))
        answer = reopened.query("movies", "//movie/title")
        assert answer.probability_of("Jaws: The Revenge") == 1

    def test_stats_match_report(self, module):
        report = module.integrate(
            "mpeg7", "imdb", "movies",
            rules=standard_rules("genre", "title", "year"),
            dtd=MOVIE_DTD,
        )
        stats = module.stats("movies")
        assert stats.total == report.total_nodes
        assert stats.world_count == report.world_count


class TestSerializationConsistency:
    """Queries must return identical answers before and after a
    serialisation round-trip (fresh uids must not change semantics)."""

    def test_section6_roundtrip_query_equality(self):
        document = section6_document().document
        reloaded = parse_pxml(pxml_to_text(document))
        assert px_deep_equal(reloaded.root, document.root)
        original = ProbQueryEngine(document).query(QUERY_HORROR)
        after = ProbQueryEngine(reloaded).query(QUERY_HORROR)
        assert {i.value: i.probability for i in original} == {
            i.value: i.probability for i in after
        }

    def test_conditioned_document_roundtrip(self, tmp_path):
        from repro.feedback.conditioning import FeedbackSession

        document = section6_document().document
        session = FeedbackSession(document)
        session.confirm(QUERY_HORROR, "Jaws")

        store = DocumentStore(tmp_path)
        store.put("posterior", session.document)
        reloaded = DocumentStore(tmp_path).get("posterior")
        answer = ProbQueryEngine(reloaded).query(QUERY_HORROR)
        assert answer.probability_of("Jaws") == 1


class TestCrossSourceConsistency:
    """The same information through different paths gives the same
    numbers: module vs direct engine, XPath vs FLWOR."""

    def test_module_equals_direct_engine(self):
        from repro.core.engine import Integrator

        module = ImpreciseModule()
        module.load_document("a", mpeg7_document(confusing_mpeg7_six()))
        module.load_document("b", imdb_document(sequels_six_imdb()))
        module.integrate(
            "a", "b", "out", rules=standard_rules("genre", "title", "year"),
            dtd=MOVIE_DTD,
        )
        via_module = module.query("out", "//movie/year")

        config = movie_config("genre", "title", "year")
        direct = Integrator(config).integrate(
            mpeg7_document(confusing_mpeg7_six()),
            imdb_document(sequels_six_imdb()),
        )
        via_engine = ProbQueryEngine(direct.document).query("//movie/year")
        assert {i.value: i.probability for i in via_module} == {
            i.value: i.probability for i in via_engine
        }

    def test_xpath_equals_flwor(self):
        from repro.dbms.xq import evaluate_flwor_ranked

        document = section6_document().document
        xpath_answer = ProbQueryEngine(document).query("//movie/year")
        flwor_answer = evaluate_flwor_ranked(
            document, "for $m in //movie return $m/year"
        )
        assert {i.value: i.probability for i in xpath_answer} == {
            i.value: i.probability for i in flwor_answer
        }


class TestKeyedAddressbooks:
    """A small dataspace with a key rule: repeated observations of the
    same value accumulate probability mass (sequential Bayes)."""

    def test_repeated_observation_raises_confidence(self):
        from repro.core.engine import IntegrationConfig
        from repro.core.incremental import integrate_many
        from repro.core.oracle import Oracle
        from repro.xmlkit.parser import parse_document

        def book(tel):
            return parse_document(
                f"<addressbook><person><nm>John</nm><tel>{tel}</tel>"
                "</person></addressbook>"
            )

        config = IntegrationConfig(
            oracle=Oracle([DeepEqualRule(), KeyFieldRule("person", "nm"),
                           LeafValueRule()]),
            dtd=ADDRESSBOOK_DTD,
        )
        two, _ = integrate_many([book("1111"), book("2222")], config)
        three, _ = integrate_many(
            [book("1111"), book("2222"), book("1111")], config
        )
        p_two = ProbQueryEngine(two).query("//person/tel").probability_of("1111")
        p_three = ProbQueryEngine(three).query("//person/tel").probability_of("1111")
        assert p_two == Fraction(1, 2)
        assert p_three == Fraction(3, 4)
