"""Tests for the pre-fork multi-worker serving tier (ISSUE 8).

Three layers:

* pure-logic tests of :class:`ConsistentHashRing` and the router's
  affinity extraction (no processes, no sockets);
* live-tier tests over :class:`MultiProcServer` — N real worker
  subprocesses behind the router — including the N-worker soak asserting
  Fraction-identical answers vs an in-process serial replay, and
  shard-routing stability under document add/delete;
* graceful-drain tests (in-flight requests complete, new connections
  refused) against a deterministic slow upstream.

Soak sizes are env-tunable (``MULTIPROC_WORKERS``,
``MULTIPROC_SOAK_THREADS``, ``MULTIPROC_SOAK_REQUESTS``) so CI can run a
reduced matrix.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.dbms.service import DataspaceService
from repro.errors import ImpreciseError
from repro.server.app import route_label
from repro.server.client import DataspaceClient, DataspaceClientPool, ServerError
from repro.server.http import BackgroundServer, HTTPRequest, json_response
from repro.server.multiproc import (
    CircuitBreaker,
    ConsistentHashRing,
    MultiProcServer,
    RouterApp,
    _Upstream,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")

N_WORKERS = int(os.environ.get("MULTIPROC_WORKERS", "4"))
SOAK_THREADS = int(os.environ.get("MULTIPROC_SOAK_THREADS", "4"))
SOAK_REQUESTS = int(os.environ.get("MULTIPROC_SOAK_REQUESTS", "6"))

XML_DOCS = {
    f"src{i}": f"<r><x>{i}</x><x>{i + 1}</x><y>{i % 3}</y></r>"
    for i in range(8)
}
QUERIES = ["//x", "//y", '//x[. = "3"]']


def request_for(method, path, body=b"", target=None):
    return HTTPRequest(
        method=method,
        target=target or path,
        path=path,
        query={},
        headers={},
        body=body,
    )


class TestConsistentHashRing:
    def test_deterministic_across_instances(self):
        members = [f"worker-{i}" for i in range(4)]
        first, second = ConsistentHashRing(members), ConsistentHashRing(members)
        for key in XML_DOCS:
            assert first.member_for(key) == second.member_for(key)

    def test_every_key_maps_to_a_member(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        for i in range(200):
            assert ring.member_for(f"doc{i}") in ("a", "b", "c")

    def test_distribution_is_roughly_even(self):
        ring = ConsistentHashRing([f"worker-{i}" for i in range(4)])
        counts = {}
        for i in range(2000):
            owner = ring.member_for(f"doc{i}")
            counts[owner] = counts.get(owner, 0) + 1
        # 2000 keys over 4 members: each should own a real share, not a
        # sliver (consistent hashing with 64 replicas is ±few percent).
        assert all(count > 200 for count in counts.values()), counts

    def test_key_churn_never_moves_other_keys(self):
        """Adding/deleting *documents* is invisible to the ring: the
        owner is a pure function of (members, key)."""
        ring = ConsistentHashRing(["worker-0", "worker-1"])
        before = {key: ring.member_for(key) for key in XML_DOCS}
        ring.member_for("a-brand-new-document")  # "add"
        after = {key: ring.member_for(key) for key in XML_DOCS}
        assert before == after

    def test_membership_growth_moves_a_bounded_fraction(self):
        """Going from N to N+1 workers re-homes ~1/(N+1) of the keys —
        consistent hashing's whole point (modulo hashing would move
        nearly all of them)."""
        keys = [f"doc{i}" for i in range(1000)]
        small = ConsistentHashRing([f"worker-{i}" for i in range(4)])
        grown = ConsistentHashRing([f"worker-{i}" for i in range(5)])
        moved = sum(
            1 for key in keys if small.member_for(key) != grown.member_for(key)
        )
        # Expected ~200/1000; fail only on modulo-like wholesale movement.
        assert moved < 450, moved
        # Every moved key must have moved TO the new member.
        for key in keys:
            if small.member_for(key) != grown.member_for(key):
                assert grown.member_for(key) == "worker-4"

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a", "a"])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], replicas=0)


class TestRouterAffinity:
    def router(self, n=3):
        upstreams = [_Upstream(f"worker-{i}", "127.0.0.1", 1 + i) for i in range(n)]
        return RouterApp(upstreams)

    def test_document_endpoints_route_by_name(self):
        router = self.router()
        body = json.dumps({"document": "movies", "xpath": "//x"}).encode()
        for path in ("/query", "/batch", "/aggregate", "/feedback"):
            assert router._affinity(request_for("POST", path, body)) == "movies"
        assert (
            router._affinity(request_for("PUT", "/documents/movies"))
            == "movies"
        )
        assert (
            router._affinity(request_for("DELETE", "/documents/movies"))
            == "movies"
        )
        assert (
            router._affinity(request_for("GET", "/documents/movies/stats"))
            == "movies"
        )

    def test_integrate_routes_by_output(self):
        router = self.router()
        body = json.dumps({"a": "x", "b": "y", "output": "xy"}).encode()
        assert router._affinity(request_for("POST", "/integrate", body)) == "xy"

    def test_no_affinity_round_robins(self):
        router = self.router(n=3)
        seen = [
            router.worker_for(request_for("GET", "/healthz")).key
            for _ in range(6)
        ]
        assert seen == [
            "worker-0", "worker-1", "worker-2",
            "worker-0", "worker-1", "worker-2",
        ]

    def test_same_name_same_worker_every_time(self):
        router = self.router()
        body = json.dumps({"document": "movies", "xpath": "//x"}).encode()
        owners = {
            router.worker_for(request_for("POST", "/query", body)).key
            for _ in range(10)
        }
        assert len(owners) == 1

    def test_garbage_body_still_routes(self):
        router = self.router()
        worker = router.worker_for(request_for("POST", "/query", b"{not json"))
        assert worker.key in {u.key for u in router.upstreams}

    def test_label_collapses_names(self):
        assert route_label("PUT", "/documents/any-name") == "PUT /documents/{name}"
        assert (
            route_label("GET", "/documents/x/stats")
            == "GET /documents/{name}/stats"
        )
        assert route_label("POST", "/query/") == "POST /query"


class TestCircuitBreaker:
    def test_trips_after_threshold_and_readmits(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.available
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.available  # below threshold
        breaker.record_failure()
        assert not breaker.available
        state = breaker.state()
        assert state["state"] == "open"
        assert state["trips"] == 1
        breaker.readmit()
        assert breaker.available
        assert breaker.state()["readmissions"] == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.available

    def test_force_open_counts_one_trip(self):
        breaker = CircuitBreaker()
        breaker.force_open()
        breaker.force_open()  # idempotent
        assert not breaker.available
        assert breaker.state()["trips"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestBreakerRouting:
    def router(self, n=3):
        upstreams = [
            _Upstream(f"worker-{i}", "127.0.0.1", 1 + i) for i in range(n)
        ]
        return RouterApp(upstreams)

    def test_ejected_owner_reroutes_to_one_stand_in(self):
        router = self.router()
        body = json.dumps({"document": "movies", "xpath": "//x"}).encode()
        owner = router.worker_for(request_for("POST", "/query", body))
        owner.breaker.force_open()
        stand_ins = {
            router.worker_for(request_for("POST", "/query", body)).key
            for _ in range(10)
        }
        # Deterministic: the orphaned shard lands on exactly one healthy
        # stand-in, never back on the ejected owner.
        assert len(stand_ins) == 1
        assert stand_ins != {owner.key}
        owner.breaker.readmit()
        assert (
            router.worker_for(request_for("POST", "/query", body)).key
            == owner.key
        )

    def test_round_robin_skips_open_breakers(self):
        router = self.router(n=3)
        router.upstreams[1].breaker.force_open()
        seen = [
            router.worker_for(request_for("GET", "/healthz")).key
            for _ in range(4)
        ]
        assert "worker-1" not in seen

    def test_all_breakers_open_fails_forward(self):
        """With every worker ejected the router still picks one — the
        caller gets a causal 502, not a refusal to try."""
        router = self.router(n=2)
        for upstream in router.upstreams:
            upstream.breaker.force_open()
        picked = router.worker_for(request_for("GET", "/healthz"))
        assert picked.key in ("worker-0", "worker-1")


@pytest.fixture(scope="module")
def tier(tmp_path_factory):
    """One live N-worker tier shared by the module's E2E tests (worker
    spawn is the expensive part; each test uses distinct documents)."""
    tmp = tmp_path_factory.mktemp("tier")
    store, cache = tmp / "store", tmp / "cache"
    store.mkdir()
    cache.mkdir()
    server = MultiProcServer(store, workers=N_WORKERS, cache_dir=cache)
    host, port = server.start()
    seeder = DataspaceClient(host, port)
    for name, xml in XML_DOCS.items():
        seeder.load(name, xml)
    seeder.close()
    yield server
    server.stop()


class TestLiveTier:
    def test_answers_match_in_process_service(self, tier, tmp_path):
        """Every query through the router is Fraction-identical to the
        same corpus served by one in-process service."""
        reference = DataspaceService(directory=tmp_path / "ref")
        for name, xml in XML_DOCS.items():
            reference.load(name, xml)
        client = DataspaceClient(tier.host, tier.port)
        try:
            for name in XML_DOCS:
                for query in QUERIES:
                    over_http = client.query(name, query)
                    in_process = reference.query(name, query)
                    assert [
                        (i.value, i.probability, i.occurrences)
                        for i in over_http
                    ] == [
                        (i.value, i.probability, i.occurrences)
                        for i in in_process
                    ]
            fused_http = client.search("//x", glob="src*")
            fused_ref = reference.query_all("//x", glob="src*")
            assert fused_http.values() == fused_ref.values()
            assert [i.score for i in fused_http.items] == [
                i.score for i in fused_ref.items
            ]
        finally:
            client.close()
            reference.close()

    def test_stats_aggregates_the_whole_tier(self, tier):
        client = DataspaceClient(tier.host, tier.port)
        try:
            client.query("src0", "//x")
            stats = client.stats()
        finally:
            client.close()
        assert sorted(stats.keys()) == [
            "ring", "router", "supervisor", "workers"
        ]
        assert stats["ring"]["workers"] == [
            f"worker-{i}" for i in range(N_WORKERS)
        ]
        assert stats["ring"]["available"] == stats["ring"]["workers"]
        assert len(stats["workers"]) == N_WORKERS
        assert "POST /query" in stats["router"]["endpoints"]
        assert stats["supervisor"]["restarts"] == 0
        for entry in stats["workers"]:
            assert "http" in entry["stats"]  # each worker's own metrics
            assert entry["breaker"]["state"] == "closed"

    def test_shard_routing_is_stable_under_document_churn(self, tier):
        """Queries of one name land on exactly one worker — the one the
        ring predicts — and keep landing there while other documents
        are added and deleted."""
        client = DataspaceClient(tier.host, tier.port)
        ring = ConsistentHashRing([f"worker-{i}" for i in range(N_WORKERS)])
        target = "src1"
        owner = ring.member_for(target)

        def owner_count():
            stats = client.stats()
            for entry in stats["workers"]:
                if entry["worker"] == owner:
                    return (
                        entry["stats"]["http"]["endpoints"]
                        .get("POST /query", {})
                        .get("count", 0)
                    )
            raise AssertionError(f"{owner} missing from stats")

        try:
            before = owner_count()
            for _ in range(3):
                client.query(target, "//x")
            assert owner_count() == before + 3
            # Document churn: add and delete unrelated names.
            client.load("churn-a", "<r><x>1</x></r>")
            client.load("churn-b", "<r><x>2</x></r>")
            client.delete("churn-a")
            client.delete("churn-b")
            for _ in range(2):
                client.query(target, "//x")
            assert owner_count() == before + 5
        finally:
            client.close()

    def test_write_then_read_through_different_paths(self, tier):
        """An /integrate (routed by output) is immediately visible to
        /search fan-outs that round-robin through *other* workers — the
        shared store plus the cross-process fence at work."""
        client = DataspaceClient(tier.host, tier.port)
        try:
            client.integrate("src0", "src1", "combined")
            values = set()
            # Hit every worker at least once via round-robin /search.
            for _ in range(N_WORKERS):
                fused = client.search("//x", documents=["combined"])
                values.add(tuple(fused.values()))
            assert len(values) == 1  # every worker serves the same answer
            client.delete("combined")
        finally:
            client.close()

    def test_pooled_client_drives_the_tier(self, tier):
        pool = DataspaceClientPool(tier.host, tier.port, max_idle=2)
        results = []

        def worker(index):
            with pool.client() as client:
                results.append(client.query("src2", "//x").values())

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        pool.close()
        assert len(results) == 4
        assert all(result == results[0] for result in results)

    def test_missing_document_is_a_clean_404(self, tier):
        client = DataspaceClient(tier.host, tier.port)
        try:
            with pytest.raises(ServerError) as excinfo:
                client.query("no-such-doc", "//x")
            assert excinfo.value.status == 404
        finally:
            client.close()


class TestSoakVsSerialReplay:
    def schedules(self):
        """Deterministic per-thread op schedules over the shared corpus:
        reads only (the soak threads interleave arbitrarily, so writes
        would make the serial replay ambiguous); every thread mixes
        query/aggregate/search across shard-distributed documents."""
        names = sorted(XML_DOCS)
        schedules = []
        for thread in range(SOAK_THREADS):
            ops = []
            for index in range(SOAK_REQUESTS):
                name = names[(thread + index) % len(names)]
                kind = index % 3
                if kind == 0:
                    ops.append(("query", name, QUERIES[index % len(QUERIES)]))
                elif kind == 1:
                    ops.append(("aggregate", name, "count", "x"))
                else:
                    ops.append(("search", "//x"))
            schedules.append(ops)
        return schedules

    def run_op(self, executor, op):
        if op[0] == "query":
            return [
                (i.value, str(i.probability), i.occurrences)
                for i in executor.query(op[1], op[2])
            ]
        if op[0] == "aggregate":
            distribution = executor.aggregate(op[1], op[2], op[3])
            return sorted((str(k), str(v)) for k, v in distribution.items())
        fused = executor.search(op[1], glob="src*") if hasattr(
            executor, "search"
        ) else executor.query_all(op[1], glob="src*")
        return [(i.value, str(i.score)) for i in fused.items]

    def test_n_worker_soak_fraction_identical_to_serial(self, tier, tmp_path):
        """The acceptance soak: SOAK_THREADS concurrent clients against
        the N-worker tier; every decoded Fraction must equal the serial
        in-process replay of the same schedule."""
        schedules = self.schedules()

        reference = DataspaceService(directory=tmp_path / "ref")
        for name, xml in XML_DOCS.items():
            reference.load(name, xml)
        expected = [
            [self.run_op(reference, op) for op in ops] for ops in schedules
        ]
        reference.close()

        def run_thread(ops):
            client = DataspaceClient(tier.host, tier.port)
            try:
                return [self.run_op(client, op) for op in ops]
            finally:
                client.close()

        with ThreadPoolExecutor(max_workers=SOAK_THREADS) as pool:
            futures = [pool.submit(run_thread, ops) for ops in schedules]
            actual = [future.result(timeout=300) for future in futures]
        assert actual == expected


class TestSupervision:
    """The ISSUE-9 regression: a crashed child must not make the router
    exit or 502 forever — the supervisor respawns it and a passing
    ``/healthz`` probe re-admits it."""

    def test_killed_worker_respawns_and_readmits_mid_soak(self, tmp_path):
        store, cache = tmp_path / "store", tmp_path / "cache"
        store.mkdir()
        cache.mkdir()
        tier = MultiProcServer(
            store, workers=2, cache_dir=cache,
            probe_interval=0.1, backoff_initial=0.05,
        )
        host, port = tier.start()
        client = DataspaceClient(host, port, timeout=30)
        try:
            for name, xml in XML_DOCS.items():
                client.load(name, xml)
            expected = {
                name: client.query(name, "//x").values() for name in XML_DOCS
            }

            victim = tier.workers[0]
            victim_pid = victim.proc.pid
            victim.proc.kill()
            victim.proc.wait(10)

            # Service continues: every document keeps answering through
            # the blip (a request may catch the sub-poll-interval window
            # before ejection and see one 502 — retry, never give up).
            deadline = time.time() + 60
            for name in XML_DOCS:
                while True:
                    try:
                        assert client.query(name, "//x").values() == (
                            expected[name]
                        )
                        break
                    except ServerError as error:
                        assert error.status == 502, error
                        assert time.time() < deadline, "tier never recovered"
                        time.sleep(0.05)

            # Eventually: respawned (restart counted, fresh pid) and
            # re-admitted (both breakers closed, both workers available).
            stats = None
            while time.time() < deadline:
                stats = client.stats()
                if (
                    stats["supervisor"]["restarts"] >= 1
                    and len(stats["ring"]["available"]) == 2
                ):
                    break
                time.sleep(0.1)
            else:
                raise AssertionError(f"no recovery before deadline: {stats}")
            assert tier.workers[0].proc.pid != victim_pid
            assert tier.workers[0].proc.poll() is None
            breakers = {
                entry["worker"]: entry["breaker"]["state"]
                for entry in stats["workers"]
            }
            assert breakers == {"worker-0": "closed", "worker-1": "closed"}
            assert stats["supervisor"]["readmissions"] >= 1

            # Post-recovery answers are identical to pre-kill answers.
            for name in XML_DOCS:
                assert client.query(name, "//x").values() == expected[name]
        finally:
            client.close()
            tier.stop()

    def test_unsupervised_tier_has_no_supervisor_section(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        tier = MultiProcServer(store, workers=1, supervise=False)
        tier.start()
        client = DataspaceClient(tier.host, tier.port)
        try:
            stats = client.stats()
            assert "supervisor" not in stats
        finally:
            client.close()
            tier.stop()


class TestGracefulDrain:
    """Router drain semantics against a deterministic slow upstream:
    the in-flight proxied request completes; new connections are
    refused once the drain begins."""

    def test_in_flight_completes_new_connections_refused(self):
        async def slow_handler(request):
            await asyncio.sleep(0.8)
            return json_response({"done": True})

        with BackgroundServer(slow_handler) as upstream_server:
            upstream = _Upstream(
                "worker-0",
                upstream_server.server.host,
                upstream_server.server.port,
            )
            router = BackgroundServer(RouterApp([upstream]))
            host, port = router.start()

            result = {}

            def slow_request():
                client = DataspaceClient(host, port, timeout=30)
                try:
                    result["response"] = client.healthz()
                except Exception as error:  # noqa: BLE001 - asserted below
                    result["error"] = error
                finally:
                    client.close()

            requester = threading.Thread(target=slow_request)
            requester.start()
            time.sleep(0.25)  # the request is in flight inside the worker

            stopper = threading.Thread(
                target=lambda: router.stop(grace=10)
            )
            stopper.start()
            time.sleep(0.2)  # the drain has closed the accept socket

            with pytest.raises(OSError):
                probe = socket.create_connection((host, port), timeout=2)
                # Acceptance may race the socket close: if the connect
                # sneaks in, the request must still go unanswered.
                probe.sendall(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
                probe.settimeout(2)
                if probe.recv(1) == b"":
                    probe.close()
                    raise ConnectionError("closed without a response")
                probe.close()

            requester.join(timeout=30)
            stopper.join(timeout=30)
            assert result.get("response") == {"done": True}, result

    def test_dead_worker_becomes_502_not_hang(self):
        upstream = _Upstream("worker-0", "127.0.0.1", _free_port())
        with BackgroundServer(RouterApp([upstream])) as router_server:
            host = router_server.server.host
            port = router_server.server.port
            client = DataspaceClient(host, port)
            try:
                with pytest.raises(ServerError) as excinfo:
                    client.healthz()
                assert excinfo.value.status == 502
                assert excinfo.value.error_type == "bad_gateway"
            finally:
                client.close()


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestCLI:
    def spawn(self, tmp_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        store = tmp_path / "store"
        store.mkdir(exist_ok=True)
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(store),
                "--cache-dir", str(tmp_path / "cache"),
                "--http", "127.0.0.1:0", *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )

    def test_workers_flag_serves_and_drains_on_sigterm(self, tmp_path):
        proc = self.spawn(tmp_path, "--workers", "2")
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("serving on http://"), banner
            port = int(banner.rsplit(":", 1)[1])
            assert proc.stdout.readline().strip() == "workers: 2"
            client = DataspaceClient("127.0.0.1", port)
            client.load("doc", "<r><x>7</x></r>")
            assert client.query("doc", "//x").values() == ["7"]
            stats = client.stats()
            assert len(stats["workers"]) == 2
            client.close()
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err

    def test_workers_requires_http(self, tmp_path):
        from repro.cli import main

        (tmp_path / "store").mkdir()
        status = main(["serve", str(tmp_path / "store"), "--workers", "2"])
        assert status == 1

    def test_workers_rejects_nonpositive(self, tmp_path):
        from repro.cli import main

        (tmp_path / "store").mkdir()
        status = main(
            ["serve", str(tmp_path / "store"),
             "--http", "127.0.0.1:0", "--workers", "0"]
        )
        assert status == 1
