"""Tests for partial injective matching enumeration/counting."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.matching import (
    Component,
    MatchingProblem,
    Pair,
    count_matchings,
    count_matchings_containing,
    count_matchings_weighted,
    enumerate_matchings,
    matched_count_by_element,
    matching_distribution,
    matching_weight,
)
from repro.errors import ExplosionError

HALF = Fraction(1, 2)


def complete(m, n, prob=HALF):
    pairs = tuple(Pair(i, j, prob) for i in range(m) for j in range(n))
    return Component(tuple(range(m)), tuple(range(n)), pairs)


def closed_form(m, n):
    """Number of partial matchings of K_{m,n}: Σ C(m,k)·C(n,k)·k!."""
    return sum(
        math.comb(m, k) * math.comb(n, k) * math.factorial(k)
        for k in range(min(m, n) + 1)
    )


class TestPair:
    def test_rejects_zero_probability(self):
        with pytest.raises(ValueError):
            Pair(0, 0, Fraction(0))

    def test_ordering(self):
        assert Pair(0, 1, HALF) < Pair(1, 0, HALF)


class TestMatchingProblem:
    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            MatchingProblem(1, 1, [Pair(0, 5, HALF)])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            MatchingProblem(2, 2, [Pair(0, 0, HALF), Pair(0, 0, HALF)])

    def test_free_elements(self):
        problem = MatchingProblem(3, 2, [Pair(0, 0, HALF)])
        assert problem.free_left() == [1, 2]
        assert problem.free_right() == [1]

    def test_components_split_independent_pairs(self):
        problem = MatchingProblem(4, 4, [Pair(0, 0, HALF), Pair(2, 2, HALF)])
        components = problem.components()
        assert len(components) == 2
        assert components[0].left == (0,)

    def test_components_join_shared_vertices(self):
        problem = MatchingProblem(
            3, 3, [Pair(0, 0, HALF), Pair(0, 1, HALF), Pair(1, 1, HALF)]
        )
        assert len(problem.components()) == 1

    def test_single_component_view(self):
        problem = MatchingProblem(4, 4, [Pair(0, 0, HALF), Pair(2, 2, HALF)])
        joint = problem.as_single_component()
        assert joint.left == (0, 2)


class TestEnumeration:
    def test_empty_component_one_matching(self):
        assert enumerate_matchings(Component((), (), ())) == [()]

    def test_single_pair_two_matchings(self):
        component = complete(1, 1)
        assert len(enumerate_matchings(component)) == 2

    def test_k22_has_seven(self):
        assert len(enumerate_matchings(complete(2, 2))) == 7

    def test_injectivity_respected(self):
        for matching in enumerate_matchings(complete(2, 3)):
            lefts = [pair.left for pair in matching]
            rights = [pair.right for pair in matching]
            assert len(set(lefts)) == len(lefts)
            assert len(set(rights)) == len(rights)

    def test_deterministic_order(self):
        first = enumerate_matchings(complete(2, 2))
        second = enumerate_matchings(complete(2, 2))
        assert first == second
        assert first[0] == ()

    def test_limit_guard(self):
        with pytest.raises(ExplosionError):
            enumerate_matchings(complete(4, 4), limit=10)

    def test_limit_error_carries_estimate(self):
        try:
            enumerate_matchings(complete(4, 4), limit=10)
        except ExplosionError as error:
            assert error.estimated == closed_form(4, 4)


class TestCounting:
    @pytest.mark.parametrize("m,n", [(0, 0), (1, 1), (2, 2), (2, 3), (3, 3), (6, 6), (2, 20)])
    def test_complete_bipartite_closed_form(self, m, n):
        assert count_matchings(complete(m, n)) == closed_form(m, n)

    def test_sequels_six_count(self):
        # The Table I "no rules" workload: K(6,6) → 13 327 matchings.
        assert count_matchings(complete(6, 6)) == 13327

    def test_counts_match_enumeration_sparse(self):
        pairs = tuple(Pair(i, j, HALF) for i, j in [(0, 0), (0, 1), (1, 1), (2, 0)])
        component = Component((0, 1, 2), (0, 1), pairs)
        assert count_matchings(component) == len(enumerate_matchings(component))

    @given(st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10))
    def test_counting_equals_enumeration(self, edges):
        pairs = tuple(Pair(i, j, HALF) for i, j in sorted(edges))
        lefts = tuple(sorted({i for i, _ in edges}))
        rights = tuple(sorted({j for _, j in edges}))
        component = Component(lefts, rights, pairs)
        assert count_matchings(component) == len(enumerate_matchings(component))

    def test_containing_pair(self):
        component = complete(2, 2)
        pair = component.pairs[0]
        explicit = sum(
            1 for matching in enumerate_matchings(component) if pair in matching
        )
        assert count_matchings_containing(component, pair) == explicit

    def test_matched_count_by_element(self):
        component = complete(2, 2)
        left_counts, right_counts = matched_count_by_element(component)
        matchings = enumerate_matchings(component)
        for i in (0, 1):
            explicit = sum(
                1 for m in matchings if any(p.left == i for p in m)
            )
            assert left_counts[i] == explicit

    def test_weighted_counting(self):
        # weight 2 on every pair of K(1,1): Σ = 1 (empty) + 2 (matched).
        component = complete(1, 1)
        weights = {(0, 0): 2}
        assert count_matchings_weighted(component, weights) == 3


class TestDistribution:
    def test_probabilities_sum_to_one(self):
        distribution = matching_distribution(complete(2, 2))
        assert sum(prob for _, prob in distribution) == 1

    def test_uniform_with_half_priors(self):
        distribution = matching_distribution(complete(2, 2, HALF))
        probabilities = {prob for _, prob in distribution}
        assert probabilities == {Fraction(1, 7)}

    def test_high_prior_favours_matching(self):
        distribution = matching_distribution(complete(1, 1, Fraction(9, 10)))
        by_size = {len(matching): prob for matching, prob in distribution}
        assert by_size[1] == Fraction(9, 10)
        assert by_size[0] == Fraction(1, 10)

    def test_weight_formula(self):
        component = complete(2, 2, Fraction(1, 3))
        empty_weight = matching_weight((), component)
        assert empty_weight == Fraction(2, 3) ** 4

    def test_forced_pair_with_probability_one(self):
        component = Component((0,), (0,), (Pair(0, 0, Fraction(1)),))
        distribution = matching_distribution(component)
        assert len(distribution) == 1
        assert len(distribution[0][0]) == 1
