"""Tests for Monte-Carlo world sampling."""

from collections import Counter
from fractions import Fraction

from repro.pxml.build import certain_prob, choice_prob
from repro.pxml.model import PXDocument, PXElement
from repro.pxml.sampling import sample_world, sample_worlds
from repro.pxml.worlds import distinct_worlds
from repro.xmlkit.nodes import canonical_key
from .conftest import make_leaf


def skewed_doc():
    node = choice_prob([("1/8", [make_leaf("a", "rare")]),
                        ("7/8", [make_leaf("a", "common")])])
    return PXDocument(certain_prob(PXElement("r", children=[node])))


class TestSampling:
    def test_deterministic_under_seed(self):
        doc = skewed_doc()
        first = [canonical_key(w.document.root) for w in sample_worlds(doc, 50, seed=3)]
        second = [canonical_key(w.document.root) for w in sample_worlds(doc, 50, seed=3)]
        assert first == second

    def test_sample_probability_is_world_probability(self):
        doc = skewed_doc()
        world = sample_world(doc, __import__("random").Random(1))
        assert world.probability in (Fraction(1, 8), Fraction(7, 8))

    def test_empirical_frequencies_approximate(self):
        doc = skewed_doc()
        counts = Counter(
            canonical_key(w.document.root) for w in sample_worlds(doc, 4000, seed=11)
        )
        truth = {canonical_key(d.root): p for d, p in distinct_worlds(doc)}
        for key, prob in truth.items():
            frequency = counts[key] / 4000
            assert abs(frequency - float(prob)) < 0.05

    def test_samples_are_valid_worlds(self):
        doc = skewed_doc()
        valid = {canonical_key(d.root) for d, _ in distinct_worlds(doc)}
        for world in sample_worlds(doc, 100, seed=5):
            assert canonical_key(world.document.root) in valid
