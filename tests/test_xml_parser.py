"""Tests for the hand-written XML parser."""

import pytest
from hypothesis import given

from repro.errors import XMLParseError
from repro.xmlkit.nodes import XText, deep_equal
from repro.xmlkit.parser import parse_document, parse_element
from repro.xmlkit.serializer import serialize
from .conftest import xml_documents


class TestBasicParsing:
    def test_single_element(self):
        assert parse_element("<a/>").tag == "a"

    def test_nested_elements(self):
        root = parse_element("<a><b><c/></b></a>")
        assert root.find("b").find("c").tag == "c"

    def test_text_content(self):
        assert parse_element("<a>hello</a>").text() == "hello"

    def test_mixed_content_order(self):
        root = parse_element("<a>x<b/>y</a>")
        kinds = [type(child).__name__ for child in root.children]
        assert kinds == ["XText", "XElement", "XText"]

    def test_attributes_double_quoted(self):
        assert parse_element('<a k="v"/>').attributes == {"k": "v"}

    def test_attributes_single_quoted(self):
        assert parse_element("<a k='v'/>").attributes == {"k": "v"}

    def test_multiple_attributes(self):
        root = parse_element('<a x="1" y="2"/>')
        assert root.attributes == {"x": "1", "y": "2"}

    def test_whitespace_in_tags_tolerated(self):
        assert parse_element('<a  k="v"  ></a>').attributes == {"k": "v"}


class TestEntities:
    def test_predefined_entities(self):
        assert parse_element("<a>&lt;&gt;&amp;&quot;&apos;</a>").text() == "<>&\"'"

    def test_decimal_charref(self):
        assert parse_element("<a>&#65;</a>").text() == "A"

    def test_hex_charref(self):
        assert parse_element("<a>&#x41;</a>").text() == "A"

    def test_entities_in_attributes(self):
        assert parse_element('<a k="&amp;"/>').attributes["k"] == "&"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_element("<a>&nope;</a>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_element("<a>&amp</a>")


class TestStructuralFeatures:
    def test_comments_skipped(self):
        assert parse_element("<a><!-- hi --><b/></a>").find("b") is not None

    def test_cdata_literal(self):
        assert parse_element("<a><![CDATA[<not-a-tag>]]></a>").text() == "<not-a-tag>"

    def test_processing_instruction_skipped(self):
        assert parse_element("<a><?pi data?><b/></a>").find("b") is not None

    def test_xml_declaration(self):
        doc = parse_document('<?xml version="1.0"?><a/>')
        assert doc.root.tag == "a"

    def test_doctype_skipped(self):
        doc = parse_document('<!DOCTYPE a [<!ELEMENT a (b)>]><a><b/></a>')
        assert doc.root.tag == "a"

    def test_trailing_comment_allowed(self):
        assert parse_document("<a/><!-- done -->").root.tag == "a"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x=1/>",
            '<a x="1" x="2"/>',
            "<a/><b/>",
            "text only",
            "<a><!-- unterminated </a>",
            "<1tag/>",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(XMLParseError):
            parse_element(text)

    def test_error_carries_location(self):
        try:
            parse_element("<a>\n<b></c></a>")
        except XMLParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected XMLParseError")


class TestRoundTrip:
    def test_simple_roundtrip(self):
        text = '<movie year="1975"><title>Jaws &amp; co</title></movie>'
        doc = parse_document(text)
        assert serialize(doc) == text

    @given(xml_documents())
    def test_serialize_parse_identity(self, doc):
        reparsed = parse_document(serialize(doc))
        assert deep_equal(reparsed.root, doc.root, ignore_order=False) or deep_equal(
            reparsed.root, doc.root
        )

    @given(xml_documents())
    def test_double_serialize_stable(self, doc):
        once = serialize(doc)
        assert serialize(parse_document(once)) == once
