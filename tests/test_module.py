"""Tests for the ImpreciseModule façade (Figure 4 architecture)."""

from fractions import Fraction

import pytest

from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD
from repro.dbms.module import ImpreciseModule
from repro.errors import StoreError
from repro.xmlkit.serializer import serialize

GENERIC = [DeepEqualRule(), LeafValueRule()]

BOOK_A = "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>"
BOOK_B = "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>"


@pytest.fixture
def module():
    mod = ImpreciseModule()
    mod.load("a", BOOK_A)
    mod.load("b", BOOK_B)
    return mod


class TestWorkflow:
    def test_integrate_reports(self, module):
        report = module.integrate("a", "b", "ab", rules=GENERIC, dtd=ADDRESSBOOK_DTD)
        assert report.undecided_pairs == 1
        assert module.store.kind("ab") == "pxml"

    def test_query_ranked(self, module):
        module.integrate("a", "b", "ab", rules=GENERIC, dtd=ADDRESSBOOK_DTD)
        answer = module.query("ab", "//person/tel")
        assert answer.probability_of("1111") == Fraction(3, 4)

    def test_query_plain_document(self, module):
        answer = module.query("a", "//person/tel")
        assert answer.probability_of("1111") == 1

    def test_stats(self, module):
        module.integrate("a", "b", "ab", rules=GENERIC, dtd=ADDRESSBOOK_DTD)
        stats = module.stats("ab")
        assert stats.world_count == 3

    def test_worlds(self, module):
        module.integrate("a", "b", "ab", rules=GENERIC, dtd=ADDRESSBOOK_DTD)
        worlds = module.worlds("ab")
        assert len(worlds) == 3
        assert sum(w.probability for w in worlds) == 1

    def test_feedback_persists_posterior(self, module):
        module.integrate("a", "b", "ab", rules=GENERIC, dtd=ADDRESSBOOK_DTD)
        step = module.feedback("ab", "//person/tel", "1111", correct=True)
        assert step.worlds_after < step.worlds_before
        assert module.query("ab", "//person/tel").probability_of("1111") == 1

    def test_integrating_pxml_source_rejected(self, module):
        module.integrate("a", "b", "ab", rules=GENERIC, dtd=ADDRESSBOOK_DTD)
        with pytest.raises(StoreError):
            module.integrate("ab", "b", "bad", rules=GENERIC)

    def test_persistent_module(self, tmp_path):
        from repro.dbms.store import DocumentStore
        first = ImpreciseModule(DocumentStore(tmp_path))
        first.load("a", BOOK_A)
        first.load("b", BOOK_B)
        first.integrate("a", "b", "ab", rules=GENERIC, dtd=ADDRESSBOOK_DTD)
        second = ImpreciseModule(DocumentStore(tmp_path))
        assert second.stats("ab").world_count == 3
