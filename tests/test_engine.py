"""Tests for the integration engine (§III)."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.engine import (
    IntegrationConfig,
    Integrator,
    analyze_sequences,
    integrate,
)
from repro.core.oracle import ConstantPrior, Oracle
from repro.core.rules import (
    Decision,
    DeepEqualRule,
    LeafValueRule,
    MatchContext,
    PersonNameReconciler,
    PredicateRule,
)
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.errors import IntegrationConflict, IntegrationError
from repro.pxml.worlds import iter_worlds, world_count
from repro.pxml.model import validate_document
from repro.xmlkit.nodes import XDocument, canonical_key, element
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serializer import serialize
from .conftest import source_pairs

GENERIC = [DeepEqualRule(), LeafValueRule()]


def world_set(document):
    return {
        serialize(world.document): world.probability
        for world in iter_worlds(document, limit=None)
    }


class TestFigure2:
    """The paper's running example: exactly three possible worlds."""

    def test_three_worlds(self, address_books, address_dtd):
        result = integrate(*address_books, rules=GENERIC, dtd=address_dtd)
        worlds = world_set(result.document)
        assert len(worlds) == 3

    def test_world_contents(self, address_books, address_dtd):
        result = integrate(*address_books, rules=GENERIC, dtd=address_dtd)
        worlds = world_set(result.document)
        two_johns = (
            "<addressbook><person><nm>John</nm><tel>1111</tel></person>"
            "<person><nm>John</nm><tel>2222</tel></person></addressbook>"
        )
        assert worlds[two_johns] == Fraction(1, 2)
        assert (
            worlds["<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>"]
            == Fraction(1, 4)
        )

    def test_without_dtd_john_may_have_two_phones(self, address_books):
        result = integrate(*address_books, rules=GENERIC)
        worlds = world_set(result.document)
        merged = (
            "<addressbook><person><nm>John</nm><tel>1111</tel>"
            "<tel>2222</tel></person></addressbook>"
        )
        assert merged in worlds

    def test_result_is_valid_model(self, address_books, address_dtd):
        result = integrate(*address_books, rules=GENERIC, dtd=address_dtd)
        validate_document(result.document)

    def test_report_counts_the_undecided_pair(self, address_books, address_dtd):
        result = integrate(*address_books, rules=GENERIC, dtd=address_dtd)
        assert result.report.undecided_pairs == 1
        assert result.report.pairs_judged == 1


class TestBasicMerging:
    def test_identical_documents_stay_certain(self):
        doc = parse_document("<r><x>1</x><y>2</y></r>")
        result = integrate(doc, parse_document("<r><x>1</x><y>2</y></r>"), rules=GENERIC)
        assert result.document.is_certain()

    def test_root_tags_must_align(self):
        with pytest.raises(IntegrationError):
            integrate(parse_document("<a/>"), parse_document("<b/>"), rules=GENERIC)

    def test_disjoint_children_union(self):
        result = integrate(
            parse_document("<r><x>1</x></r>"),
            parse_document("<r><y>2</y></r>"),
            rules=GENERIC,
        )
        assert result.document.is_certain()
        worlds = world_set(result.document)
        assert "<r><x>1</x><y>2</y></r>" in worlds

    def test_leaf_conflict_becomes_choice(self):
        # Same single-valued leaf, different values.
        dtd_text = "<!ELEMENT r (v)><!ELEMENT v (#PCDATA)>"
        from repro.xmlkit.dtd import parse_dtd
        result = integrate(
            parse_document("<r><v>1</v></r>"),
            parse_document("<r><v>2</v></r>"),
            rules=GENERIC,
            dtd=parse_dtd(dtd_text),
        )
        worlds = world_set(result.document)
        assert worlds == {
            "<r><v>1</v></r>": Fraction(1, 2),
            "<r><v>2</v></r>": Fraction(1, 2),
        }

    def test_source_weights_bias_conflicts(self):
        from repro.xmlkit.dtd import parse_dtd
        config = IntegrationConfig(
            oracle=Oracle(GENERIC),
            dtd=parse_dtd("<!ELEMENT r (v)><!ELEMENT v (#PCDATA)>"),
            source_weights=("3/4", "1/4"),
        )
        result = Integrator(config).integrate(
            parse_document("<r><v>1</v></r>"), parse_document("<r><v>2</v></r>")
        )
        assert world_set(result.document)["<r><v>1</v></r>"] == Fraction(3, 4)

    def test_bad_source_weights_rejected(self):
        with pytest.raises(IntegrationError):
            IntegrationConfig(oracle=Oracle(GENERIC), source_weights=("1/2", "1/3"))

    def test_attribute_union_and_conflict_report(self):
        result = integrate(
            parse_document('<r a="1" c="x"/>'),
            parse_document('<r b="2" c="y"/>'),
            rules=GENERIC,
        )
        assert result.report.attribute_conflicts == 1
        root_elements = result.document.root.possibilities[0].children
        assert root_elements[0].attributes == {"a": "1", "b": "2", "c": "x"}

    def test_reconciler_prevents_choice(self):
        from repro.xmlkit.dtd import parse_dtd
        config = IntegrationConfig(
            oracle=Oracle(GENERIC),
            dtd=parse_dtd("<!ELEMENT r (d)><!ELEMENT d (#PCDATA)>"),
            reconcilers=(PersonNameReconciler(("d",)),),
        )
        result = Integrator(config).integrate(
            parse_document("<r><d>John Woo</d></r>"),
            parse_document("<r><d>Woo, John</d></r>"),
        )
        assert result.document.is_certain()
        assert result.report.value_conflicts == 0


class TestSequenceMerging:
    def test_certain_match_merges_once(self):
        result = integrate(
            parse_document("<r><g>Action</g></r>"),
            parse_document("<r><g>Action</g></r>"),
            rules=GENERIC,
        )
        assert world_set(result.document) == {"<r><g>Action</g></r>": Fraction(1)}

    def test_certain_non_match_keeps_both(self):
        result = integrate(
            parse_document("<r><g>Action</g></r>"),
            parse_document("<r><g>Horror</g></r>"),
            rules=GENERIC,
        )
        worlds = world_set(result.document)
        assert list(worlds.values()) == [Fraction(1)]
        assert "Action" in next(iter(worlds)) and "Horror" in next(iter(worlds))

    def test_uncertain_pair_two_worlds(self):
        # Non-leaf records with no deciding rule → prior ½.
        result = integrate(
            parse_document("<r><p><n>ann</n></p></r>"),
            parse_document("<r><p><n>ann</n><t>1</t></p></r>"),
            rules=[DeepEqualRule()],
        )
        assert world_count(result.document) == 2

    def test_ambiguous_certain_matches_demoted(self):
        # One element certainly matching two partners: the pairings become
        # an uncertain choice, never a double merge (sibling distinctness).
        match_all = PredicateRule("match-all", lambda a, b, ctx: Decision.MATCH, tags=("p",))
        result = integrate(
            parse_document("<r><p><n>a</n></p></r>"),
            parse_document("<r><p><n>a</n></p><p><n>b</n></p></r>"),
            rules=[match_all, LeafValueRule()],
        )
        # worlds: merge with first, merge with second, merge with neither.
        assert world_count(result.document) == 3

    def test_duplicate_siblings_stay_distinct(self):
        # Two identical persons in one source vs one in the other: the
        # duplicate siblings are distinct rwos; only one can merge.
        result = integrate(
            parse_document("<r><p><n>a</n></p><p><n>a</n></p></r>"),
            parse_document("<r><p><n>a</n></p></r>"),
            rules=[DeepEqualRule()],
        )
        for world in iter_worlds(result.document):
            persons = world.document.root.child_elements("p")
            assert len(persons) >= 2

    def test_factored_vs_joint_same_worlds(self):
        source_a = parse_document("<r><p><n>a</n></p><p><n>b</n></p></r>")
        source_b = parse_document("<r><p><n>a</n><t>1</t></p><p><n>c</n></p></r>")
        factored = integrate(source_a, source_b, rules=[DeepEqualRule()], factor_components=True)
        joint = integrate(source_a, source_b, rules=[DeepEqualRule()], factor_components=False)
        merged_f = {canonical_key(d.root): p for d, p in
                    __import__("repro.pxml.worlds", fromlist=["distinct_worlds"]).distinct_worlds(factored.document, limit=None)}
        merged_j = {canonical_key(d.root): p for d, p in
                    __import__("repro.pxml.worlds", fromlist=["distinct_worlds"]).distinct_worlds(joint.document, limit=None)}
        assert merged_f == merged_j

    def test_joint_representation_is_larger(self):
        source_a = parse_document("<r><p><n>a</n></p><p><n>b</n></p></r>")
        source_b = parse_document("<r><p><n>a</n><t>1</t></p><p><n>b</n><t>2</t></p></r>")
        factored = integrate(source_a, source_b, rules=[DeepEqualRule()], factor_components=True)
        joint = integrate(source_a, source_b, rules=[DeepEqualRule()], factor_components=False)
        assert joint.document.node_count() >= factored.document.node_count()

    def test_oracle_and_one_sided_groups(self):
        result = integrate(
            parse_document("<r><x>1</x><x>2</x></r>"),
            parse_document("<r/>"),
            rules=GENERIC,
        )
        assert result.document.is_certain()
        assert result.report.pairs_judged == 0


class TestAnalyzeSequences:
    def test_classification(self):
        oracle = Oracle(GENERIC)
        elements_a = [element("g", "x"), element("g", "y")]
        elements_b = [element("g", "x"), element("g", "z")]
        analysis = analyze_sequences("g", elements_a, elements_b, oracle,
                                     MatchContext(tag="g"))
        assert analysis.certain_pairs == [(0, 0)]
        assert analysis.problem.pairs == ()
        assert analysis.free_a == [1]
        assert analysis.free_b == [1]

    def test_certain_match_suppresses_other_pairs(self):
        # a0 certainly matches b0; an uncertain a0-b1 pair must vanish.
        def judge(a, b, ctx):
            if a.text() == b.text():
                return Decision.MATCH
            return None
        oracle = Oracle([PredicateRule("eq", judge)])
        elements_a = [element("p", "same")]
        elements_b = [element("p", "same"), element("p", "other")]
        analysis = analyze_sequences("p", elements_a, elements_b, oracle,
                                     MatchContext(tag="p"))
        assert analysis.certain_pairs == [(0, 0)]
        assert analysis.problem.pairs == ()
        assert analysis.free_b == [1]


class TestProbabilityMass:
    @given(source_pairs())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_integration_worlds_sum_to_one(self, pair):
        source_a, source_b = pair
        result = integrate(source_a, source_b, rules=[DeepEqualRule()],
                           max_possibilities=5000)
        if world_count(result.document) <= 2000:
            total = sum(w.probability for w in iter_worlds(result.document, limit=None))
            assert total == 1

    @given(source_pairs())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_result_is_always_valid(self, pair):
        source_a, source_b = pair
        result = integrate(source_a, source_b, rules=[DeepEqualRule()],
                           max_possibilities=5000)
        validate_document(result.document)
