"""Deterministic chaos tests: seeded faults, Fraction-identical answers.

The self-healing claims of the serving tier, made checkable.  Every
scenario drives real production failure paths through the seeded
:mod:`repro.testing.faults` harness — injected ``CacheBusyError`` from
the cache's own write funnel, genuine on-disk SQLite corruption,
killed worker processes, drained ``deadline_ms`` budgets — and then
asserts the one invariant the whole tier is built around: answers are
**Fraction-identical** to a fault-free serial replay, or absent with a
typed error; never approximate, never a raw ``sqlite3`` exception,
never a hang.

Scenario sizes are deliberately small (this file doubles as the CI
``chaos-smoke`` job); seeds are pinned so a failure replays exactly,
and ``CHAOS_SEED`` re-rolls every scenario at once.
"""

import json
import os
import subprocess
import sys
import time
from fractions import Fraction
from pathlib import Path

import pytest

from repro.dbms.service import DataspaceService
from repro.deadline import Deadline
from repro.errors import DeadlineExceededError
from repro.server.client import DataspaceClient, ServerError
from repro.server.multiproc import MultiProcServer
from repro.server.wire import encode_fused_answer
from repro.testing import (
    FaultPlan,
    corrupt_sqlite_file,
    delayed_method,
    failing_cache_writes,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "20260808"))

DOCS = {
    f"doc{i}": f"<r><x>{i}</x><x>{(i * 7) % 5}</x><y>{i % 3}</y></r>"
    for i in range(6)
}
QUERIES = ["//x", "//y", '//x[. = "3"]']


def snapshot(answer) -> list:
    """The full exact shape of a ranked answer — value, Fraction
    probability, and occurrence count — so equality means
    Fraction-identical, not merely same ordering."""
    return [
        (item.value, item.probability, item.occurrences) for item in answer
    ]


def build_service(tmp_path: Path, label: str, **kwargs) -> DataspaceService:
    service = DataspaceService(
        directory=tmp_path / f"{label}-store",
        cache_dir=tmp_path / f"{label}-cache",
        **kwargs,
    )
    for name, xml in DOCS.items():
        service.load(name, xml)
    return service


def serial_replay(tmp_path: Path) -> dict:
    """The fault-free oracle: a fresh cacheless service, queried
    serially — nothing shared with the chaotic run but the corpus."""
    service = DataspaceService(directory=tmp_path / "oracle-store")
    try:
        for name, xml in DOCS.items():
            service.load(name, xml)
        return {
            (name, query): snapshot(service.query(name, query))
            for name in DOCS
            for query in QUERIES
        }
    finally:
        service.close()


class TestCacheWriteFaults:
    def test_injected_busy_writes_cost_warmth_never_answers(self, tmp_path):
        """With the cache's write funnel raising CacheBusyError half the
        time, every answer is still served, Fraction-identical to the
        fault-free replay, and each absorbed write is counted."""
        expected = serial_replay(tmp_path)
        plan = FaultPlan(seed=CHAOS_SEED)
        service = build_service(tmp_path, "busy")
        try:
            with failing_cache_writes(service.cache, plan, probability=0.5):
                for (name, query), exact in expected.items():
                    assert snapshot(service.query(name, query)) == exact
            assert plan.count("cache-write-busy") > 0, plan.fired
            stats = service.cache_stats()
            assert stats["cache_write_failures"] == plan.count(
                "cache-write-busy"
            )
            # Post-fault runs heal: writes land again, answers unchanged.
            for (name, query), exact in expected.items():
                assert snapshot(service.query(name, query)) == exact
        finally:
            service.close()

    def test_total_write_outage_still_serves_every_answer(self, tmp_path):
        expected = serial_replay(tmp_path)
        plan = FaultPlan(seed=CHAOS_SEED + 1)
        service = build_service(tmp_path, "outage")
        try:
            with failing_cache_writes(service.cache, plan, probability=1.0):
                for (name, query), exact in expected.items():
                    assert snapshot(service.query(name, query)) == exact
            assert service.cache_stats()["cache_write_failures"] > 0
        finally:
            service.close()


class TestCacheCorruption:
    def test_live_service_quarantines_and_keeps_answering(self, tmp_path):
        """Corrupting the cache file under a live service costs warmth
        only: the next access quarantines, rebuilds, and re-serves
        Fraction-identical answers — no sqlite3 error ever escapes."""
        expected = serial_replay(tmp_path)
        service = build_service(tmp_path, "corrupt")
        try:
            for (name, query), exact in expected.items():
                assert snapshot(service.query(name, query)) == exact
            corrupt_sqlite_file(service.cache.path)
            for (name, query), exact in expected.items():
                assert snapshot(service.query(name, query)) == exact
            stats = service.cache_stats()
            assert stats["persistent_recoveries"] > 0
            quarantined = list(service.cache.path.parent.glob("*.corrupt-*"))
            assert quarantined, "corrupt file was not preserved for autopsy"
        finally:
            service.close()

    def test_two_process_fleet_follows_the_quarantine_swap(self, tmp_path):
        """Corruption with two live processes on one cache file: the
        process that trips it quarantines and rebuilds; the sibling
        holding a descriptor to the quarantined inode follows the swap.
        Both report ``persistent_recoveries > 0``; answers everywhere
        stay Fraction-identical to the clean replay."""
        expected = serial_replay(tmp_path)
        service = build_service(tmp_path, "fleet")
        cache_dir = tmp_path / "fleet-cache"
        store_dir = tmp_path / "fleet-store"
        try:
            for (name, query), exact in expected.items():
                assert snapshot(service.query(name, query)) == exact

            corrupt_sqlite_file(service.cache.path)

            # Process 2 (a genuinely fresh interpreter) opens the now-
            # corrupt file first: it quarantines and rebuilds.
            script = (
                "import json, sys\n"
                "from repro.dbms.service import DataspaceService\n"
                "store, cache = sys.argv[1], sys.argv[2]\n"
                "docs = json.loads(sys.argv[3])\n"
                "queries = json.loads(sys.argv[4])\n"
                "service = DataspaceService(directory=store, cache_dir=cache)\n"
                "try:\n"
                "    answers = {\n"
                "        f'{name}||{q}': [\n"
                "            [i.value, i.probability.numerator,\n"
                "             i.probability.denominator, i.occurrences]\n"
                "            for i in service.query(name, q)\n"
                "        ]\n"
                "        for name in docs for q in queries\n"
                "    }\n"
                "    stats = service.cache_stats()\n"
                "finally:\n"
                "    service.close()\n"
                "print(json.dumps({'answers': answers,\n"
                "                  'recoveries': stats['persistent_recoveries']}))\n"
            )
            result = subprocess.run(
                [sys.executable, "-c", script, str(store_dir),
                 str(cache_dir), json.dumps(sorted(DOCS)),
                 json.dumps(QUERIES)],
                capture_output=True, text=True, timeout=120,
                env={**os.environ, "PYTHONPATH": SRC},
            )
            assert result.returncode == 0, result.stderr
            sibling = json.loads(result.stdout)
            assert sibling["recoveries"] > 0
            for (name, query), exact in expected.items():
                got = [
                    (value, Fraction(numerator, denominator), occurrences)
                    for value, numerator, denominator, occurrences
                    in sibling["answers"][f"{name}||{query}"]
                ]
                assert got == exact

            # Process 1 still holds the *quarantined* inode: its next
            # operation follows the swap instead of quarantining the
            # healthy replacement, and keeps serving identically.
            for (name, query), exact in expected.items():
                assert snapshot(service.query(name, query)) == exact
            assert service.cache_stats()["persistent_recoveries"] > 0
        finally:
            service.close()


class TestDeadlineChaos:
    def test_generous_deadline_is_invisible(self, tmp_path):
        service = build_service(tmp_path, "generous")
        try:
            unbounded = service.query_all("//x")
            bounded = service.query_all(
                "//x", deadline=Deadline.from_ms(60_000)
            )
            assert encode_fused_answer(bounded) == encode_fused_answer(
                unbounded
            )
            assert not bounded.partial
        finally:
            service.close()

    def test_blown_budget_raises_typed_and_never_hangs(self, tmp_path):
        plan = FaultPlan(seed=CHAOS_SEED)
        service = build_service(tmp_path, "blown")
        try:
            with delayed_method(
                service, "query", plan, seconds=0.5, probability=1.0
            ):
                started = time.monotonic()
                with pytest.raises(DeadlineExceededError):
                    service.query_all("//x", deadline=Deadline.from_ms(50))
                elapsed = time.monotonic() - started
            assert elapsed < 10, f"deadline request hung for {elapsed:.1f}s"
            assert plan.count("delay:query") > 0
        finally:
            service.close()

    def test_allow_partial_returns_the_finished_subset(self, tmp_path):
        service = build_service(tmp_path, "partial")
        try:
            original = service.query

            def one_slow_document(name, plan, **kwargs):
                if name == "doc0":
                    time.sleep(1.0)
                return original(name, plan, **kwargs)

            service.query = one_slow_document
            try:
                fused = service.query_all(
                    "//x",
                    deadline=Deadline.from_ms(400),
                    allow_partial=True,
                )
            finally:
                service.query = original
            assert fused.partial
            assert "doc0" in fused.omitted
            finished = sorted(set(DOCS) - set(fused.omitted))
            assert finished, "partial answer finished nothing"
            clean = service.query_all("//x", names=finished)
            assert [
                (item.value, item.score) for item in fused.items
            ] == [(item.value, item.score) for item in clean.items]
        finally:
            service.close()

    def test_single_document_deadline_is_typed_at_the_engine(self, tmp_path):
        service = build_service(tmp_path, "single")
        try:
            budget = Deadline.from_ms(1)
            time.sleep(0.01)  # drain it before the call
            with pytest.raises(DeadlineExceededError):
                service.query("doc0", "//x", deadline=budget)
        finally:
            service.close()


class TestWorkerKillChaos:
    def test_seeded_kill_round_keeps_answers_identical(self, tmp_path):
        """A plan-chosen worker dies mid-serving; the supervisor respawns
        and re-admits it, and every post-recovery answer is
        Fraction-identical to its pre-kill twin."""
        plan = FaultPlan(seed=CHAOS_SEED)
        store, cache = tmp_path / "store", tmp_path / "cache"
        store.mkdir()
        cache.mkdir()
        tier = MultiProcServer(
            store, workers=2, cache_dir=cache,
            probe_interval=0.1, backoff_initial=0.05,
        )
        host, port = tier.start()
        client = DataspaceClient(host, port, timeout=30)
        try:
            for name, xml in DOCS.items():
                client.load(name, xml)
            expected = {
                name: snapshot(client.query(name, "//x")) for name in DOCS
            }

            slot = plan.choice("kill-worker", list(range(len(tier.workers))))
            victim = tier.workers[slot]
            victim_pid = victim.proc.pid
            victim.proc.kill()
            victim.proc.wait(10)
            assert plan.fired == [("kill-worker", slot)]

            # Through the blip: tolerate only 502s, never wrong answers.
            deadline = time.time() + 60
            for name in DOCS:
                while True:
                    try:
                        assert (
                            snapshot(client.query(name, "//x"))
                            == expected[name]
                        )
                        break
                    except ServerError as error:
                        assert error.status == 502, error
                        assert time.time() < deadline, "never recovered"
                        time.sleep(0.05)

            while time.time() < deadline:
                stats = client.stats()
                if (
                    stats["supervisor"]["restarts"] >= 1
                    and len(stats["ring"]["available"]) == 2
                ):
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("no recovery before deadline")
            assert tier.workers[slot].proc.pid != victim_pid
            for name in DOCS:
                assert snapshot(client.query(name, "//x")) == expected[name]
        finally:
            client.close()
            tier.stop()
