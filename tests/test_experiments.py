"""Integration tests for the paper's experiment setups — the structural
claims of §V/§VI that the reproduction must hit exactly."""

import pytest

from repro.core.estimate import estimate_integration
from repro.experiments import (
    FIGURE5_SERIES,
    QUERY_HORROR,
    QUERY_JOHN,
    TABLE1_PAPER_NODES_X1000,
    TABLE1_ROWS,
    figure5_sources,
    movie_config,
    run_table1_row,
    run_typical,
    section6_document,
    table1_config,
    table1_sources,
)
from repro.pxml.stats import tree_stats
from repro.query.engine import ProbQueryEngine, query_enumeration


@pytest.fixture(scope="module")
def table1_estimates():
    source_a, source_b = table1_sources()
    return [
        estimate_integration(source_a, source_b, table1_config(names))
        for _, names in TABLE1_ROWS
    ]


class TestTableOne:
    def test_no_rules_matches_k66_matchings(self, table1_estimates):
        # 6 vs 6 all-uncertain: Σ C(6,k)² k! = 13 327 joint matchings.
        assert table1_estimates[0].possibility_count == 13327

    def test_rule_sets_monotonically_shrink(self, table1_estimates):
        nodes = [estimate.total_nodes for estimate in table1_estimates]
        assert nodes == sorted(nodes, reverse=True)
        assert all(nodes[i] > nodes[i + 1] for i in range(len(nodes) - 1))

    def test_reduction_spans_orders_of_magnitude(self, table1_estimates):
        first, last = table1_estimates[0], table1_estimates[-1]
        assert first.total_nodes / last.total_nodes > 100

    def test_full_rules_leave_three_undecided_franchise_pairs(self):
        result = run_table1_row(("genre", "title", "year"))
        assert result.report.undecided_pairs >= 3
        movie_groups = [g for g in
                        estimate_integration(*table1_sources(),
                                             table1_config(("genre", "title", "year"))).groups
                        if g.tag == "movie"]
        assert movie_groups[0].joint_matchings == 8  # 2^3: one pair per franchise

    def test_smallest_rows_materialize_to_estimated_size(self):
        source_a, source_b = table1_sources()
        for _, names in TABLE1_ROWS[2:]:
            config = table1_config(names)
            estimate = estimate_integration(source_a, source_b, config)
            from repro.core.engine import Integrator
            result = Integrator(config).integrate(source_a, source_b)
            assert tree_stats(result.document).total == estimate.total_nodes


class TestFigureFive:
    def test_growth_is_monotone(self):
        for label, names in FIGURE5_SERIES:
            previous = 0
            for count in (0, 12, 24, 36):
                source_a, source_b = figure5_sources(count)
                config = movie_config(*names, factor_components=False)
                estimate = estimate_integration(source_a, source_b, config)
                assert estimate.total_nodes > previous, (label, count)
                previous = estimate.total_nodes

    def test_year_rule_separates_series(self):
        source_a, source_b = figure5_sources(36)
        title_only = estimate_integration(
            source_a, source_b, movie_config("title", factor_components=False)
        )
        with_year = estimate_integration(
            source_a, source_b, movie_config("title", "year", factor_components=False)
        )
        assert title_only.total_nodes > 10 * with_year.total_nodes

    def test_confusing_conditions_explode(self):
        source_a, source_b = figure5_sources(60)
        config = movie_config("title", factor_components=False)
        estimate = estimate_integration(source_a, source_b, config)
        assert estimate.total_nodes > 10**8  # the paper's 10⁸–10⁹ regime


class TestTypicalConditions:
    """§V: 'only on two occasions The Oracle could not make an absolute
    decision. The integrated document of about 3500 nodes compactly stores
    the resulting 4 possible worlds.'"""

    @pytest.fixture(scope="class")
    def result(self):
        return run_typical()

    def test_exactly_two_undecided(self, result):
        assert result.report.undecided_pairs == 2

    def test_exactly_four_worlds(self, result):
        assert result.report.world_count == 4

    def test_about_3500_nodes(self, result):
        assert 2500 <= result.report.total_nodes <= 4500

    def test_two_binary_choice_points(self, result):
        assert result.report.choice_points == 2
        assert result.report.largest_choice == 2


class TestSectionSixQueries:
    @pytest.fixture(scope="class")
    def document(self):
        return section6_document().document

    def test_horror_query_answers(self, document):
        """Paper: 'the ranked answer contains only two movies: Jaws and
        Jaws 2 with an equal rank of 97%.'"""
        answer = ProbQueryEngine(document).query(QUERY_HORROR)
        assert answer.values() == ["Jaws", "Jaws 2"] or answer.values() == ["Jaws 2", "Jaws"]
        for item in answer:
            assert 0.90 <= float(item.probability) < 1.0

    def test_horror_ranks_equal(self, document):
        answer = ProbQueryEngine(document).query(QUERY_HORROR)
        assert answer.probability_of("Jaws") == answer.probability_of("Jaws 2")

    def test_john_query_ordering(self, document):
        """Paper: 100% Die Hard: With a Vengeance, 96% Mission: Impossible
        II, 21% Mission: Impossible — same ordering, WaV certain, the bare
        title a low-probability incorrect answer."""
        answer = ProbQueryEngine(document).query(QUERY_JOHN)
        assert answer.values()[0] == "Die Hard: With a Vengeance"
        assert answer.probability_of("Die Hard: With a Vengeance") == 1
        assert answer.values()[1] == "Mission: Impossible II"
        low = answer.probability_of("Mission: Impossible")
        assert 0 < float(low) <= 0.35

    def test_queries_agree_with_enumeration(self, document):
        for query in (QUERY_HORROR, QUERY_JOHN):
            event_based = {
                item.value: item.probability
                for item in ProbQueryEngine(document).query(query)
            }
            enumerated = {
                item.value: item.probability
                for item in query_enumeration(document, query)
            }
            assert event_based == enumerated
