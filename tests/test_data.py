"""Tests for the synthetic data sources."""

import pytest

from repro.core.similarity import title_similarity
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.data.imdb import MOVIE_DTD, family_first, imdb_document
from repro.data.movies import (
    confusing_imdb_records,
    confusing_mpeg7_six,
    sequels_six_imdb,
    typical_imdb_records,
    typical_mpeg7_six,
)
from repro.data.mpeg7 import mpeg7_document
from repro.data.perturb import drop_field_marker, typo


class TestCatalog:
    def test_confusing_six_composition(self):
        records = confusing_mpeg7_six()
        assert len(records) == 6
        franchises = [record.title.split()[0] for record in records]
        assert franchises.count("Jaws") == 2

    def test_sequels_six_shares_one_rwo_per_franchise(self):
        mpeg7 = {record.rwo for record in confusing_mpeg7_six()}
        imdb = {record.rwo for record in sequels_six_imdb()}
        shared = mpeg7 & imdb
        assert shared == {"jaws-1975", "die-hard-1988", "mi-1996"}

    def test_confusing_imdb_deterministic(self):
        assert confusing_imdb_records(30) == confusing_imdb_records(30)

    def test_confusing_imdb_prefix_stable(self):
        # Growing the selection only appends (Figure 5's x-axis semantics).
        assert confusing_imdb_records(60)[:20] == confusing_imdb_records(20)

    def test_confusing_titles_extend_franchise_tokens(self):
        for record in confusing_imdb_records(60):
            franchise = next(
                name for name in ("Jaws", "Die Hard", "Mission: Impossible")
                if name.split()[0].rstrip(":").lower() in record.title.lower()
            )
            assert title_similarity(franchise, record.title) >= 0.65

    def test_confusing_rejects_negative(self):
        with pytest.raises(ValueError):
            confusing_imdb_records(-1)

    def test_typical_records_distinct_titles(self):
        records = typical_imdb_records(60)
        titles = [record.title for record in records]
        assert len(titles) == len(set(titles)) == 60

    def test_typical_records_all_1995(self):
        assert all(record.year == 1995 for record in typical_imdb_records(60))

    def test_typical_mpeg7_shares_exactly_two_rwos(self):
        imdb = {record.rwo for record in typical_imdb_records(60)}
        mpeg7 = [record.rwo for record in typical_mpeg7_six()]
        assert len(mpeg7) == 6
        assert sum(1 for rwo in mpeg7 if rwo in imdb) == 2

    def test_typical_no_accidental_title_confusion(self):
        """Only the two shared movies should be title-confusable — the
        §V 'typical conditions' premise."""
        imdb = typical_imdb_records(60)
        shared = {record.rwo for record in imdb}
        confusable = 0
        for mpeg7_record in typical_mpeg7_six():
            for imdb_record in imdb:
                if title_similarity(mpeg7_record.title, imdb_record.title) >= 0.65:
                    confusable += 1
        assert confusable == 2


class TestRenderers:
    def test_family_first(self):
        assert family_first("John McTiernan") == "McTiernan, John"
        assert family_first("Cher") == "Cher"

    def test_imdb_conventions(self):
        doc = imdb_document(sequels_six_imdb())
        directors = [d.text() for d in doc.root.iter_elements("director")]
        assert "Spielberg, Steven" in directors

    def test_mpeg7_conventions(self):
        doc = mpeg7_document(confusing_mpeg7_six())
        directors = [d.text() for d in doc.root.iter_elements("director")]
        assert "Steven Spielberg" in directors

    def test_sources_never_deep_equal(self):
        from repro.xmlkit.nodes import deep_equal
        imdb = imdb_document(sequels_six_imdb()).root.child_elements("movie")
        mpeg7 = mpeg7_document(confusing_mpeg7_six()).root.child_elements("movie")
        assert not any(deep_equal(a, b) for a in mpeg7 for b in imdb)

    def test_imdb_valid_against_dtd(self):
        doc = imdb_document(confusing_imdb_records(30))
        assert MOVIE_DTD.validate(doc) == []

    def test_mpeg7_valid_against_dtd(self):
        doc = mpeg7_document(typical_mpeg7_six())
        assert MOVIE_DTD.validate(doc) == []

    def test_typo_injection(self):
        doc = imdb_document(sequels_six_imdb(), typo_titles=["Jaws"])
        titles = [t.text() for t in doc.root.iter_elements("title")]
        assert "Jaws" not in titles

    def test_deterministic_rendering(self):
        from repro.xmlkit.serializer import serialize
        first = serialize(imdb_document(confusing_imdb_records(20)))
        second = serialize(imdb_document(confusing_imdb_records(20)))
        assert first == second


class TestAddressbook:
    def test_default_books(self):
        book_a, book_b = addressbook_documents()
        assert book_a.root.child_elements("person")[0].find("tel").text() == "1111"

    def test_custom_entries(self):
        book_a, _ = addressbook_documents(entries_a=[("Ann", "3"), ("Bo", "4")])
        assert len(book_a.root.child_elements("person")) == 2

    def test_dtd_declares_single_tel(self):
        assert ADDRESSBOOK_DTD.is_single("person", "tel")


class TestPerturb:
    def test_typo_deterministic(self):
        assert typo("Mission", seed=5) == typo("Mission", seed=5)

    def test_typo_changes_text(self):
        assert typo("Mission", seed=5) != "Mission"

    def test_typo_short_strings(self):
        assert typo("a") == "a"
        assert len(typo("ab", seed=1)) == 1

    def test_typo_no_letters(self):
        assert typo("1234", seed=1) == "1234"

    def test_drop_field_marker(self):
        assert drop_field_marker("Mission: Impossible") == "Mission Impossible"
