"""Tests for the PR-4 probability kernel: hash-consing, independence
decomposition, the worklist evaluator, and the bounded memo.

Three layers of assurance:

* **identity** — structurally equal events are the same object, with
  digest / variables / occurrence counts cached at construction;
* **differential** — a seeded property sweep over random small documents
  asserts the kernel is Fraction-identical both to brute-force world
  enumeration (:mod:`repro.pxml.worlds`) and to the preserved PR-3
  expansion kernel (:mod:`repro.pxml.events_reference`);
* **scale** — events of ≥ 5,000 literals and chains nested past the old
  recursion limit price exactly, without ``RecursionError``.
"""

import gc
import random
import sys
import weakref
from fractions import Fraction
from itertools import product

import pytest

from repro.errors import QueryError
from repro.probability import ONE, ZERO
from repro.pxml.build import choice_prob
from repro.pxml.events import (
    FALSE_EVENT,
    TRUE_EVENT,
    all_of,
    any_of,
    event_probability,
    lit,
    negate,
    pivot_variable,
)
from repro.pxml.events_cache import EventProbabilityCache
from repro.pxml.events_reference import expansion_probability
from repro.pxml.model import (
    PXDocument,
    PXElement,
    PXText,
    Possibility,
    ProbNode,
)
from repro.pxml.worlds import world_count
from repro.query.engine import ProbQueryEngine, query_enumeration


def binary(p="1/2"):
    q = 1 - Fraction(p)
    return choice_prob([(Fraction(p), [PXText("a")]), (q, [PXText("b")])])


def brute_force(event, nodes):
    """P(event) by summing over every complete assignment."""
    total = ZERO
    indices = [range(len(node.possibilities)) for node in nodes]
    for assignment in product(*indices):
        mapping = {node.uid: choice for node, choice in zip(nodes, assignment)}
        weight = ONE
        for node, choice in zip(nodes, assignment):
            weight *= node.possibilities[choice].prob
        if event.evaluate(mapping):
            total += weight
    return total


class TestInterning:
    def test_literals_intern(self):
        node = binary()
        assert lit(node, 0) is lit(node, 0)
        assert lit(node, 0) is not lit(node, 1)

    def test_conjunction_interns_regardless_of_order(self):
        a, b, c = binary(), binary(), binary()
        left = all_of([lit(a, 0), lit(b, 0), lit(c, 1)])
        right = all_of([lit(c, 1), lit(a, 0), lit(b, 0)])
        assert left is right

    def test_disjunction_interns_regardless_of_order(self):
        a, b = binary(), binary()
        assert any_of([lit(a, 0), lit(b, 1)]) is any_of([lit(b, 1), lit(a, 0)])

    def test_negation_interns_and_cancels(self):
        node = binary()
        event = all_of([lit(node, 0), lit(binary(), 0)])
        assert negate(event) is negate(event)
        assert negate(negate(event)) is event

    def test_equal_structure_equal_digest(self):
        a, b = binary(), binary()
        left = any_of([all_of([lit(a, 0), lit(b, 0)]), lit(a, 1)])
        right = any_of([lit(a, 1), all_of([lit(b, 0), lit(a, 0)])])
        assert left is right
        assert left.digest == right.digest

    def test_metadata_cached_at_construction(self):
        a, b = binary(), binary()
        event = any_of([all_of([lit(a, 0), lit(b, 0)]), lit(a, 1)])
        assert event.vars == frozenset((a.uid, b.uid))
        assert event.variables() == {a.uid, b.uid}
        assert event.counts == {a.uid: 2, b.uid: 1}

    def test_pivot_prefers_most_mentioned(self):
        a, b = binary(), binary()
        event = any_of([all_of([lit(a, 0), lit(b, 0)]), lit(a, 1)])
        uid, node = pivot_variable(event)
        assert uid == a.uid and node is a

    def test_intern_table_is_weak(self):
        node = binary()
        event = all_of([lit(node, 0), lit(binary(), 1)])
        ref = weakref.ref(event)
        del event
        gc.collect()
        assert ref() is None

    def test_legacy_key_still_canonical(self):
        a, b = binary(), binary()
        left = all_of([lit(a, 0), lit(b, 0)])
        right = all_of([lit(b, 0), lit(a, 0)])
        assert left.key() == right.key() == (
            "A", ("L", a.uid, 0), ("L", b.uid, 0)
        )


# -- seeded random documents -----------------------------------------------------

TAGS = ("a", "b", "x", "item", "rec")
WORDS = ("alpha", "beta", "42", "x1")
QUERY = "//a | //b | //x | //item | //rec"


def _random_distribution(rng, count):
    weights = [rng.randint(1, 5) for _ in range(count)]
    total = sum(weights)
    return [Fraction(w, total) for w in weights]


def _random_prob_node(rng, depth):
    node = ProbNode()
    for prob in _random_distribution(rng, rng.randint(1, 3)):
        children = []
        for _ in range(rng.randint(0, 2)):
            if depth > 0 and rng.random() < 0.5:
                children.append(_random_element(rng, depth - 1))
            else:
                children.append(PXText(rng.choice(WORDS)))
        node.append(Possibility(prob, children))
    return node


def _random_element(rng, depth):
    children = [_random_prob_node(rng, depth) for _ in range(rng.randint(0, 2))]
    return PXElement(rng.choice(TAGS), None, children)


def random_document(seed):
    rng = random.Random(seed)
    root = ProbNode()
    for prob in _random_distribution(rng, rng.randint(1, 3)):
        root.append(Possibility(prob, [_random_element(rng, 2)]))
    return PXDocument(root)


class TestPropertySweep:
    @pytest.mark.parametrize("seed", range(40))
    def test_kernel_matches_world_enumeration_and_reference(self, seed):
        """On random small documents: ranked answers equal per-world
        evaluation, and every answer event prices identically under the
        PR-4 kernel, the PR-3 expansion kernel, and brute force."""
        document = random_document(seed)
        if world_count(document) > 3000:
            pytest.skip("world space too large for the enumeration oracle")
        engine = ProbQueryEngine(document, use_cache=False)
        try:
            answer = engine.query(QUERY)
        except QueryError:
            # The generator occasionally exceeds the engine's per-node
            # value-realisation cap; that guard has its own tests.
            pytest.skip("document exceeds the value-realisation cap")
        enumerated = query_enumeration(document, QUERY, limit=None)
        assert {i.value: i.probability for i in answer} == {
            i.value: i.probability for i in enumerated
        }
        for value, (event, _) in engine.answer_events(QUERY).items():
            assert event_probability(event) == expansion_probability(event), value

    @pytest.mark.parametrize("seed", range(25))
    def test_kernel_matches_brute_force_on_random_events(self, seed):
        """Random CNF/DNF-ish combinations over up to 6 small variables:
        the kernel must equal assignment enumeration exactly."""
        rng = random.Random(1000 + seed)
        nodes = [
            binary(rng.choice(("1/4", "1/2", "2/3", "1/5")))
            for _ in range(rng.randint(2, 6))
        ]
        terms = []
        for _ in range(rng.randint(1, 4)):
            literals = [
                lit(node, rng.randint(0, 1))
                for node in rng.sample(nodes, rng.randint(1, len(nodes)))
            ]
            if rng.random() < 0.4:
                literals[0] = negate(literals[0])
            term = all_of(literals)
            if rng.random() < 0.3:
                term = negate(term)
            terms.append(term)
        event = any_of(terms) if rng.random() < 0.7 else all_of(terms)
        if event is TRUE_EVENT or event is FALSE_EVENT:
            return
        expected = brute_force(event, nodes)
        assert event_probability(event) == expected
        assert expansion_probability(event) == expected


# -- scale: deep and wide events -------------------------------------------------

class TestScale:
    def test_wide_or_of_5000_literals(self):
        """≥ 5,000 literals in one event price exactly (and linearly —
        the components are independent)."""
        nodes = [binary() for _ in range(5000)]
        event = any_of(
            [
                all_of([lit(nodes[i], 0), lit(nodes[i + 1], 0)])
                for i in range(0, 5000, 2)
            ]
        )
        assert event_probability(event) == 1 - Fraction(3, 4) ** 2500

    def test_deep_independent_chain_past_recursion_limit(self):
        """An alternating ∧/∨ chain nested far past Python's recursion
        limit builds and prices without RecursionError."""
        depth = 1500
        assert depth > sys.getrecursionlimit()
        event = lit(binary(), 0)
        expected = Fraction(1, 2)
        half = Fraction(1, 2)
        for _ in range(depth):
            event = any_of([all_of([event, lit(binary(), 0)]), lit(binary(), 1)])
            expected = 1 - (1 - expected * half) * (1 - half)
        assert event_probability(event) == expected

    def test_deep_shared_variable_chain_needs_shannon(self):
        """A deep chain over a small shared variable pool cannot decompose
        — it exercises the worklist Shannon expansion and the iterative
        conditioning rewrite on deep events."""
        depth = 1200
        assert depth > sys.getrecursionlimit()
        pool = [binary() for _ in range(6)]
        event = lit(pool[0], 0)
        for i in range(depth):
            event = any_of(
                [
                    all_of([event, lit(pool[(i + 1) % 6], 0)]),
                    lit(pool[(i + 2) % 6], 1),
                ]
            )
        assert event_probability(event) == brute_force(event, pool)

    def test_deep_chain_assign_and_evaluate_are_iterative(self):
        depth = 1500
        pool = [binary() for _ in range(4)]
        event = lit(pool[0], 0)
        for i in range(depth):
            event = any_of(
                [
                    all_of([event, lit(pool[(i + 1) % 4], 0)]),
                    lit(pool[(i + 2) % 4], 1),
                ]
            )
        conditioned = event.assign(pool[0].uid, 1)
        assert conditioned is not event
        assert event.evaluate({node.uid: 1 for node in pool}) in (True, False)


# -- bounded memo ---------------------------------------------------------------

class TestBoundedMemo:
    def _events(self, count):
        nodes = [binary() for _ in range(count + 1)]
        return [
            any_of([all_of([lit(nodes[i], 0), lit(nodes[i + 1], 0)]),
                    lit(nodes[i], 1)])
            for i in range(count)
        ]

    def test_memo_respects_entry_cap(self):
        cache = EventProbabilityCache(max_entries=4)
        for event in self._events(12):
            cache.probability(event)
        assert len(cache) <= 4
        assert cache.evictions > 0
        assert cache.stats()["evictions"] == cache.evictions

    def test_evicted_entries_recompute_identically(self):
        events = self._events(10)
        bounded = EventProbabilityCache(max_entries=2)
        unbounded = EventProbabilityCache(max_entries=None)
        first = [bounded.probability(event) for event in events]
        again = [bounded.probability(event) for event in events]
        reference = [unbounded.probability(event) for event in events]
        assert first == again == reference
        assert len(unbounded) > 2  # the bound was actually exercised
        assert bounded.evictions > 0

    def test_unbounded_when_none(self):
        cache = EventProbabilityCache(max_entries=None)
        for event in self._events(20):
            cache.probability(event)
        assert cache.evictions == 0
        assert len(cache) > 20

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            EventProbabilityCache(max_entries=0)

    def test_default_is_bounded(self):
        from repro.pxml.events_cache import DEFAULT_MAX_ENTRIES
        assert EventProbabilityCache().max_entries == DEFAULT_MAX_ENTRIES


# -- stats surface ---------------------------------------------------------------

class TestStatsSurface:
    def test_service_surfaces_memory_evictions(self):
        from repro.dbms.service import DataspaceService, format_cache_stats

        service = DataspaceService()
        service.load("d", "<r><x>1</x></r>")
        service.query("d", "//x")
        stats = service.cache_stats()
        assert "memory_evictions" in stats
        assert stats["memory_evictions"] == 0
        rendered = format_cache_stats(stats)
        assert "memory_evictions: 0" in rendered

    def test_engine_cache_stats_include_evictions(self):
        from repro.pxml.build import certain_document
        from repro.query.engine import QueryEngine
        from repro.xmlkit.parser import parse_document

        document = certain_document(parse_document("<r><x>1</x></r>"))
        engine = QueryEngine(document)
        engine.run("//x")
        assert "evictions" in engine.cache_stats()
