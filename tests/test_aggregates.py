"""Tests for exact aggregate distributions (counts and the wider
count/sum/min/max/exists family)."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import QueryError
from repro.pxml.build import certain_document, certain_prob, choice_prob
from repro.pxml.events_cache import cache_for
from repro.pxml.model import PXDocument, PXElement
from repro.pxml.worlds import world_count
from repro.query.aggregates import (
    aggregate_distribution,
    compile_aggregate,
    count_distribution,
    count_distribution_enumerated,
    count_quantile,
    exists_probability,
    expected_count,
    expected_value,
    format_distribution,
    max_distribution,
    min_distribution,
    sum_distribution,
)
from repro.xmlkit.parser import parse_document
from .conftest import make_leaf, pxml_documents


def uncertain_doc():
    """<r> with one certain <m> and one 1/3-chance <m>."""
    maybe = choice_prob([("1/3", [make_leaf("m", "x")]), ("2/3", [])])
    return PXDocument(certain_prob(PXElement("r", children=[
        certain_prob(make_leaf("m", "y")), maybe,
    ])))


class TestCountDistribution:
    def test_certain_document(self):
        doc = certain_document(parse_document("<r><m/><m/><other/></r>"))
        assert count_distribution(doc, "m") == {2: Fraction(1)}

    def test_uncertain_counts(self):
        assert count_distribution(uncertain_doc(), "m") == {
            1: Fraction(2, 3),
            2: Fraction(1, 3),
        }

    def test_wildcard_counts_all_elements(self):
        doc = certain_document(parse_document("<r><m/><n/></r>"))
        assert count_distribution(doc, "*") == {3: Fraction(1)}

    def test_text_filtered_counts(self):
        doc = uncertain_doc()
        assert count_distribution(doc, "m", text="x") == {
            0: Fraction(2, 3),
            1: Fraction(1, 3),
        }

    def test_text_filter_with_value_choice(self):
        title = PXElement("t", children=[
            choice_prob([("1/4", ["Jaws"]), ("3/4", ["Heat"])])
        ])
        doc = PXDocument(certain_prob(PXElement("r", children=[certain_prob(title)])))
        assert count_distribution(doc, "t", text="Jaws") == {
            0: Fraction(3, 4),
            1: Fraction(1, 4),
        }

    def test_text_filter_rejects_non_leaf(self):
        doc = certain_document(parse_document("<r><m><sub/></m></r>"))
        with pytest.raises(QueryError):
            count_distribution(doc, "m", text="x")

    def test_matches_enumeration_on_figure2(self):
        from repro.core.engine import integrate
        from repro.core.rules import DeepEqualRule, LeafValueRule
        from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
        book_a, book_b = addressbook_documents()
        doc = integrate(book_a, book_b,
                        rules=[DeepEqualRule(), LeafValueRule()],
                        dtd=ADDRESSBOOK_DTD).document
        assert count_distribution(doc, "person") == {
            1: Fraction(1, 2),
            2: Fraction(1, 2),
        }
        assert count_distribution(doc, "person") == count_distribution_enumerated(
            doc, "//person"
        )

    @given(pxml_documents())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_property_agreement_with_enumeration(self, doc):
        if world_count(doc) > 300:
            return
        for tag in ("a", "b", "x"):
            assert count_distribution(doc, tag) == count_distribution_enumerated(
                doc, f"//{tag}"
            )

    @given(pxml_documents())
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_distribution_mass_is_one(self, doc):
        distribution = count_distribution(doc, "a")
        assert sum(distribution.values()) == 1


def numeric_doc():
    """<r> with <p>=3|5 (even odds), certain <p>=4, and a 1/3-chance <q>=2.5."""
    p1 = PXElement("p", children=[choice_prob([("1/2", ["3"]), ("1/2", ["5"])])])
    p2 = make_leaf("p", "4")
    maybe_q = choice_prob([("1/3", [make_leaf("q", "2.5")]), ("2/3", [])])
    return PXDocument(certain_prob(PXElement("r", children=[
        certain_prob(p1), certain_prob(p2), maybe_q,
    ])))


class TestAggregateFamily:
    def test_sum_distribution(self):
        assert sum_distribution(numeric_doc(), "p") == {
            7: Fraction(1, 2),
            9: Fraction(1, 2),
        }

    def test_min_max_distributions(self):
        doc = numeric_doc()
        assert min_distribution(doc, "p") == {
            3: Fraction(1, 2),
            4: Fraction(1, 2),
        }
        assert max_distribution(doc, "q") == {
            None: Fraction(2, 3),
            Fraction(5, 2): Fraction(1, 3),
        }

    def test_exists(self):
        doc = numeric_doc()
        assert exists_probability(doc, "p") == Fraction(1)
        assert exists_probability(doc, "q") == Fraction(1, 3)
        assert exists_probability(doc, "zz") == Fraction(0)
        assert aggregate_distribution(doc, "exists", "q") == {
            0: Fraction(2, 3),
            1: Fraction(1, 3),
        }

    def test_filtered_variants(self):
        doc = numeric_doc()
        assert aggregate_distribution(doc, "count", "p", text="3") == {
            0: Fraction(1, 2),
            1: Fraction(1, 2),
        }
        assert aggregate_distribution(doc, "sum", "p", text="3") == {
            0: Fraction(1, 2),
            3: Fraction(1, 2),
        }
        assert aggregate_distribution(doc, "min", "p", text="3") == {
            None: Fraction(1, 2),
            3: Fraction(1, 2),
        }

    def test_non_numeric_value_rejected(self):
        doc = certain_document(parse_document("<r><p>abc</p></r>"))
        with pytest.raises(QueryError):
            sum_distribution(doc, "p")
        # count never reads values: fine on the same document.
        assert count_distribution(doc, "p") == {1: Fraction(1)}

    def test_non_leaf_value_rejected(self):
        doc = certain_document(parse_document("<r><p><sub>1</sub></p></r>"))
        with pytest.raises(QueryError):
            min_distribution(doc, "p")

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError):
            compile_aggregate("median", "p")

    def test_xpath_target_restrictions(self):
        for bad in ("//a/b", "//a[b=1]", "/a", "//a[1]"):
            with pytest.raises(QueryError):
                compile_aggregate("count", bad)

    def test_bare_targets_validated_like_xpath(self):
        """Regression: a bare target must not bypass the structural
        validation — 'm/x' must raise, never silently match nothing."""
        for bad in ("m/x", "m[b=1]", "m[1]"):
            with pytest.raises(QueryError):
                compile_aggregate("count", bad)
        # A bare spelling with an embedded text predicate destructures
        # exactly like its // spelling.
        assert compile_aggregate("count", 'm[. = "3"]').digest == \
            compile_aggregate("count", "m", text="3").digest

    def test_agreeing_and_conflicting_text_filters(self):
        # An agreeing text= restates the embedded predicate: accepted.
        assert compile_aggregate("count", '//m[. = "2"]', text="2").digest \
            == compile_aggregate("count", "m", text="2").digest
        # A conflicting one is a contradiction: rejected.
        with pytest.raises(QueryError):
            compile_aggregate("count", '//m[. = "2"]', text="3")

    def test_expected_value(self):
        assert expected_value(sum_distribution(numeric_doc(), "p")) == Fraction(8)
        with pytest.raises(QueryError):
            expected_value({None: Fraction(1, 3), 2: Fraction(2, 3)})

    def test_format_distribution_renders_no_match(self):
        rendered = format_distribution({None: Fraction(1, 3), 2: Fraction(2, 3)})
        assert "(no match)" in rendered
        assert "(1/3)" in rendered and "(2/3)" in rendered


class TestCacheDiscipline:
    def test_cached_and_uncached_equal_but_not_aliased(self):
        """Regression (ISSUE 5): the cached path must return a copy of
        the stored mapping — exactly one copy — never the stored mapping
        itself."""
        doc = uncertain_doc()
        first = count_distribution(doc, "m")
        second = count_distribution(doc, "m")  # served from the memo
        assert first == second
        assert first is not second
        # Mutating a returned mapping must not corrupt the cache …
        first[99] = Fraction(1)
        assert 99 not in count_distribution(doc, "m")
        # … and the stored entry itself is not what either call returned.
        stored = cache_for(doc).aggregate(
            doc, compile_aggregate("count", "m").fingerprint
        )
        assert stored is not None and stored is not second

    def test_uncached_mode_recomputes(self):
        doc = uncertain_doc()
        cached = count_distribution(doc, "m")
        uncached = count_distribution(doc, "m", use_cache=False)
        assert cached == uncached
        assert cached is not uncached

    def test_memo_shared_across_kinds(self):
        """exists derives from count through the same memo: computing
        exists seeds the count entry."""
        doc = numeric_doc()
        cache = cache_for(doc)
        aggregate_distribution(doc, "exists", "q")
        count_key = compile_aggregate("count", "q").fingerprint
        assert cache.aggregate(doc, count_key) is not None


class TestMoments:
    def test_expected_count(self):
        assert expected_count({1: Fraction(2, 3), 2: Fraction(1, 3)}) == Fraction(4, 3)

    def test_quantiles(self):
        distribution = {0: Fraction(1, 4), 1: Fraction(1, 4), 5: Fraction(1, 2)}
        assert count_quantile(distribution, Fraction(1, 4)) == 0
        assert count_quantile(distribution, Fraction(1, 2)) == 1
        assert count_quantile(distribution, Fraction(1)) == 5

    def test_quantile_bounds_checked(self):
        with pytest.raises(QueryError):
            count_quantile({0: Fraction(1)}, Fraction(3, 2))
