"""Tests for exact count distributions."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import QueryError
from repro.pxml.build import certain_document, certain_prob, choice_prob
from repro.pxml.model import PXDocument, PXElement
from repro.pxml.worlds import world_count
from repro.query.aggregates import (
    count_distribution,
    count_distribution_enumerated,
    count_quantile,
    expected_count,
)
from repro.xmlkit.parser import parse_document
from .conftest import make_leaf, pxml_documents


def uncertain_doc():
    """<r> with one certain <m> and one 1/3-chance <m>."""
    maybe = choice_prob([("1/3", [make_leaf("m", "x")]), ("2/3", [])])
    return PXDocument(certain_prob(PXElement("r", children=[
        certain_prob(make_leaf("m", "y")), maybe,
    ])))


class TestCountDistribution:
    def test_certain_document(self):
        doc = certain_document(parse_document("<r><m/><m/><other/></r>"))
        assert count_distribution(doc, "m") == {2: Fraction(1)}

    def test_uncertain_counts(self):
        assert count_distribution(uncertain_doc(), "m") == {
            1: Fraction(2, 3),
            2: Fraction(1, 3),
        }

    def test_wildcard_counts_all_elements(self):
        doc = certain_document(parse_document("<r><m/><n/></r>"))
        assert count_distribution(doc, "*") == {3: Fraction(1)}

    def test_text_filtered_counts(self):
        doc = uncertain_doc()
        assert count_distribution(doc, "m", text="x") == {
            0: Fraction(2, 3),
            1: Fraction(1, 3),
        }

    def test_text_filter_with_value_choice(self):
        title = PXElement("t", children=[
            choice_prob([("1/4", ["Jaws"]), ("3/4", ["Heat"])])
        ])
        doc = PXDocument(certain_prob(PXElement("r", children=[certain_prob(title)])))
        assert count_distribution(doc, "t", text="Jaws") == {
            0: Fraction(3, 4),
            1: Fraction(1, 4),
        }

    def test_text_filter_rejects_non_leaf(self):
        doc = certain_document(parse_document("<r><m><sub/></m></r>"))
        with pytest.raises(QueryError):
            count_distribution(doc, "m", text="x")

    def test_matches_enumeration_on_figure2(self):
        from repro.core.engine import integrate
        from repro.core.rules import DeepEqualRule, LeafValueRule
        from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
        book_a, book_b = addressbook_documents()
        doc = integrate(book_a, book_b,
                        rules=[DeepEqualRule(), LeafValueRule()],
                        dtd=ADDRESSBOOK_DTD).document
        assert count_distribution(doc, "person") == {
            1: Fraction(1, 2),
            2: Fraction(1, 2),
        }
        assert count_distribution(doc, "person") == count_distribution_enumerated(
            doc, "//person"
        )

    @given(pxml_documents())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_property_agreement_with_enumeration(self, doc):
        if world_count(doc) > 300:
            return
        for tag in ("a", "b", "x"):
            assert count_distribution(doc, tag) == count_distribution_enumerated(
                doc, f"//{tag}"
            )

    @given(pxml_documents())
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_distribution_mass_is_one(self, doc):
        distribution = count_distribution(doc, "a")
        assert sum(distribution.values()) == 1


class TestMoments:
    def test_expected_count(self):
        assert expected_count({1: Fraction(2, 3), 2: Fraction(1, 3)}) == Fraction(4, 3)

    def test_quantiles(self):
        distribution = {0: Fraction(1, 4), 1: Fraction(1, 4), 5: Fraction(1, 2)}
        assert count_quantile(distribution, Fraction(1, 4)) == 0
        assert count_quantile(distribution, Fraction(1, 2)) == 1
        assert count_quantile(distribution, Fraction(1)) == 5

    def test_quantile_bounds_checked(self):
        with pytest.raises(QueryError):
            count_quantile({0: Fraction(1)}, Fraction(3, 2))
