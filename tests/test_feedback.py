"""Tests for feedback conditioning (exact Bayes on documents)."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.engine import integrate
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.errors import FeedbackError
from repro.feedback.conditioning import (
    FeedbackSession,
    condition_on_assignment,
    condition_on_event,
)
from repro.pxml.events import event_probability
from repro.pxml.worlds import distinct_worlds, world_count
from repro.query.engine import ProbQueryEngine
from repro.xmlkit.nodes import canonical_key
from .conftest import pxml_documents

GENERIC = [DeepEqualRule(), LeafValueRule()]


@pytest.fixture
def figure2():
    book_a, book_b = addressbook_documents()
    return integrate(book_a, book_b, rules=GENERIC, dtd=ADDRESSBOOK_DTD).document


def distribution(document):
    return {
        canonical_key(doc.root): prob
        for doc, prob in distinct_worlds(document, limit=None)
    }


def bayes_reference(document, expression, value, observed):
    """Posterior over worlds via explicit filtering (the definition)."""
    from repro.xmlkit.xpath import XPath
    xpath = XPath(expression)
    posterior = {}
    total = Fraction(0)
    for doc, prob in distinct_worlds(document, limit=None):
        values = {
            node.text() if hasattr(node, "text") else node.value
            for node in xpath.select(doc)
        }
        holds = value in values
        if holds is observed:
            posterior[canonical_key(doc.root)] = prob
            total += prob
    return {key: prob / total for key, prob in posterior.items()}


class TestConditionOnEvent:
    def test_confirm_matches_bayes(self, figure2):
        engine = ProbQueryEngine(figure2)
        event, _ = engine.answer_events("//person/tel")["1111"]
        conditioned = condition_on_event(figure2, event, observed=True)
        assert distribution(conditioned) == bayes_reference(
            figure2, "//person/tel", "1111", True
        )

    def test_reject_matches_bayes(self, figure2):
        engine = ProbQueryEngine(figure2)
        event, _ = engine.answer_events("//person/tel")["1111"]
        conditioned = condition_on_event(figure2, event, observed=False)
        assert distribution(conditioned) == bayes_reference(
            figure2, "//person/tel", "1111", False
        )

    def test_posterior_sums_to_one(self, figure2):
        engine = ProbQueryEngine(figure2)
        event, _ = engine.answer_events("//person/tel")["2222"]
        conditioned = condition_on_event(figure2, event)
        assert sum(distribution(conditioned).values()) == 1

    def test_impossible_observation_rejected(self, figure2):
        from repro.pxml.events import FALSE_EVENT
        with pytest.raises(FeedbackError):
            condition_on_event(figure2, FALSE_EVENT, observed=True)

    def test_certain_observation_is_noop(self, figure2):
        from repro.pxml.events import TRUE_EVENT
        conditioned = condition_on_event(figure2, TRUE_EVENT, observed=True)
        assert distribution(conditioned) == distribution(figure2)

    def test_event_probability_is_preserved_inside(self, figure2):
        # P(E) computed via events equals the world mass that survives.
        engine = ProbQueryEngine(figure2)
        event, _ = engine.answer_events("//person/tel")["1111"]
        prior = event_probability(event)
        reference = bayes_reference(figure2, "//person/tel", "1111", True)
        assert prior == Fraction(3, 4)
        assert len(reference) == 2


class TestConditionOnAssignment:
    def test_forces_choice(self, figure2):
        node = next(
            n for n in figure2.iter_prob_nodes() if len(n.possibilities) > 1
        )
        conditioned = condition_on_assignment(figure2, {node.uid: 0})
        assert world_count(conditioned) < world_count(figure2)


class TestFeedbackSession:
    def test_confirm_updates_ranking(self, figure2):
        session = FeedbackSession(figure2)
        before = session.ranked("//person/tel").probability_of("1111")
        step = session.confirm("//person/tel", "1111")
        after = session.ranked("//person/tel").probability_of("1111")
        assert before == Fraction(3, 4)
        assert step.prior == Fraction(3, 4)
        assert after == 1

    def test_reject_removes_value(self, figure2):
        session = FeedbackSession(figure2)
        session.reject("//person/tel", "1111")
        assert session.ranked("//person/tel").probability_of("1111") == 0

    def test_worlds_shrink(self, figure2):
        session = FeedbackSession(figure2)
        step = session.confirm("//person/tel", "1111")
        assert step.worlds_after < step.worlds_before

    def test_confirm_impossible_value_rejected(self, figure2):
        session = FeedbackSession(figure2)
        with pytest.raises(FeedbackError):
            session.confirm("//person/tel", "9999")

    def test_reject_impossible_value_is_noop(self, figure2):
        session = FeedbackSession(figure2)
        step = session.reject("//person/tel", "9999")
        assert step.worlds_before == step.worlds_after

    def test_history_recorded(self, figure2):
        session = FeedbackSession(figure2)
        session.confirm("//person/tel", "1111")
        session.reject("//person/tel", "2222")
        assert [step.kind for step in session.history] == ["confirm", "reject"]

    def test_sequential_feedback_converges(self, figure2):
        # Confirm both numbers: only the two-Johns world survives.
        session = FeedbackSession(figure2)
        session.confirm("//person/tel", "1111")
        session.confirm("//person/tel", "2222")
        worlds = distinct_worlds(session.document)
        assert len(worlds) == 1
        assert worlds[0][1] == 1

    def test_contradictory_feedback_rejected(self, figure2):
        session = FeedbackSession(figure2)
        session.confirm("//person/tel", "1111")
        with pytest.raises(FeedbackError):
            session.reject("//person/tel", "1111")


class TestPropertyBayes:
    QUERY = "//a | //b | //x | //item | //rec"

    @given(pxml_documents())
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_conditioning_equals_world_filtering(self, document):
        if world_count(document) > 200:
            return
        engine = ProbQueryEngine(document)
        events = engine.answer_events(self.QUERY)
        if not events:
            return
        value, (event, _) = sorted(events.items())[0]
        prior = event_probability(event)
        if prior == 0 or prior == 1:
            return
        conditioned = condition_on_event(document, event, observed=True)
        assert distribution(conditioned) == bayes_reference(
            document, self.QUERY, value, True
        )
