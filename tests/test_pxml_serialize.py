"""Tests for the probabilistic XML wire format."""

import pytest
from hypothesis import given

from repro.errors import ModelError
from repro.pxml.build import certain_document
from repro.pxml.model import px_deep_equal
from repro.pxml.serialize import parse_pxml, pxml_to_text, pxml_to_xml, xml_to_pxml
from repro.xmlkit.nodes import XDocument, element
from repro.xmlkit.parser import parse_document
from .conftest import pxml_documents


class TestEncoding:
    def test_certain_doc_encoding_shape(self):
        doc = certain_document(XDocument(element("a", "x")))
        text = pxml_to_text(doc)
        assert text.startswith("<p:prob><p:poss")
        assert 'prob="1"' in text

    def test_probabilities_as_fractions(self):
        text = pxml_to_text(parse_pxml(
            '<p:prob><p:poss prob="1/3"><a/></p:poss>'
            '<p:poss prob="2/3"><b/></p:poss></p:prob>'
        ))
        assert 'prob="1/3"' in text and 'prob="2/3"' in text

    def test_pretty_parses_back(self):
        doc = certain_document(XDocument(element("a", element("b", "x"))))
        pretty = pxml_to_text(doc, pretty=True)
        assert px_deep_equal(parse_pxml(pretty).root, doc.root)


class TestDecoding:
    def test_missing_prob_attr_rejected(self):
        with pytest.raises(ModelError):
            parse_pxml("<p:prob><p:poss><a/></p:poss></p:prob>")

    def test_wrong_root_rejected(self):
        with pytest.raises(ModelError):
            parse_pxml("<movies/>")

    def test_stray_child_of_prob_rejected(self):
        with pytest.raises(ModelError):
            parse_pxml("<p:prob><a/></p:prob>")

    def test_misplaced_poss_rejected(self):
        with pytest.raises(ModelError):
            parse_pxml(
                '<p:prob><p:poss prob="1"><p:poss prob="1"/></p:poss></p:prob>'
            )

    def test_bare_text_under_element_rejected(self):
        with pytest.raises(ModelError):
            parse_pxml('<p:prob><p:poss prob="1"><a>text</a></p:poss></p:prob>')

    def test_text_inside_poss_accepted(self):
        doc = parse_pxml('<p:prob><p:poss prob="1"><a><p:prob>'
                         '<p:poss prob="1">hello</p:poss></p:prob></a></p:poss></p:prob>')
        assert doc.is_certain()


class TestRoundTrip:
    @given(pxml_documents())
    def test_text_roundtrip(self, doc):
        assert px_deep_equal(parse_pxml(pxml_to_text(doc)).root, doc.root)

    @given(pxml_documents())
    def test_xml_object_roundtrip(self, doc):
        encoded = pxml_to_xml(doc)
        assert px_deep_equal(xml_to_pxml(encoded), doc.root)
