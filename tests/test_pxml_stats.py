"""Tests for uncertainty/size metrics."""

from fractions import Fraction

from hypothesis import given

from repro.pxml.build import certain_document, certain_prob, choice_prob
from repro.pxml.model import PXDocument, PXElement, PXText
from repro.pxml.stats import expected_world_size, node_count, tree_stats
from repro.pxml.worlds import iter_worlds, world_count
from repro.xmlkit.nodes import XDocument, element
from .conftest import make_leaf, pxml_documents


class TestTreeStats:
    def test_certain_document_census(self):
        doc = certain_document(XDocument(element("a", element("b", "x"))))
        stats = tree_stats(doc)
        # prob/poss pairs: root, b, text → 3 each; elements a,b; text x.
        assert stats.probability_nodes == 3
        assert stats.possibility_nodes == 3
        assert stats.element_nodes == 2
        assert stats.text_nodes == 1
        assert stats.total == 9
        assert stats.choice_points == 0
        assert stats.world_count == 1

    def test_choice_points_and_branching(self):
        node = choice_prob([("1/3", []), ("1/3", []), ("1/3", [])])
        doc = PXDocument(certain_prob(PXElement("r", children=[node])))
        stats = tree_stats(doc)
        assert stats.choice_points == 1
        assert stats.max_branching == 3

    def test_total_matches_node_count(self):
        doc = certain_document(XDocument(element("a", element("b", "x"))))
        assert tree_stats(doc).total == node_count(doc)

    @given(pxml_documents())
    def test_census_adds_up(self, doc):
        stats = tree_stats(doc)
        assert stats.total == node_count(doc)
        assert stats.world_count == world_count(doc)

    def test_summary_mentions_worlds(self):
        doc = certain_document(XDocument(element("a")))
        assert "worlds" in tree_stats(doc).summary()


class TestExpectedWorldSize:
    def test_certain_size_is_plain_size(self):
        plain = XDocument(element("a", element("b", "x"), element("c")))
        doc = certain_document(plain)
        assert expected_world_size(doc) == plain.node_count()

    def test_expectation_weights_alternatives(self):
        # <r> plus either a leaf (3 plain nodes... a + text = 2) or nothing.
        node = choice_prob([("1/2", [make_leaf("a", "x")]), ("1/2", [])])
        doc = PXDocument(certain_prob(PXElement("r", children=[node])))
        # world sizes: r+a+text = 3 w.p. 1/2 ; r alone = 1 w.p. 1/2.
        assert expected_world_size(doc) == 2

    @given(pxml_documents())
    def test_matches_enumeration(self, doc):
        if world_count(doc) <= 200:
            expected = sum(
                world.probability * world.document.node_count()
                for world in iter_worlds(doc, limit=None)
            )
            assert expected_world_size(doc) == expected
