"""Tests for the generic rule framework and reconcilers."""

import pytest

from repro.core.rules import (
    CaseInsensitiveReconciler,
    Decision,
    DeepEqualRule,
    KeyFieldRule,
    LeafValueRule,
    MatchContext,
    PersonNameReconciler,
    PersonNameRule,
    PredicateRule,
)
from repro.xmlkit.nodes import element

CTX = MatchContext(parent_tag="movies", tag="movie")


def movie(title, year="1975"):
    return element("movie", element("title", title), element("year", year))


class TestDeepEqualRule:
    def test_matches_identical(self):
        rule = DeepEqualRule()
        assert rule.judge(movie("Jaws"), movie("Jaws"), CTX) is Decision.MATCH

    def test_matches_reordered(self):
        a = element("m", element("x", "1"), element("y", "2"))
        b = element("m", element("y", "2"), element("x", "1"))
        assert DeepEqualRule().judge(a, b, CTX) is Decision.MATCH

    def test_abstains_on_difference(self):
        assert DeepEqualRule().judge(movie("Jaws"), movie("Jaws 2"), CTX) is None


class TestLeafValueRule:
    def test_equal_leaves_match(self):
        rule = LeafValueRule()
        assert rule.judge(element("genre", "Action"), element("genre", "Action"), CTX) is Decision.MATCH

    def test_different_leaves_no_match(self):
        rule = LeafValueRule()
        assert rule.judge(element("genre", "Action"), element("genre", "Horror"), CTX) is Decision.NO_MATCH

    def test_whitespace_stripped(self):
        rule = LeafValueRule()
        assert rule.judge(element("g", " x "), element("g", "x"), CTX) is Decision.MATCH

    def test_abstains_on_non_leaf(self):
        assert LeafValueRule().judge(movie("Jaws"), movie("Jaws"), CTX) is None


class TestKeyFieldRule:
    def test_equal_keys_match(self):
        rule = KeyFieldRule("movie", "title")
        assert rule.judge(movie("Jaws"), movie("Jaws", "1980"), CTX) is Decision.MATCH

    def test_different_keys_no_match(self):
        rule = KeyFieldRule("movie", "title")
        assert rule.judge(movie("Jaws"), movie("Heat"), CTX) is Decision.NO_MATCH

    def test_missing_key_abstains(self):
        rule = KeyFieldRule("movie", "title")
        assert rule.judge(element("movie"), movie("Jaws"), CTX) is None

    def test_applies_only_to_declared_tag(self):
        rule = KeyFieldRule("movie", "title")
        assert rule.relevant("movie")
        assert not rule.relevant("person")


class TestPersonNameRule:
    def test_convention_equivalent_names_match(self):
        rule = PersonNameRule(("director",))
        a = element("director", "John McTiernan")
        b = element("director", "McTiernan, John")
        assert rule.judge(a, b, CTX) is Decision.MATCH

    def test_different_names_no_match(self):
        rule = PersonNameRule(("director",))
        a = element("director", "John Woo")
        b = element("director", "Brian De Palma")
        assert rule.judge(a, b, CTX) is Decision.NO_MATCH

    def test_near_miss_abstains(self):
        rule = PersonNameRule(("director",), uncertain_above=0.9)
        a = element("director", "John McTiernan")
        b = element("director", "John McTiernen")  # possible typo
        assert rule.judge(a, b, CTX) is None

    def test_scoped_to_tags(self):
        rule = PersonNameRule(("director",))
        assert rule.relevant("director")
        assert not rule.relevant("title")


class TestPredicateRule:
    def test_wraps_callable(self):
        rule = PredicateRule(
            "always-match", lambda a, b, ctx: Decision.MATCH, tags=("x",)
        )
        assert rule.judge(element("x"), element("x"), CTX) is Decision.MATCH
        assert rule.relevant("x") and not rule.relevant("y")


class TestReconcilers:
    def test_person_name_reconciles_conventions(self):
        reconciler = PersonNameReconciler(("director",))
        assert reconciler.reconcile("director", "John Woo", "Woo, John") == "John Woo"

    def test_person_name_keeps_genuine_conflicts(self):
        reconciler = PersonNameReconciler(("director",))
        assert reconciler.reconcile("director", "John Woo", "Ang Lee") is None

    def test_case_insensitive(self):
        reconciler = CaseInsensitiveReconciler()
        assert reconciler.reconcile("genre", "Action", "ACTION") == "Action"
        assert reconciler.reconcile("genre", "Action", "Horror") is None

    def test_scoping(self):
        reconciler = PersonNameReconciler(("director",))
        assert reconciler.relevant("director")
        assert not reconciler.relevant("title")
