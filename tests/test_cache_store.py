"""Tests for the persistent answer/plan cache store."""

from fractions import Fraction

import pytest

from repro.dbms.cache_store import (
    AnswerCacheStore,
    SCHEMA_VERSION,
    document_digest,
)
from repro.errors import StoreError
from repro.pxml.build import certain_document
from repro.pxml.serialize import parse_pxml, pxml_to_text
from repro.query.plan import compile_plan
from repro.query.ranking import RankedAnswer, RankedItem
from repro.xmlkit.parser import parse_document


@pytest.fixture
def cache(tmp_path):
    return AnswerCacheStore(tmp_path / "cache")


def answer(*items):
    return RankedAnswer([RankedItem(v, p, n) for v, p, n in items])


PLAN = "a" * 64
DOC = "b" * 64


class TestRoundTrip:
    def test_exact_fractions(self, cache):
        stored = answer(
            ("x", Fraction(1, 3), 2),
            ("y", Fraction(10**30 + 1, 10**30 + 3), 1),
            ("z", Fraction(1), 1),
        )
        cache.put("doc", DOC, PLAN, stored)
        loaded = cache.get("doc", DOC, PLAN)
        assert [(i.value, i.probability, i.occurrences) for i in loaded] == [
            (i.value, i.probability, i.occurrences) for i in stored
        ]
        assert all(isinstance(i.probability, Fraction) for i in loaded)

    def test_unicode_values(self, cache):
        stored = answer(("Zemřel ★ 彼", Fraction(2, 7), 3))
        cache.put("doc", DOC, PLAN, stored)
        assert cache.get("doc", DOC, PLAN).values() == ["Zemřel ★ 彼"]

    def test_empty_answer(self, cache):
        cache.put("doc", DOC, PLAN, RankedAnswer([]))
        loaded = cache.get("doc", DOC, PLAN)
        assert loaded is not None and len(loaded) == 0

    def test_miss_returns_none(self, cache):
        assert cache.get("doc", DOC, PLAN) is None
        assert cache.misses == 1

    def test_key_is_content_and_plan(self, cache):
        cache.put("doc", DOC, PLAN, answer(("x", Fraction(1, 2), 1)))
        assert cache.get("doc", "c" * 64, PLAN) is None  # other content
        assert cache.get("doc", DOC, "d" * 64) is None  # other plan
        assert cache.get("other", DOC, PLAN) is None  # other name

    def test_survives_reopen(self, cache, tmp_path):
        cache.put("doc", DOC, PLAN, answer(("x", Fraction(1, 3), 1)))
        cache.close()
        reopened = AnswerCacheStore(tmp_path / "cache")
        loaded = reopened.get("doc", DOC, PLAN)
        assert loaded.probability_of("x") == Fraction(1, 3)
        assert reopened.hits == 1


class TestPlanMemo:
    def test_remember_and_lookup(self, cache):
        digest = compile_plan("//a/b").fingerprint_digest
        assert cache.plan_digest("//a/b") is None
        cache.remember_plan("//a/b", digest)
        assert cache.plan_digest("//a/b") == digest

    def test_put_with_expression_also_remembers(self, cache):
        cache.put("doc", DOC, PLAN, answer(), expression="//x")
        assert cache.plan_digest("//x") == PLAN


class TestInvalidation:
    def test_invalidate_drops_rows_and_bumps_version(self, cache):
        cache.put("doc", DOC, PLAN, answer(("x", Fraction(1, 2), 1)))
        assert cache.version("doc") == 0
        assert cache.invalidate_document("doc") == 1
        assert cache.version("doc") == 1
        assert cache.get("doc", DOC, PLAN) is None

    def test_invalidate_is_per_name(self, cache):
        cache.put("keep", DOC, PLAN, answer(("x", Fraction(1, 2), 1)))
        cache.put("drop", DOC, PLAN, answer(("y", Fraction(1, 2), 1)))
        cache.invalidate_document("drop")
        assert cache.get("keep", DOC, PLAN) is not None
        assert cache.get("drop", DOC, PLAN) is None

    def test_stale_version_row_is_ignored(self, cache):
        """A row written under an older version is never served, even if
        the DELETE racing with the writer lost (simulated by inserting
        out from under the version bump)."""
        cache.put("doc", DOC, PLAN, answer(("x", Fraction(1, 2), 1)))
        cache.invalidate_document("doc")
        # Re-insert the row with the pre-invalidation version directly.
        with cache._lock:
            cache._conn.execute(
                "INSERT OR REPLACE INTO answers VALUES (?, ?, ?, ?, ?, 0, 0)",
                ("doc", DOC, PLAN, None, '[["x", "1/2", 1]]'),
            )
            cache._conn.commit()
        assert cache.get("doc", DOC, PLAN) is None

    def test_put_with_observed_version_is_fenced(self, cache):
        """A writer that observed version N before evaluating, and whose
        put lands after an invalidation bumped to N+1, writes a row that
        get() refuses to serve — the cross-process resurrection fence."""
        observed = cache.version("doc")
        cache.invalidate_document("doc")  # races in between
        cache.put(
            "doc", DOC, PLAN, answer(("x", Fraction(1, 2), 1)), version=observed
        )
        assert cache.get("doc", DOC, PLAN) is None

    def test_clear(self, cache):
        cache.put("doc", DOC, PLAN, answer(("x", Fraction(1, 2), 1)), expression="//x")
        cache.clear()
        assert len(cache) == 0
        assert cache.plan_digest("//x") is None


class TestSchema:
    def test_schema_version_mismatch_recreates(self, tmp_path):
        first = AnswerCacheStore(tmp_path / "cache")
        first.put("doc", DOC, PLAN, answer(("x", Fraction(1, 2), 1)))
        with first._lock:
            first._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
            first._conn.commit()
        first.close()
        reopened = AnswerCacheStore(tmp_path / "cache")
        assert len(reopened) == 0  # dropped, not misread

    def test_accepts_explicit_sqlite_path(self, tmp_path):
        cache = AnswerCacheStore(tmp_path / "sub" / "my.sqlite")
        cache.put("doc", DOC, PLAN, answer())
        assert (tmp_path / "sub" / "my.sqlite").exists()

    def test_stats_shape(self, cache):
        cache.put("doc", DOC, PLAN, answer(), expression="//x")
        cache.get("doc", DOC, PLAN)
        cache.get("doc", DOC, "e" * 64)
        stats = cache.stats()
        assert stats["persistent_answers"] == 1
        assert stats["persistent_plans"] == 1
        assert stats["persistent_hits"] == 1
        assert stats["persistent_misses"] == 1
        assert stats["persistent_stored"] == 1


class TestDocumentDigest:
    def test_stable_for_equal_content(self):
        doc_a = parse_document("<r><x>1</x></r>")
        doc_b = parse_document("<r><x>1</x></r>")
        assert document_digest(doc_a) == document_digest(doc_b)

    def test_differs_for_different_content(self):
        assert document_digest(parse_document("<r><x>1</x></r>")) != (
            document_digest(parse_document("<r><x>2</x></r>"))
        )

    def test_kind_prefix_prevents_collisions(self):
        plain = parse_document("<r/>")
        prob = certain_document(plain)
        assert document_digest(plain) != document_digest(prob)

    def test_pxml_round_trip_preserves_digest(self):
        doc = certain_document(parse_document("<r><x>1</x></r>"))
        reloaded = parse_pxml(pxml_to_text(doc))
        assert document_digest(doc) == document_digest(reloaded)

    def test_rejects_non_documents(self):
        with pytest.raises(StoreError):
            document_digest("<r/>")


class TestRowEviction:
    """The ROADMAP follow-up: ``max_rows`` bounds the answer table, LRU
    by last hit, and eviction never costs correctness — an evicted
    answer is simply recomputed and re-stored on its next miss."""

    def put_n(self, cache, count, name="doc"):
        for index in range(count):
            cache.put(
                name, DOC, f"{index:064d}",
                answer((f"v{index}", Fraction(1, index + 2), 1)),
            )

    def test_bound_is_enforced(self, tmp_path):
        cache = AnswerCacheStore(tmp_path / "cache", max_rows=5)
        self.put_n(cache, 20)
        assert len(cache) == 5
        assert cache.evictions == 15
        assert cache.stats()["persistent_evictions"] == 15
        assert cache.max_rows == 5

    def test_unbounded_store_never_evicts(self, cache):
        self.put_n(cache, 20)
        assert len(cache) == 20
        assert cache.evictions == 0

    def test_eviction_is_lru_by_last_hit(self, tmp_path):
        cache = AnswerCacheStore(tmp_path / "cache", max_rows=3)
        self.put_n(cache, 3)
        # Re-hit row 0: it is now the most recently used.
        assert cache.get("doc", DOC, f"{0:064d}") is not None
        cache.put("doc", DOC, "f" * 64, answer(("new", Fraction(1, 2), 1)))
        # Row 1 (oldest last_hit) went; row 0 survived its re-hit.
        assert cache.get("doc", DOC, f"{0:064d}") is not None
        assert cache.get("doc", DOC, f"{1:064d}") is None
        assert cache.get("doc", DOC, "f" * 64) is not None

    def test_recency_stamps_persist_across_instances(self, tmp_path):
        """The LRU clock is file-global (MAX+1), so a fresh process
        continues the ordering instead of restarting it."""
        first = AnswerCacheStore(tmp_path / "cache", max_rows=3)
        self.put_n(first, 3)
        assert first.get("doc", DOC, f"{0:064d}") is not None
        first.close()
        second = AnswerCacheStore(tmp_path / "cache", max_rows=3)
        second.put("doc", DOC, "f" * 64, answer(("new", Fraction(1, 2), 1)))
        assert second.get("doc", DOC, f"{0:064d}") is not None  # survived
        assert second.get("doc", DOC, f"{1:064d}") is None      # evicted

    def test_rejects_nonpositive_bound(self, tmp_path):
        with pytest.raises(StoreError):
            AnswerCacheStore(tmp_path / "cache", max_rows=0)

    def test_evicted_answers_are_recomputed_correctly(self, tmp_path):
        """A service over a 2-row cache cycling through 4 queries keeps
        returning exact answers; evicted rows come back as misses that
        re-store, never as wrong or missing results."""
        from repro.dbms.service import DataspaceService

        workload = ["//person/nm", "//person/tel", "//person", "/addressbook"]
        with DataspaceService(
            directory=tmp_path / "store",
            cache_dir=tmp_path / "rowcache",
            cache_max_rows=2,
        ) as service:
            service.load(
                "ab",
                "<addressbook><person><nm>John</nm><tel>1111</tel></person>"
                "</addressbook>",
            )
            baseline = {
                query: [
                    (item.value, item.probability, item.occurrences)
                    for item in service.query("ab", query)
                ]
                for query in workload
            }
            for _ in range(3):  # keep cycling: every query evicts another
                for query in workload:
                    again = [
                        (item.value, item.probability, item.occurrences)
                        for item in service.query("ab", query)
                    ]
                    assert again == baseline[query]
            stats = service.cache_stats()
            assert stats["persistent_evictions"] > 0
            assert stats["persistent_answers"] <= 2
            # Eviction caused real re-stores beyond the first pricing.
            assert stats["persistent_stored"] > len(workload)

    def test_service_rejects_bound_without_cache_dir(self, tmp_path):
        from repro.dbms.service import DataspaceService

        with pytest.raises(StoreError):
            DataspaceService(directory=tmp_path / "store", cache_max_rows=10)

    def test_bounded_hits_do_not_write(self, tmp_path):
        """Recency on hits is buffered in memory (the hit path must stay
        free of UPDATE/commit); the buffer flushes on the next put."""
        cache = AnswerCacheStore(tmp_path / "cache", max_rows=3)
        self.put_n(cache, 2)
        assert cache.get("doc", DOC, f"{0:064d}") is not None
        assert len(cache._touches) == 1           # buffered, not written
        db_stamp = cache._conn.execute(
            "SELECT last_hit FROM answers WHERE plan_digest = ?",
            (f"{0:064d}",),
        ).fetchone()[0]
        assert db_stamp == 1                      # on-disk stamp untouched
        cache.put("doc", DOC, "f" * 64, answer(("new", Fraction(1, 2), 1)))
        assert cache._touches == {}               # flushed with the put
        db_stamp = cache._conn.execute(
            "SELECT last_hit FROM answers WHERE plan_digest = ?",
            (f"{0:064d}",),
        ).fetchone()[0]
        assert db_stamp > 2                       # recency persisted


AGG = "c" * 64


class TestAggregateRows:
    def distribution(self):
        return {
            None: Fraction(1, 6),
            -2: Fraction(1, 3),
            7: Fraction(1, 4),
            Fraction(5, 2): Fraction(1, 4),
        }

    def test_round_trip_exact(self, cache):
        cache.put_aggregate("doc", DOC, AGG, self.distribution(), spec="sum(//p)")
        loaded = cache.get_aggregate("doc", DOC, AGG)
        assert loaded == self.distribution()
        assert all(isinstance(p, Fraction) for p in loaded.values())
        assert cache.aggregate_hits == 1 and cache.aggregate_stored == 1

    def test_miss_counts(self, cache):
        assert cache.get_aggregate("doc", DOC, AGG) is None
        assert cache.aggregate_misses == 1
        assert cache.get_aggregate("doc", DOC, AGG, record=False) is None
        assert cache.aggregate_misses == 1  # double-checked probe not counted

    def test_survives_reopen(self, cache, tmp_path):
        cache.put_aggregate("doc", DOC, AGG, self.distribution())
        cache.close()
        fresh = AnswerCacheStore(tmp_path / "cache")
        assert fresh.get_aggregate("doc", DOC, AGG) == self.distribution()
        assert fresh.stats()["persistent_aggregates"] == 1
        fresh.close()

    def test_invalidation_drops_aggregate_rows(self, cache):
        cache.put_aggregate("doc", DOC, AGG, self.distribution())
        cache.put_aggregate("keep", DOC, AGG, self.distribution())
        cache.invalidate_document("doc")
        assert cache.get_aggregate("doc", DOC, AGG) is None
        assert cache.get_aggregate("keep", DOC, AGG) == self.distribution()

    def test_put_with_observed_version_is_fenced(self, cache):
        observed = cache.version("doc")
        cache.invalidate_document("doc")  # races in between
        cache.put_aggregate(
            "doc", DOC, AGG, self.distribution(), version=observed
        )
        assert cache.get_aggregate("doc", DOC, AGG) is None

    def test_distinct_digests_distinct_rows(self, cache):
        cache.put_aggregate("doc", DOC, AGG, {1: Fraction(1)})
        cache.put_aggregate("doc", DOC, "d" * 64, {2: Fraction(1)})
        assert cache.get_aggregate("doc", DOC, AGG) == {1: Fraction(1)}
        assert cache.get_aggregate("doc", DOC, "d" * 64) == {2: Fraction(1)}

    def test_clear_drops_aggregates(self, cache):
        cache.put_aggregate("doc", DOC, AGG, {1: Fraction(1)})
        cache.clear()
        assert cache.get_aggregate("doc", DOC, AGG, record=False) is None
        assert cache.stats()["persistent_aggregates"] == 0

    def test_stats_counters_present(self, cache):
        stats = cache.stats()
        for counter in (
            "persistent_aggregates",
            "persistent_aggregate_hits",
            "persistent_aggregate_misses",
            "persistent_aggregate_stored",
        ):
            assert counter in stats


class TestBusyHandling:
    """Multi-process write contention: typed errors, bounded retries
    (ISSUE 8 — two workers sharing one --cache-dir must never surface a
    raw `sqlite3.OperationalError: database is locked`)."""

    def test_rejects_bad_tuning(self, tmp_path):
        with pytest.raises(StoreError):
            AnswerCacheStore(tmp_path / "a", busy_timeout_ms=-1)
        with pytest.raises(StoreError):
            AnswerCacheStore(tmp_path / "b", write_retries=0)

    def test_busy_timeout_pragma_applied(self, tmp_path):
        store = AnswerCacheStore(tmp_path / "cache", busy_timeout_ms=123)
        row = store._conn.execute("PRAGMA busy_timeout").fetchone()
        assert row[0] == 123
        store.close()

    def test_held_write_lock_raises_typed_error(self, tmp_path):
        """A sibling holding the write lock past the whole retry budget
        surfaces CacheBusyError (a StoreError), never the raw sqlite3
        exception — and the blocked writer stays usable afterwards."""
        import sqlite3

        from repro.errors import CacheBusyError

        store = AnswerCacheStore(
            tmp_path / "cache", busy_timeout_ms=1, write_retries=2
        )
        sibling = sqlite3.connect(str(store.path))
        sibling.execute("BEGIN IMMEDIATE")  # hold the write lock
        try:
            with pytest.raises(CacheBusyError) as excinfo:
                store.put("doc", DOC, PLAN, answer(("v", Fraction(1, 2), 1)))
            assert isinstance(excinfo.value, StoreError)
            assert "locked" in str(excinfo.value.__cause__).lower()
            assert store.busy_retries > 0
            assert store.stats()["persistent_busy_retries"] > 0
        finally:
            sibling.rollback()
            sibling.close()
        # The lock is gone: the very same store commits cleanly now.
        store.put("doc", DOC, PLAN, answer(("v", Fraction(1, 2), 1)))
        got = store.get("doc", DOC, PLAN)
        assert [(i.value, i.probability) for i in got] == [("v", Fraction(1, 2))]
        store.close()

    def test_retry_succeeds_once_lock_clears(self, tmp_path):
        """A transient hold shorter than the retry budget is absorbed
        silently: the put lands, no exception, retries counted."""
        import sqlite3
        import threading

        store = AnswerCacheStore(
            tmp_path / "cache", busy_timeout_ms=5, write_retries=10
        )
        sibling = sqlite3.connect(str(store.path), check_same_thread=False)
        sibling.execute("BEGIN IMMEDIATE")
        release = threading.Timer(0.05, lambda: (sibling.rollback()))
        release.start()
        try:
            store.put("doc", DOC, PLAN, answer(("v", Fraction(1, 3), 2)))
        finally:
            release.join()
            sibling.close()
        got = store.get("doc", DOC, PLAN)
        assert [(i.value, i.probability) for i in got] == [("v", Fraction(1, 3))]
        store.close()

    def test_two_instances_interleaved_writes(self, tmp_path):
        """Two connections to one file (the in-process stand-in for two
        worker processes): interleaved puts and invalidations all land,
        reads on either side decode identical Fractions."""
        first = AnswerCacheStore(tmp_path / "cache")
        second = AnswerCacheStore(tmp_path / "cache")
        stored = answer(("x", Fraction(2, 7), 1), ("y", Fraction(1, 7), 2))
        first.put("doc", DOC, PLAN, stored)
        via_second = second.get("doc", DOC, PLAN)
        assert [(i.value, i.probability) for i in via_second] == [
            ("x", Fraction(2, 7)), ("y", Fraction(1, 7))
        ]
        dropped = second.invalidate_document("doc")
        assert dropped == 1
        assert first.get("doc", DOC, PLAN) is None
        assert first.version("doc") == second.version("doc") == 1
        first.close()
        second.close()
