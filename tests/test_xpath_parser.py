"""Tests for the XPath parser (AST construction)."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xmlkit.xpath.ast import (
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    AXIS_DESCENDANT,
    AXIS_PARENT,
    AXIS_SELF,
    BinaryOp,
    FunctionCall,
    Literal,
    NameTest,
    NodeTest,
    Number,
    Path,
    Quantified,
    Step,
    TextTest,
    Union,
    VarRef,
)
from repro.xmlkit.xpath.parser import compile_xpath


class TestPaths:
    def test_absolute_root(self):
        path = compile_xpath("/")
        assert isinstance(path, Path) and path.absolute and path.steps == ()

    def test_absolute_child(self):
        path = compile_xpath("/movies")
        assert path.absolute
        assert path.steps[0].axis == AXIS_CHILD
        assert path.steps[0].test == NameTest("movies")

    def test_descendant_shorthand(self):
        path = compile_xpath("//movie")
        assert path.steps[0].axis == AXIS_DESCENDANT

    def test_relative_path(self):
        path = compile_xpath("a/b")
        assert not path.absolute
        assert [step.test.name for step in path.steps] == ["a", "b"]

    def test_nested_descendant(self):
        path = compile_xpath("a//b")
        assert path.steps[1].axis == AXIS_DESCENDANT

    def test_self_step(self):
        assert compile_xpath(".").steps[0].axis == AXIS_SELF

    def test_parent_step(self):
        assert compile_xpath("..").steps[0].axis == AXIS_PARENT

    def test_dot_slash_descendant(self):
        path = compile_xpath(".//genre")
        assert path.steps[0].axis == AXIS_SELF
        assert path.steps[1].axis == AXIS_DESCENDANT

    def test_attribute_step(self):
        step = compile_xpath("@id").steps[0]
        assert step.axis == AXIS_ATTRIBUTE and step.test == NameTest("id")

    def test_attribute_wildcard(self):
        assert compile_xpath("@*").steps[0].test == NameTest("*")

    def test_wildcard_step(self):
        assert compile_xpath("*").steps[0].test == NameTest("*")

    def test_text_test(self):
        assert isinstance(compile_xpath("text()").steps[0].test, TextTest)

    def test_node_test(self):
        assert isinstance(compile_xpath("node()").steps[0].test, NodeTest)


class TestPredicates:
    def test_single_predicate(self):
        step = compile_xpath("movie[year]").steps[0]
        assert len(step.predicates) == 1

    def test_stacked_predicates(self):
        step = compile_xpath("movie[year][title]").steps[0]
        assert len(step.predicates) == 2

    def test_comparison_predicate(self):
        predicate = compile_xpath('movie[year="1975"]').steps[0].predicates[0]
        assert isinstance(predicate, BinaryOp) and predicate.op == "="

    def test_paper_query_1(self):
        path = compile_xpath('//movie[.//genre="Horror"]/title')
        assert path.steps[0].test == NameTest("movie")
        assert path.steps[1].test == NameTest("title")
        inner = path.steps[0].predicates[0]
        assert isinstance(inner, BinaryOp)
        assert isinstance(inner.left, Path)
        assert inner.right == Literal("Horror")

    def test_paper_query_2(self):
        path = compile_xpath(
            '//movie[some $d in .//director satisfies contains($d,"John")]/title'
        )
        quantified = path.steps[0].predicates[0]
        assert isinstance(quantified, Quantified)
        assert quantified.kind == "some"
        assert quantified.variable == "d"
        assert isinstance(quantified.condition, FunctionCall)

    def test_every_quantifier(self):
        expr = compile_xpath('every $g in genre satisfies $g="Horror"')
        assert isinstance(expr, Quantified) and expr.kind == "every"


class TestExpressions:
    def test_or_and_precedence(self):
        expr = compile_xpath("a or b and c")
        assert isinstance(expr, BinaryOp) and expr.op == "or"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "and"

    def test_comparison_chain(self):
        expr = compile_xpath("1 < 2")
        assert isinstance(expr, BinaryOp) and expr.op == "<"

    def test_arithmetic_precedence(self):
        expr = compile_xpath("1 + 2 * 3")
        assert expr.op == "+" and expr.right.op == "*"

    def test_star_is_multiply_in_operand_position(self):
        expr = compile_xpath("2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "*"

    def test_union(self):
        expr = compile_xpath("a | b")
        assert isinstance(expr, Union)

    def test_function_call(self):
        expr = compile_xpath('contains("abc", "b")')
        assert expr == FunctionCall("contains", (Literal("abc"), Literal("b")))

    def test_variable_reference(self):
        assert compile_xpath("$x") == VarRef("x")

    def test_variable_with_path(self):
        expr = compile_xpath("$m/title")
        assert isinstance(expr, Path) and expr.base == VarRef("m")

    def test_parenthesized_filter_with_path(self):
        expr = compile_xpath("(a | b)/c")
        assert isinstance(expr, Path) and isinstance(expr.base, Union)

    def test_number_literal(self):
        assert compile_xpath("42") == Number(42.0)

    def test_decimal_literal(self):
        assert compile_xpath("4.5") == Number(4.5)

    def test_string_both_quotes(self):
        assert compile_xpath("'x'") == Literal("x")
        assert compile_xpath('"x"') == Literal("x")

    def test_unary_minus(self):
        expr = compile_xpath("-1")
        from repro.xmlkit.xpath.ast import Negate
        assert isinstance(expr, Negate)

    def test_keyword_as_element_name(self):
        # 'div' in step position is an element name, not the operator.
        path = compile_xpath("div")
        assert path.steps[0].test == NameTest("div")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "movie[",
            "movie]",
            "//",
            "a/",
            "some $x in y",
            "contains(",
            "$",
            "a = ",
            "(a",
            "a ~ b",
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(XPathSyntaxError):
            compile_xpath(text)

    def test_trailing_garbage(self):
        with pytest.raises(XPathSyntaxError):
            compile_xpath("a b")
