"""Tests for string similarity measures."""

import pytest
from hypothesis import given, strategies as st

from repro.core.similarity import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    normalize_person_name,
    person_name_similarity,
    title_similarity,
    token_jaccard,
    tokens,
)

text = st.text(alphabet="abcdefgh 123:", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("jaws", "jaws 2", 2),
            ("abc", "abc", 0),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(text, text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(text, text, text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(text, text)
    def test_similarity_bounds(self, a, b):
        assert 0.0 <= levenshtein_similarity(a, b) <= 1.0


class TestJaro:
    def test_equal_strings(self):
        assert jaro("abc", "abc") == 1.0

    def test_disjoint_strings(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty_vs_nonempty(self):
        assert jaro("", "abc") == 0.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_boosts_prefix(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")

    @given(text, text)
    def test_bounds(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    @given(text, text)
    def test_symmetry(self, a, b):
        assert jaro(a, b) == pytest.approx(jaro(b, a))


class TestTokens:
    def test_lowercase_words(self):
        assert tokens("Die Hard 2") == ["die", "hard", "2"]

    def test_punctuation_dropped(self):
        assert tokens("Mission: Impossible") == ["mission", "impossible"]

    def test_roman_numerals_normalised(self):
        assert tokens("Mission: Impossible II") == ["mission", "impossible", "2"]

    def test_jaccard_identical(self):
        assert token_jaccard("Die Hard", "die hard") == 1.0

    def test_jaccard_disjoint(self):
        assert token_jaccard("Die Hard", "Jaws") == 0.0

    def test_jaccard_empty_both(self):
        assert token_jaccard("", "") == 1.0

    def test_jaccard_empty_one(self):
        assert token_jaccard("", "Jaws") == 0.0


class TestTitleSimilarity:
    def test_equal_titles(self):
        assert title_similarity("Jaws", "Jaws") == 1.0

    def test_roman_vs_arabic_sequels(self):
        assert title_similarity("Mission: Impossible II", "Mission Impossible 2") > 0.9

    def test_franchise_containment_is_confusable(self):
        assert title_similarity("Jaws", "Jaws: The Revenge") >= 0.65
        assert title_similarity("Die Hard", "Die Hard 2") >= 0.65

    def test_cross_franchise_dissimilar(self):
        assert title_similarity("Die Hard", "Jaws") < 0.2
        assert title_similarity("Die Hard 2", "Jaws 2") < 0.65

    def test_long_extension_still_confusable(self):
        assert title_similarity("Die Hard", "Die Hard: With a Vengeance") >= 0.65

    def test_sequel_vs_long_sequel_not_confusable(self):
        assert title_similarity("Die Hard 2", "Die Hard: With a Vengeance") < 0.65

    @given(text, text)
    def test_bounds_and_symmetry(self, a, b):
        value = title_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(title_similarity(b, a))


class TestPersonNames:
    def test_family_first_normalised(self):
        assert normalize_person_name("McTiernan, John") == "john mctiernan"

    def test_whitespace_collapsed(self):
        assert normalize_person_name("  John   McTiernan ") == "john mctiernan"

    def test_convention_equivalence(self):
        assert person_name_similarity("John McTiernan", "McTiernan, John") == 1.0

    def test_different_people_dissimilar(self):
        assert person_name_similarity("John Woo", "Brian De Palma") < 0.7

    def test_single_token_name(self):
        assert normalize_person_name("Cher") == "cher"

    @given(text, text)
    def test_bounds(self, a, b):
        assert 0.0 <= person_name_similarity(a, b) <= 1.0
