"""Tests for information-theoretic uncertainty measures."""

import math
from fractions import Fraction

from hypothesis import HealthCheck, given, settings

from repro.pxml.build import certain_document, certain_prob, choice_prob
from repro.pxml.measures import uncertainty_profile, world_entropy
from repro.pxml.model import PXDocument, PXElement, PXText
from repro.pxml.worlds import iter_worlds, world_count
from repro.xmlkit.nodes import XDocument, element
from .conftest import make_leaf, pxml_documents


class TestWorldEntropy:
    def test_certain_document_zero_bits(self):
        doc = certain_document(XDocument(element("a", element("b", "x"))))
        assert world_entropy(doc) == 0.0

    def test_fair_coin_one_bit(self):
        coin = choice_prob([("1/2", [PXText("h")]), ("1/2", [PXText("t")])])
        doc = PXDocument(certain_prob(PXElement("r", children=[coin])))
        assert world_entropy(doc) == 1.0

    def test_two_coins_two_bits(self):
        coins = [
            choice_prob([("1/2", [PXText("h")]), ("1/2", [PXText("t")])])
            for _ in range(2)
        ]
        doc = PXDocument(certain_prob(PXElement("r", children=coins)))
        assert world_entropy(doc) == 2.0

    def test_biased_coin_below_one_bit(self):
        coin = choice_prob([("1/10", [PXText("h")]), ("9/10", [PXText("t")])])
        doc = PXDocument(certain_prob(PXElement("r", children=[coin])))
        assert 0.0 < world_entropy(doc) < 1.0

    def test_nested_choice_weighted_by_reachability(self):
        inner = choice_prob([("1/2", [PXText("a")]), ("1/2", [PXText("b")])])
        outer = choice_prob([
            ("1/2", [PXElement("x", children=[inner])]),
            ("1/2", []),
        ])
        doc = PXDocument(certain_prob(PXElement("r", children=[outer])))
        # H(outer)=1 bit; inner reachable half the time → +0.5 bits.
        assert world_entropy(doc) == 1.5

    @given(pxml_documents())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_matches_direct_world_entropy(self, doc):
        """Tree-decomposed entropy equals the entropy of the enumerated
        choice-world distribution."""
        if world_count(doc) > 300:
            return
        direct = 0.0
        for world in iter_worlds(doc, limit=None):
            p = float(world.probability)
            direct -= p * math.log2(p)
        assert abs(world_entropy(doc) - direct) < 1e-9

    @given(pxml_documents())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_entropy_bounded_by_log_worlds(self, doc):
        count = world_count(doc)
        assert world_entropy(doc) <= math.log2(count) + 1e-9


class TestProfile:
    def test_profile_fields(self):
        coin = choice_prob([("1/2", [make_leaf("a", "1")]), ("1/2", [])])
        doc = PXDocument(certain_prob(PXElement("r", children=[coin])))
        profile = uncertainty_profile(doc)
        assert profile.worlds == 2
        assert profile.choice_points == 1
        assert profile.entropy_bits == 1.0
        assert "bits" in profile.summary()
