"""Tests for top-down component-factored event compilation
(:mod:`repro.pxml.events_compile`), the cross-document literal table,
and the event-cache eviction bugfix sweep.

Four layers:

* **structure** — compiled plan shapes (factoring, atoms, interning)
  and the variable-disjointness invariant of every product/coproduct,
  including over engine-built answer events;
* **differential** — a seeded corpus sweep (raw, simplified,
  feedback-conditioned documents) pinning compiled pricing
  Fraction-identical to the bottom-up kernel, the preserved PR-3
  expansion oracle, and per-world query enumeration;
* **literal table** — cross-document row reuse, in-place-mutation
  invalidation (no stale Fraction served to any document), bounds;
* **eviction bugfixes** — LRU (not FIFO) recency on hit, and the
  queried row surviving its own enforcement pass down to
  ``max_entries=1``.
"""

import random
from fractions import Fraction

import pytest

from repro.feedback.conditioning import condition_on_event
from repro.probability import ONE, ZERO
from repro.pxml.events import (
    FALSE_EVENT,
    TRUE_EVENT,
    all_of,
    any_of,
    event_probability,
    lit,
    negate,
    product_of,
    weighted_sum,
)
from repro.pxml.events_cache import EventProbabilityCache, cache_for, invalidate
from repro.pxml.events_compile import (
    C_ATOM,
    C_COPROD,
    C_FALSE,
    C_LIT,
    C_NOT,
    C_PROD,
    C_TRUE,
    LiteralProbabilityTable,
    compile_event,
    compiled_probability,
    iter_compiled,
    shared_literal_table,
)
from repro.pxml.events_reference import expansion_probability
from repro.pxml.model import PXDocument, PXElement, Possibility, ProbNode
from repro.pxml.simplify import simplify
from repro.pxml.worlds import world_count
from repro.query.engine import ProbQueryEngine, QueryEngine, query_enumeration
from repro.errors import FeedbackError, QueryError

from tests.test_event_kernel import QUERY, binary, brute_force, random_document


def _fresh_cache(max_entries=None):
    """A cache isolated from the process-shared literal table, so hit
    and miss counters are deterministic per test."""
    return EventProbabilityCache(
        max_entries=max_entries, literal_table=LiteralProbabilityTable()
    )


def assert_components_disjoint(compiled):
    """The compiled invariant: every product/coproduct's parts mention
    pairwise-disjoint variable sets."""
    for node in iter_compiled(compiled):
        if node.kind in (C_PROD, C_COPROD):
            assert len(node.parts) >= 2
            seen = set()
            for part in node.parts:
                overlap = seen & part.source.vars
                assert not overlap, f"components share variables {overlap}"
                seen |= part.source.vars


# -- structure -------------------------------------------------------------------


class TestCompileStructure:
    def test_constants(self):
        assert compile_event(TRUE_EVENT).kind == C_TRUE
        assert compile_event(FALSE_EVENT).kind == C_FALSE
        assert compiled_probability(compile_event(TRUE_EVENT)) == ONE
        assert compiled_probability(compile_event(FALSE_EVENT)) == ZERO

    def test_literal_compiles_to_lit_leaf(self):
        node = binary("1/3")
        compiled = compile_event(lit(node, 0))
        assert compiled.kind == C_LIT
        assert compiled.parts == ()
        assert compiled_probability(compiled) == Fraction(1, 3)

    def test_disjoint_or_factors_to_coproduct(self):
        pairs = [(binary(), binary()) for _ in range(4)]
        event = any_of(
            [all_of([lit(a, 0), lit(b, 0)]) for a, b in pairs]
        )
        compiled = compile_event(event)
        assert compiled.kind == C_COPROD
        assert len(compiled.parts) == 4
        assert_components_disjoint(compiled)

    def test_disjoint_and_factors_to_product(self):
        nodes = [binary() for _ in range(5)]
        event = all_of([lit(node, 0) for node in nodes])
        compiled = compile_event(event)
        assert compiled.kind == C_PROD
        assert len(compiled.parts) == 5
        assert all(part.kind == C_LIT for part in compiled.parts)

    def test_entangled_event_is_an_atom(self):
        a, b = binary(), binary()
        event = any_of(
            [all_of([lit(a, 0), lit(b, 0)]), all_of([lit(a, 1), lit(b, 1)])]
        )
        compiled = compile_event(event)
        assert compiled.kind == C_ATOM
        assert compiled.parts == ()

    def test_negation_compiles_through(self):
        a, b = binary(), binary()
        event = negate(any_of([lit(a, 0), lit(b, 0)]))
        compiled = compile_event(event)
        assert compiled.kind == C_NOT
        assert compiled.parts[0].kind == C_COPROD

    def test_factoring_recurses_through_components(self):
        """A component that is itself an OR keeps factoring below the
        top split — compilation is top-down all the way."""
        a, b, c = binary(), binary(), binary()
        inner = any_of([lit(b, 0), lit(c, 0)])  # disjoint -> coproduct
        event = all_of([lit(a, 0), inner])
        compiled = compile_event(event)
        assert compiled.kind == C_PROD
        kinds = sorted(part.kind for part in compiled.parts)
        assert kinds == sorted((C_LIT, C_COPROD))
        assert_components_disjoint(compiled)

    def test_compiled_plans_intern_by_source_digest(self):
        a, b = binary(), binary()
        event = any_of([lit(a, 0), lit(b, 0)])
        assert compile_event(event) is compile_event(event)

    def test_iter_compiled_visits_each_node_once(self):
        a, b, c, d = binary(), binary(), binary(), binary()
        event = any_of(
            [all_of([lit(a, 0), lit(b, 0)]), all_of([lit(c, 0), lit(d, 0)])]
        )
        nodes = list(iter_compiled(compile_event(event)))
        assert len(nodes) == len({id(node) for node in nodes})
        assert sum(node.kind == C_LIT for node in nodes) == 4

    @pytest.mark.parametrize("seed", range(12))
    def test_engine_answer_events_compile_disjoint(self, seed):
        """The invariant over *engine-built* events: every compiled
        answer event's products/coproducts are variable-disjoint."""
        document = random_document(seed)
        engine = ProbQueryEngine(document, use_cache=False)
        try:
            compiled = engine.compiled_answer_events(QUERY)
        except QueryError:
            pytest.skip("document exceeds the value-realisation cap")
        if not compiled:
            pytest.skip("no answer values for this seed")
        for value, (plan, count) in compiled.items():
            assert count >= 1
            assert_components_disjoint(plan)


# -- differential sweep ----------------------------------------------------------


def _assert_compiled_matches_everything(document, *, enumerate_worlds=True):
    """Every answer event of QUERY prices identically compiled
    (with and without a table), bottom-up, and under the PR-3 oracle;
    the cached engine's ranked answer equals per-world enumeration."""
    reference = ProbQueryEngine(document, use_cache=False)
    try:
        events = reference.answer_events(QUERY)
    except QueryError:
        pytest.skip("document exceeds the value-realisation cap")
    table = LiteralProbabilityTable()
    memo = {}
    for value, (event, _) in events.items():
        compiled = compile_event(event)
        assert_components_disjoint(compiled)
        bottom_up = event_probability(event)
        assert compiled_probability(compiled) == bottom_up, value
        assert (
            compiled_probability(compiled, memo=memo, table=table) == bottom_up
        ), value
        assert expansion_probability(event) == bottom_up, value
    cached = QueryEngine(document, cache=_fresh_cache())
    ranked = {i.value: i.probability for i in cached.query(QUERY)}
    uncached = {i.value: i.probability for i in reference.query(QUERY)}
    assert ranked == uncached
    if enumerate_worlds:
        enumerated = {
            i.value: i.probability
            for i in query_enumeration(document, QUERY, limit=None)
        }
        assert ranked == enumerated


class TestCompiledDifferential:
    @pytest.mark.parametrize("seed", range(25))
    def test_raw_corpus(self, seed):
        document = random_document(seed)
        small = world_count(document) <= 3000
        _assert_compiled_matches_everything(
            document, enumerate_worlds=small
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_simplified_corpus(self, seed):
        document, _report = simplify(random_document(seed))
        small = world_count(document) <= 3000
        _assert_compiled_matches_everything(
            document, enumerate_worlds=small
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_feedback_conditioned_corpus(self, seed):
        document = random_document(seed)
        if world_count(document) > 3000:
            pytest.skip("world space too large for the enumeration oracle")
        engine = ProbQueryEngine(document, use_cache=False)
        try:
            events = engine.answer_events(QUERY)
        except QueryError:
            pytest.skip("document exceeds the value-realisation cap")
        if not events:
            pytest.skip("no answer values for this seed")
        value = sorted(events)[0]
        event = events[value][0]
        try:
            posterior = condition_on_event(document, event, observed=True)
        except FeedbackError:
            pytest.skip("observation has probability 0 or 1")
        _assert_compiled_matches_everything(posterior)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_boolean_events_with_shared_memo(self, seed):
        """Adversarial boolean shapes (negations, overlaps): compiled
        pricing over one shared memo + table equals brute force."""
        rng = random.Random(7000 + seed)
        nodes = [
            binary(rng.choice(("1/4", "1/2", "2/3", "1/5")))
            for _ in range(rng.randint(2, 6))
        ]
        memo = {}
        table = LiteralProbabilityTable()
        for _ in range(6):
            terms = []
            for _ in range(rng.randint(1, 4)):
                literals = [
                    lit(node, rng.randint(0, 1))
                    for node in rng.sample(nodes, rng.randint(1, len(nodes)))
                ]
                if rng.random() < 0.4:
                    literals[0] = negate(literals[0])
                term = all_of(literals)
                if rng.random() < 0.3:
                    term = negate(term)
                terms.append(term)
            event = any_of(terms) if rng.random() < 0.7 else all_of(terms)
            if event is TRUE_EVENT or event is FALSE_EVENT:
                continue
            compiled = compile_event(event)
            assert_components_disjoint(compiled)
            expected = brute_force(event, nodes)
            assert (
                compiled_probability(compiled, memo=memo, table=table)
                == expected
            )
            assert event_probability(event) == expected

    def test_memo_interchangeable_with_kernel(self):
        """Compiled pricing writes the same digest-keyed rows the kernel
        reads: a memo filled by one path answers the other."""
        a, b, c = binary("1/3"), binary("1/4"), binary("2/5")
        event = any_of([all_of([lit(a, 0), lit(b, 0)]), lit(c, 1)])
        compiled_memo = {}
        compiled_probability(compile_event(event), memo=compiled_memo)
        kernel_memo = {}
        event_probability(event, _memo=kernel_memo)
        assert compiled_memo[event.digest] == kernel_memo[event.digest]
        # The kernel served straight from the compiled memo: no rewrite.
        before = dict(compiled_memo)
        assert event_probability(event, _memo=compiled_memo) == before[event.digest]
        assert compiled_memo == before


# -- batched exact arithmetic ----------------------------------------------------


class TestBatchedArithmetic:
    @pytest.mark.parametrize("seed", range(10))
    def test_product_of_equals_sequential_fold(self, seed):
        rng = random.Random(seed)
        factors = [
            Fraction(rng.randint(1, 60), rng.randint(1, 60))
            for _ in range(rng.randint(2, 25))
        ]
        expected = ONE
        for factor in factors:
            expected *= factor
        assert product_of(factors) == expected

    def test_product_of_edges(self):
        assert product_of([]) == ONE
        assert product_of([Fraction(3, 7)]) == Fraction(3, 7)

    @pytest.mark.parametrize("seed", range(10))
    def test_weighted_sum_equals_sequential_sum(self, seed):
        rng = random.Random(100 + seed)
        count = rng.randint(1, 20)
        den = rng.randint(2, 9)
        weights = [Fraction(rng.randint(1, den), den) for _ in range(count)]
        values = [
            Fraction(rng.randint(0, 50), rng.randint(1, 50))
            for _ in range(count)
        ]
        expected = sum(
            (w * v for w, v in zip(weights, values)), ZERO
        )
        assert weighted_sum(weights, values) == expected

    def test_weighted_sum_empty(self):
        assert weighted_sum([], []) == ZERO


# -- the cross-document literal table --------------------------------------------


def _two_choice_document(probs):
    """A document with one uncertain <x> value; ``probs`` are the two
    possibility probabilities (must sum to 1)."""
    element = PXElement("r")
    node = element.append(
        ProbNode([Possibility(probs[0]), Possibility(probs[1])])
    )
    return PXDocument(ProbNode([Possibility(1, [element])])), node


class TestLiteralTable:
    def test_literal_rows_fill_and_hit(self):
        table = LiteralProbabilityTable()
        node = binary("1/3")
        event = lit(node, 0)
        assert table.literal(event) == Fraction(1, 3)
        assert table.literal(event) == Fraction(1, 3)
        stats = table.stats()
        assert stats["literal_misses"] == 1
        assert stats["literal_hits"] == 1

    def test_product_rows_reuse_across_documents(self):
        """The same factor multiset priced for a second document
        resolves from the value-keyed rows — the cross-document reuse
        the fan-out depends on."""
        table = LiteralProbabilityTable()
        probs = (Fraction(1, 3), Fraction(2, 3))
        docs = []
        for _ in range(2):
            document, _node = _two_choice_document(probs)
            docs.append(document)
        events = []
        for document in docs:
            root = document.root
            inner = root.possibilities[0].children[0].children[0]
            events.append(
                all_of([lit(root, 0) if len(root.possibilities) > 1 else TRUE_EVENT,
                        lit(inner, 0)])
            )
        # Same *plan shape*, distinct variables: conjunctions of two
        # independent literals with identical probabilities.
        a1, b1 = binary("1/3"), binary("1/5")
        a2, b2 = binary("1/3"), binary("1/5")
        first = all_of([lit(a1, 0), lit(b1, 0)])
        second = all_of([lit(a2, 0), lit(b2, 0)])
        assert compiled_probability(compile_event(first), table=table) == (
            Fraction(1, 15)
        )
        hits_before = table.stats()["product_hits"]
        assert compiled_probability(compile_event(second), table=table) == (
            Fraction(1, 15)
        )
        assert table.stats()["product_hits"] > hits_before

    def test_mutate_then_requery_serves_no_stale_fraction(self):
        """In-place mutation + invalidate(): the mutated document
        reprices fresh, and a sibling document sharing the table keeps
        pricing its own rows correctly — no stale Fraction is served
        cross-document."""
        table = LiteralProbabilityTable()
        doc_a, node_a = _two_choice_document((Fraction(1, 2), Fraction(1, 2)))
        doc_b, node_b = _two_choice_document((Fraction(1, 3), Fraction(2, 3)))
        cache_a = cache_for(doc_a)
        cache_b = cache_for(doc_b)
        cache_a.literal_table = table
        cache_b.literal_table = table
        assert cache_a.probability(lit(node_a, 0)) == Fraction(1, 2)
        assert cache_b.probability(lit(node_b, 0)) == Fraction(1, 3)
        # Mutate A's probabilities in place, then invalidate.
        node_a.possibilities[0].prob = Fraction(1, 5)
        node_a.possibilities[1].prob = Fraction(4, 5)
        invalidate(doc_a)
        cache_a = cache_for(doc_a)  # invalidation unregisters the cache
        cache_a.literal_table = table
        assert cache_a.probability(lit(node_a, 0)) == Fraction(1, 5)
        assert cache_b.probability(lit(node_b, 0)) == Fraction(1, 3)
        assert cache_b.probability(lit(node_b, 1)) == Fraction(2, 3)

    def test_invalidate_sweeps_shared_table_without_a_cache(self):
        """invalidate() drops literal rows from the process-shared
        table even when the document never registered a cache."""
        shared = shared_literal_table()
        doc, node = _two_choice_document((Fraction(1, 2), Fraction(1, 2)))
        assert shared.literal(lit(node, 0)) == Fraction(1, 2)
        node.possibilities[0].prob = Fraction(1, 4)
        node.possibilities[1].prob = Fraction(3, 4)
        invalidate(doc)
        assert shared.literal(lit(node, 0)) == Fraction(1, 4)

    def test_invalidate_drops_conjunction_rows(self):
        """The identity-keyed small-conjunction rows are per-document
        state: mutating any mentioned node must drop them too."""
        table = LiteralProbabilityTable()
        element = PXElement("r")
        first = element.append(
            ProbNode([Possibility(Fraction(1, 2)), Possibility(Fraction(1, 2))])
        )
        second = element.append(
            ProbNode([Possibility(Fraction(1, 3)), Possibility(Fraction(2, 3))])
        )
        doc = PXDocument(ProbNode([Possibility(1, [element])]))
        event = all_of([lit(first, 0), lit(second, 0)])
        assert compiled_probability(compile_event(event), table=table) == (
            Fraction(1, 6)
        )
        assert table.stats()["conjunction_rows"] == 1
        first.possibilities[0].prob = Fraction(1, 4)
        first.possibilities[1].prob = Fraction(3, 4)
        dropped = table.invalidate_document(doc)
        assert dropped >= 3  # both literals of `first` + the conjunction
        assert table.stats()["conjunction_rows"] == 0
        assert compiled_probability(
            compile_event(event), table=table
        ) == Fraction(1, 12)

    def test_warm_conjunction_is_identity_keyed(self):
        """Re-pricing the same compiled conjunction hits the identity
        rows (no per-literal traffic the second time)."""
        table = LiteralProbabilityTable()
        a, b = binary("1/3"), binary("1/5")
        event = all_of([lit(a, 0), lit(b, 0)])
        compiled = compile_event(event)
        compiled_probability(compiled, table=table)
        literal_calls = (
            table.stats()["literal_hits"] + table.stats()["literal_misses"]
        )
        assert compiled_probability(compiled, table=table) == Fraction(1, 15)
        stats = table.stats()
        assert stats["conjunction_hits"] == 1
        assert (
            stats["literal_hits"] + stats["literal_misses"] == literal_calls
        )

    def test_invalidate_document_returns_dropped_count(self):
        table = LiteralProbabilityTable()
        doc, node = _two_choice_document((Fraction(1, 2), Fraction(1, 2)))
        table.literal(lit(node, 0))
        table.literal(lit(node, 1))
        assert table.invalidate_document(doc) == 2
        assert table.invalidate_document(doc) == 0

    def test_literal_rows_are_bounded_lru(self):
        table = LiteralProbabilityTable(max_literal_rows=4)
        nodes = [binary() for _ in range(8)]
        for node in nodes:
            table.literal(lit(node, 0))
        stats = table.stats()
        assert stats["literal_rows"] <= 4
        assert stats["evictions"] >= 4

    def test_product_rows_are_bounded_lru(self):
        table = LiteralProbabilityTable(max_product_rows=3)
        for i in range(2, 10):
            table.product([Fraction(1, i), Fraction(1, i + 1)])
        assert table.stats()["product_rows"] <= 3

    def test_big_products_bypass_the_rows(self):
        table = LiteralProbabilityTable()
        factors = [Fraction(1, k) for k in range(2, 30)]
        expected = product_of(factors)
        assert table.product(factors) == expected
        assert table.stats()["product_rows"] == 0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            LiteralProbabilityTable(max_literal_rows=0)
        with pytest.raises(ValueError):
            LiteralProbabilityTable(max_product_rows=0)

    def test_clear_and_len(self):
        table = LiteralProbabilityTable()
        table.literal(lit(binary(), 0))
        table.product([Fraction(1, 2), Fraction(1, 3)])
        assert len(table) == 2
        table.clear()
        assert len(table) == 0

    def test_cache_defaults_to_the_shared_table(self):
        assert EventProbabilityCache().literal_table is shared_literal_table()

    def test_service_threads_one_table_through_engines(self):
        from repro.dbms.service import DataspaceService

        table = LiteralProbabilityTable()
        service = DataspaceService(literal_table=table)
        service.load("a", "<r><x>1</x></r>")
        service.load("b", "<r><x>2</x></r>")
        service.query_all("//x")
        stats = service.cache_stats()
        assert "literal_table_literal_rows" in stats
        assert stats["literal_table_literal_rows"] == table.stats()["literal_rows"]


# -- eviction bugfixes -----------------------------------------------------------


class TestEvictionBugfixes:
    def _hot_events(self, count):
        nodes = [binary() for _ in range(count + 1)]
        return [
            any_of(
                [
                    all_of([lit(nodes[i], 0), lit(nodes[i + 1], 0)]),
                    lit(nodes[i], 1),
                ]
            )
            for i in range(count)
        ]

    def test_warm_hit_rate_survives_working_set_bound(self):
        """The LRU regression: with a bound equal to the working set,
        hot rows refreshed on every hit survive arbitrary churn from
        one-shot events.  Under the old FIFO eviction the hottest rows
        were evicted *first* and every round re-missed."""
        hot = self._hot_events(6)
        sizing = _fresh_cache(max_entries=None)
        for event in hot:
            sizing.probability(event)
        working_set = len(sizing)
        cache = _fresh_cache(max_entries=working_set)
        for event in hot:
            cache.probability(event)
        warm_misses = cache.misses
        # Churn: more one-shot literals than the whole bound, so FIFO
        # would have rolled every warm row (roots included) out of the
        # table.  Each round re-touches the hot roots, refreshing them.
        for _ in range(2 * working_set):
            cache.probability(lit(binary(), 0))
            for event in hot:
                cache.probability(event)
        assert cache.misses > warm_misses  # the churn itself missed
        churn_misses = cache.misses - warm_misses
        assert churn_misses == 2 * working_set  # ...but only the churn
        assert len(cache) <= working_set
        assert cache.evictions > 0

    def test_hit_refreshes_recency(self):
        """Directly pin move-to-end: after a hit, a subsequent eviction
        takes a *different* row."""
        cache = _fresh_cache(max_entries=2)
        a, b = lit(binary(), 0), lit(binary(), 0)
        cache.probability(a)  # oldest
        cache.probability(b)
        cache.probability(a)  # hit: refreshed to the young end
        cache.probability(lit(binary(), 0))  # evicts b, not a
        misses = cache.misses
        cache.probability(a)
        assert cache.misses == misses  # a survived
        assert cache.hits >= 2

    def test_queried_row_survives_enforcement_at_max_entries_one(self):
        """A single event whose sub-memo exceeds the bound must still
        leave *its own* row resident — the caller's next query hits."""
        a, b, c = binary(), binary(), binary()
        event = any_of(
            [
                all_of([lit(a, 0), lit(b, 0)]),
                all_of([lit(b, 1), lit(c, 0)]),
            ]
        )
        cache = _fresh_cache(max_entries=1)
        first = cache.probability(event)
        assert len(cache) == 1
        assert cache.evictions > 0  # the bound really was exceeded
        assert cache.misses == 1
        assert cache.probability(event) == first
        assert cache.hits == 1
        assert cache.misses == 1

    def test_bounded_cache_still_exact(self):
        events = self._hot_events(10)
        bounded = _fresh_cache(max_entries=1)
        reference = [event_probability(event) for event in events]
        assert [bounded.probability(e) for e in events] == reference
        assert [bounded.probability(e) for e in events] == reference
