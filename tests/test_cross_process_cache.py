"""Cross-process cache reuse: persist, reopen in a fresh interpreter,
assert Fraction-identical answers and a cache-hit counter > 0.

This is the acceptance test for the persistent dataspace service: the
second interpreter shares no memory with the first, so every answer it
serves from the cache proves the on-disk keying (plan fingerprint digest
+ document content digest) and the exact-Fraction wire format.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

WORKLOAD = [
    "//person/tel",
    "//person/nm",
    '//person[nm="John"]/tel',
]

#: Runs in a *fresh* interpreter.  mode=cold builds the store and prices
#: the workload; mode=warm reopens and must serve from disk.  Output: one
#: JSON object on stdout.
SCRIPT = """
import json, sys
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.dbms.service import DataspaceService

mode, store_dir, cache_dir = sys.argv[1], sys.argv[2], sys.argv[3]
workload = json.loads(sys.argv[4])

with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
    if mode == "cold":
        book_a, book_b = addressbook_documents()
        service.load_document("a", book_a)
        service.load_document("b", book_b)
        service.integrate(
            "a", "b", "ab",
            rules=[DeepEqualRule(), LeafValueRule()], dtd=ADDRESSBOOK_DTD,
        )
    answers = {
        query: [
            [item.value,
             [item.probability.numerator, item.probability.denominator],
             item.occurrences]
            for item in service.query("ab", query)
        ]
        for query in workload
    }
    print(json.dumps({
        "answers": answers,
        "stats": service.cache_stats(),
        "plan_digests": {
            q: service.cache.plan_digest(q) for q in workload
        },
    }))
"""


def run_interpreter(mode: str, store_dir: Path, cache_dir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [
            sys.executable, "-c", SCRIPT,
            mode, str(store_dir), str(cache_dir), json.dumps(WORKLOAD),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


def test_cross_process_reuse(tmp_path):
    store_dir, cache_dir = tmp_path / "store", tmp_path / "cache"

    cold = run_interpreter("cold", store_dir, cache_dir)
    assert cold["stats"]["persistent_stored"] == len(WORKLOAD)
    assert cold["stats"]["persistent_hits"] == 0

    warm = run_interpreter("warm", store_dir, cache_dir)

    # Fraction-identical answers (numerator/denominator pairs).
    assert warm["answers"] == cold["answers"]
    # Every answer was a persistent hit in the fresh interpreter …
    assert warm["stats"]["persistent_hits"] == len(WORKLOAD)
    assert warm["stats"]["persistent_stored"] == 0
    # … without materializing a document or building an engine.
    assert warm["stats"]["engines"] == 0

    # The plan memo carried the fingerprint digests across processes —
    # the stability contract of QueryPlan.fingerprint_digest.
    assert warm["plan_digests"] == cold["plan_digests"]
    assert all(warm["plan_digests"].values())


def test_cross_process_fingerprint_digest_stability(tmp_path):
    """The digest of a compiled plan is identical in two interpreters
    (no hash randomization, no object identity in the encoding)."""
    script = (
        "from repro.query.plan import compile_plan\n"
        "for q in ['//a/b', '//person[nm=\"John\"]/tel',"
        " '//m[some $t in tel satisfies contains($t, \"1\")]']:\n"
        "    print(compile_plan(q).fingerprint_digest)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    outputs = [
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=120,
        )
        for _ in range(2)
    ]
    for result in outputs:
        assert result.returncode == 0, result.stderr
    assert outputs[0].stdout == outputs[1].stdout
    digests = outputs[0].stdout.split()
    assert len(set(digests)) == 3  # distinct queries, distinct digests
