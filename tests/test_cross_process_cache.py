"""Cross-process cache reuse: persist, reopen in a fresh interpreter,
assert Fraction-identical answers and a cache-hit counter > 0.

This is the acceptance test for the persistent dataspace service: the
second interpreter shares no memory with the first, so every answer it
serves from the cache proves the on-disk keying (plan fingerprint digest
+ document content digest) and the exact-Fraction wire format.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

WORKLOAD = [
    "//person/tel",
    "//person/nm",
    '//person[nm="John"]/tel',
]

#: The fan-out acceptance (ISSUE 7): one query over these documents,
#: fused under both strategies; deliberately NOT in WORKLOAD so its
#: per-document rows are attributable in the counters.
FUSION_XPATH = '//person[tel="1111"]/nm'
FUSION_DOCS = ["a", "ab", "b"]

#: (kind, target, text) aggregates priced alongside the query workload —
#: the persisted-aggregate-rows acceptance (ISSUE 5).
AGGREGATES = [
    ["count", "person", None],
    ["sum", "tel", None],
    ["min", "tel", None],
    ["max", "tel", None],
    ["exists", "person", None],
    ["count", "nm", "John"],
]

#: Runs in a *fresh* interpreter.  mode=cold builds the store and prices
#: the workload; mode=warm reopens and must serve from disk.  Output: one
#: JSON object on stdout.
SCRIPT = """
import json, sys
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.dbms.cache_store import encode_aggregate_distribution
from repro.dbms.service import DataspaceService
from repro.server.wire import encode_fused_answer

mode, store_dir, cache_dir = sys.argv[1], sys.argv[2], sys.argv[3]
workload = json.loads(sys.argv[4])
aggregates = json.loads(sys.argv[5])
fusion_xpath, fusion_docs = sys.argv[6], json.loads(sys.argv[7])

with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
    if mode == "cold":
        book_a, book_b = addressbook_documents()
        service.load_document("a", book_a)
        service.load_document("b", book_b)
        service.integrate(
            "a", "b", "ab",
            rules=[DeepEqualRule(), LeafValueRule()], dtd=ADDRESSBOOK_DTD,
        )
    answers = {
        query: [
            [item.value,
             [item.probability.numerator, item.probability.denominator],
             item.occurrences]
            for item in service.query("ab", query)
        ]
        for query in workload
    }
    distributions = {
        f"{kind}:{target}:{text}": encode_aggregate_distribution(
            service.aggregate("ab", kind, target, text=text)
        )
        for kind, target, text in aggregates
    }
    fused = {
        strategy: encode_fused_answer(service.query_all(
            fusion_xpath, names=fusion_docs, strategy=strategy, rrf_k=17,
        ))
        for strategy in ("prob", "rrf")
    }
    print(json.dumps({
        "answers": answers,
        "aggregates": distributions,
        "fused": fused,
        "stats": service.cache_stats(),
        "plan_digests": {
            q: service.cache.plan_digest(q) for q in workload
        },
    }))
"""


def run_interpreter(mode: str, store_dir: Path, cache_dir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [
            sys.executable, "-c", SCRIPT,
            mode, str(store_dir), str(cache_dir),
            json.dumps(WORKLOAD), json.dumps(AGGREGATES),
            FUSION_XPATH, json.dumps(FUSION_DOCS),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


def test_cross_process_reuse(tmp_path):
    store_dir, cache_dir = tmp_path / "store", tmp_path / "cache"

    cold = run_interpreter("cold", store_dir, cache_dir)
    # The prob fan-out stores one row per fanned document; the rrf
    # fan-out of the same query then hits those same rows (fusion
    # strategy is not part of the cache key — the per-document answer
    # is strategy-independent).
    assert cold["stats"]["persistent_stored"] == len(WORKLOAD) + len(FUSION_DOCS)
    assert cold["stats"]["persistent_hits"] == len(FUSION_DOCS)
    assert cold["stats"]["persistent_aggregate_stored"] == len(AGGREGATES)
    assert cold["stats"]["persistent_aggregate_hits"] == 0

    warm = run_interpreter("warm", store_dir, cache_dir)

    # Fraction-identical answers (numerator/denominator pairs).
    assert warm["answers"] == cold["answers"]
    # Fraction-identical aggregate distributions, decoded from the
    # persisted aggregate rows of the first interpreter.
    assert warm["aggregates"] == cold["aggregates"]
    # Fraction-identical fused fan-out results — scores, membership and
    # per-document provenance (name, local rank, "num/den" probability)
    # — for both fusion strategies (ISSUE 7 acceptance).
    assert warm["fused"] == cold["fused"]
    # Every answer, every aggregate, and every fan-out's per-document
    # row was a persistent hit in the fresh interpreter …
    assert warm["stats"]["persistent_hits"] == len(WORKLOAD) + 2 * len(FUSION_DOCS)
    assert warm["stats"]["persistent_stored"] == 0
    assert warm["stats"]["persistent_aggregate_hits"] == len(AGGREGATES)
    assert warm["stats"]["persistent_aggregate_stored"] == 0
    # … without materializing a document or building an engine.
    assert warm["stats"]["engines"] == 0

    # The plan memo carried the fingerprint digests across processes —
    # the stability contract of QueryPlan.fingerprint_digest.
    assert warm["plan_digests"] == cold["plan_digests"]
    assert all(warm["plan_digests"].values())


def test_cross_process_fingerprint_digest_stability(tmp_path):
    """The digest of a compiled plan is identical in two interpreters
    (no hash randomization, no object identity in the encoding)."""
    script = (
        "from repro.query.plan import compile_plan\n"
        "from repro.query.aggregates import compile_aggregate\n"
        "for q in ['//a/b', '//person[nm=\"John\"]/tel',"
        " '//m[some $t in tel satisfies contains($t, \"1\")]']:\n"
        "    print(compile_plan(q).fingerprint_digest)\n"
        "for kind in ('count', 'sum', 'min', 'max', 'exists'):\n"
        "    print(compile_aggregate(kind, 'tel', text='1').digest)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    outputs = [
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=120,
        )
        for _ in range(2)
    ]
    for result in outputs:
        assert result.returncode == 0, result.stderr
    assert outputs[0].stdout == outputs[1].stdout
    digests = outputs[0].stdout.split()
    # Distinct queries and distinct aggregate specs, distinct digests.
    assert len(set(digests)) == 8


#: Concurrent-writer stress (ISSUE 8): each process hammers one shared
#: cache file with puts/invalidations/reads.  Tight busy budget so lock
#: contention actually happens; raw `sqlite3.OperationalError: database
#: is locked` escaping the typed path exits non-zero.
STRESS_SCRIPT = """
import json, sqlite3, sys
from fractions import Fraction
from repro.dbms.cache_store import AnswerCacheStore
from repro.errors import CacheBusyError
from repro.query.ranking import RankedAnswer, RankedItem

cache_dir, label, iterations = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = AnswerCacheStore(cache_dir, busy_timeout_ms=20, write_retries=40)
answer = RankedAnswer([
    RankedItem("v", Fraction(3, 7), 2),
    RankedItem("w", Fraction(1, 7), 1),
])
PLAN, DOC = "a" * 64, "b" * 64
busy = raw = mismatches = 0
for index in range(iterations):
    try:
        store.put("shared", DOC, PLAN, answer)
        store.put("own-" + label, DOC, PLAN, answer)
        if index % 7 == 0:
            store.invalidate_document("own-" + label)
        got = store.get("shared", DOC, PLAN, record=False)
        if got is not None:
            items = [(i.value, str(i.probability)) for i in got]
            if items != [("v", "3/7"), ("w", "1/7")]:
                mismatches += 1
    except CacheBusyError:
        busy += 1          # the typed, documented contention surface
    except sqlite3.OperationalError:
        raw += 1           # the bug ISSUE 8 pins: must never escape
stats = store.stats()
store.close()
print(json.dumps({
    "busy": busy, "raw": raw, "mismatches": mismatches, "stats": stats,
}))
sys.exit(2 if raw or mismatches else 0)
"""


def test_two_process_concurrent_writers_no_raw_locked_errors(tmp_path):
    """Two interpreters write one cache file simultaneously: every
    surfaced contention is the typed CacheBusyError, never the raw
    driver exception, and the shared row decodes Fraction-identical on
    both sides throughout."""
    iterations = int(os.environ.get("STRESS_ITERATIONS", "150"))
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    cache_dir = tmp_path / "cache"
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", STRESS_SCRIPT,
             str(cache_dir), label, str(iterations)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        for label in ("p1", "p2")
    ]
    reports = []
    for proc in procs:
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, f"stress writer failed: {err}\n{out}"
        reports.append(json.loads(out))
    for report in reports:
        assert report["raw"] == 0
        assert report["mismatches"] == 0
        assert report["stats"]["persistent_busy_retries"] >= 0
    # Both processes' rows landed: the shared row plus each private row
    # survive, and a third connection decodes the same exact Fractions.
    from repro.dbms.cache_store import AnswerCacheStore

    store = AnswerCacheStore(cache_dir)
    got = store.get("shared", "b" * 64, "a" * 64, record=False)
    assert [(i.value, str(i.probability)) for i in got] == [
        ("v", "3/7"), ("w", "1/7")
    ]
    store.close()
