"""Cross-process cache reuse: persist, reopen in a fresh interpreter,
assert Fraction-identical answers and a cache-hit counter > 0.

This is the acceptance test for the persistent dataspace service: the
second interpreter shares no memory with the first, so every answer it
serves from the cache proves the on-disk keying (plan fingerprint digest
+ document content digest) and the exact-Fraction wire format.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

WORKLOAD = [
    "//person/tel",
    "//person/nm",
    '//person[nm="John"]/tel',
]

#: The fan-out acceptance (ISSUE 7): one query over these documents,
#: fused under both strategies; deliberately NOT in WORKLOAD so its
#: per-document rows are attributable in the counters.
FUSION_XPATH = '//person[tel="1111"]/nm'
FUSION_DOCS = ["a", "ab", "b"]

#: (kind, target, text) aggregates priced alongside the query workload —
#: the persisted-aggregate-rows acceptance (ISSUE 5).
AGGREGATES = [
    ["count", "person", None],
    ["sum", "tel", None],
    ["min", "tel", None],
    ["max", "tel", None],
    ["exists", "person", None],
    ["count", "nm", "John"],
]

#: Runs in a *fresh* interpreter.  mode=cold builds the store and prices
#: the workload; mode=warm reopens and must serve from disk.  Output: one
#: JSON object on stdout.
SCRIPT = """
import json, sys
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.dbms.cache_store import encode_aggregate_distribution
from repro.dbms.service import DataspaceService
from repro.server.wire import encode_fused_answer

mode, store_dir, cache_dir = sys.argv[1], sys.argv[2], sys.argv[3]
workload = json.loads(sys.argv[4])
aggregates = json.loads(sys.argv[5])
fusion_xpath, fusion_docs = sys.argv[6], json.loads(sys.argv[7])

with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
    if mode == "cold":
        book_a, book_b = addressbook_documents()
        service.load_document("a", book_a)
        service.load_document("b", book_b)
        service.integrate(
            "a", "b", "ab",
            rules=[DeepEqualRule(), LeafValueRule()], dtd=ADDRESSBOOK_DTD,
        )
    answers = {
        query: [
            [item.value,
             [item.probability.numerator, item.probability.denominator],
             item.occurrences]
            for item in service.query("ab", query)
        ]
        for query in workload
    }
    distributions = {
        f"{kind}:{target}:{text}": encode_aggregate_distribution(
            service.aggregate("ab", kind, target, text=text)
        )
        for kind, target, text in aggregates
    }
    fused = {
        strategy: encode_fused_answer(service.query_all(
            fusion_xpath, names=fusion_docs, strategy=strategy, rrf_k=17,
        ))
        for strategy in ("prob", "rrf")
    }
    print(json.dumps({
        "answers": answers,
        "aggregates": distributions,
        "fused": fused,
        "stats": service.cache_stats(),
        "plan_digests": {
            q: service.cache.plan_digest(q) for q in workload
        },
    }))
"""


def run_interpreter(mode: str, store_dir: Path, cache_dir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [
            sys.executable, "-c", SCRIPT,
            mode, str(store_dir), str(cache_dir),
            json.dumps(WORKLOAD), json.dumps(AGGREGATES),
            FUSION_XPATH, json.dumps(FUSION_DOCS),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


def test_cross_process_reuse(tmp_path):
    store_dir, cache_dir = tmp_path / "store", tmp_path / "cache"

    cold = run_interpreter("cold", store_dir, cache_dir)
    # The prob fan-out stores one row per fanned document; the rrf
    # fan-out of the same query then hits those same rows (fusion
    # strategy is not part of the cache key — the per-document answer
    # is strategy-independent).
    assert cold["stats"]["persistent_stored"] == len(WORKLOAD) + len(FUSION_DOCS)
    assert cold["stats"]["persistent_hits"] == len(FUSION_DOCS)
    assert cold["stats"]["persistent_aggregate_stored"] == len(AGGREGATES)
    assert cold["stats"]["persistent_aggregate_hits"] == 0

    warm = run_interpreter("warm", store_dir, cache_dir)

    # Fraction-identical answers (numerator/denominator pairs).
    assert warm["answers"] == cold["answers"]
    # Fraction-identical aggregate distributions, decoded from the
    # persisted aggregate rows of the first interpreter.
    assert warm["aggregates"] == cold["aggregates"]
    # Fraction-identical fused fan-out results — scores, membership and
    # per-document provenance (name, local rank, "num/den" probability)
    # — for both fusion strategies (ISSUE 7 acceptance).
    assert warm["fused"] == cold["fused"]
    # Every answer, every aggregate, and every fan-out's per-document
    # row was a persistent hit in the fresh interpreter …
    assert warm["stats"]["persistent_hits"] == len(WORKLOAD) + 2 * len(FUSION_DOCS)
    assert warm["stats"]["persistent_stored"] == 0
    assert warm["stats"]["persistent_aggregate_hits"] == len(AGGREGATES)
    assert warm["stats"]["persistent_aggregate_stored"] == 0
    # … without materializing a document or building an engine.
    assert warm["stats"]["engines"] == 0

    # The plan memo carried the fingerprint digests across processes —
    # the stability contract of QueryPlan.fingerprint_digest.
    assert warm["plan_digests"] == cold["plan_digests"]
    assert all(warm["plan_digests"].values())


def test_cross_process_fingerprint_digest_stability(tmp_path):
    """The digest of a compiled plan is identical in two interpreters
    (no hash randomization, no object identity in the encoding)."""
    script = (
        "from repro.query.plan import compile_plan\n"
        "from repro.query.aggregates import compile_aggregate\n"
        "for q in ['//a/b', '//person[nm=\"John\"]/tel',"
        " '//m[some $t in tel satisfies contains($t, \"1\")]']:\n"
        "    print(compile_plan(q).fingerprint_digest)\n"
        "for kind in ('count', 'sum', 'min', 'max', 'exists'):\n"
        "    print(compile_aggregate(kind, 'tel', text='1').digest)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    outputs = [
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=120,
        )
        for _ in range(2)
    ]
    for result in outputs:
        assert result.returncode == 0, result.stderr
    assert outputs[0].stdout == outputs[1].stdout
    digests = outputs[0].stdout.split()
    # Distinct queries and distinct aggregate specs, distinct digests.
    assert len(set(digests)) == 8
