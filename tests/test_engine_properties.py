"""Cross-cutting semantic properties of the integration engine.

These pin down behaviours a downstream user would rely on:

* **symmetry** — with symmetric source weights, integrating (a, b) and
  (b, a) yields the same distribution over worlds;
* **idempotence** — integrating a document with itself is certain and
  (deep-)equal to the original;
* **identity** — integrating with an empty sibling list changes nothing;
* **explosion guard** — oversized possibility spaces raise
  :class:`ExplosionError` with a usable estimate instead of hanging.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.engine import integrate
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.errors import ExplosionError
from repro.pxml.build import to_certain
from repro.pxml.worlds import distinct_worlds, world_count
from repro.xmlkit.nodes import canonical_key, deep_equal
from repro.xmlkit.parser import parse_document
from .conftest import source_pairs, xml_documents

GENERIC = [DeepEqualRule(), LeafValueRule()]


def world_distribution(document):
    return {
        canonical_key(doc.root): prob
        for doc, prob in distinct_worlds(document, limit=None)
    }


class TestSymmetry:
    @given(source_pairs())
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_integration_is_symmetric_up_to_value_order(self, pair):
        """With ½/½ source weights the two directions define the same
        distribution over worlds."""
        source_a, source_b = pair
        forward = integrate(source_a, source_b, rules=GENERIC,
                            max_possibilities=5000)
        backward = integrate(source_b, source_a, rules=GENERIC,
                             max_possibilities=5000)
        if world_count(forward.document) > 1500:
            return
        assert world_distribution(forward.document) == world_distribution(
            backward.document
        )

    def test_symmetry_on_figure2(self):
        from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
        book_a, book_b = addressbook_documents()
        forward = integrate(book_a, book_b, rules=GENERIC, dtd=ADDRESSBOOK_DTD)
        backward = integrate(book_b, book_a, rules=GENERIC, dtd=ADDRESSBOOK_DTD)
        assert world_distribution(forward.document) == world_distribution(
            backward.document
        )


class TestIdempotence:
    @staticmethod
    def _normalized_key(element):
        """Canonical key after the engine's text normalisation, mirroring
        ``merge_pair`` exactly: leaf elements keep their concatenated text
        (ends stripped); mixed content keeps each text node individually
        stripped, repositioned into one block after the elements."""
        from repro.xmlkit.nodes import XElement, XText

        def normalize(node):
            clone = XElement(node.tag, dict(node.attributes))
            element_children = [
                child for child in node.children if isinstance(child, XElement)
            ]
            text_children = [
                child.value
                for child in node.children
                if isinstance(child, XText)
            ]
            if not element_children:
                text = "".join(text_children).strip()
                if text:
                    clone.append(XText(text))
                return clone
            for child in element_children:
                clone.append(normalize(child))
            stray = "".join(part.strip() for part in text_children if part.strip())
            if stray:
                clone.append(XText(stray))
            return clone

        return canonical_key(normalize(element))

    @given(xml_documents())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_self_integration_is_certain(self, document):
        result = integrate(document, document.copy(), rules=GENERIC,
                           max_possibilities=5000)
        if not result.document.is_certain():
            # Duplicate-looking siblings legitimately stay ambiguous
            # (sibling distinctness); anything else must be certain.
            assert result.report.ambiguous_matches > 0
            return
        merged = to_certain(result.document)
        assert self._normalized_key(merged.root) == self._normalized_key(
            document.root
        )


class TestIdentity:
    def test_empty_other_side_preserves_content(self):
        source = parse_document("<r><x>1</x><y><z>2</z></y></r>")
        result = integrate(source, parse_document("<r/>"), rules=GENERIC)
        assert result.document.is_certain()
        assert deep_equal(to_certain(result.document).root, source.root)

    def test_both_empty(self):
        result = integrate(parse_document("<r/>"), parse_document("<r/>"),
                           rules=GENERIC)
        assert result.document.is_certain()
        assert to_certain(result.document).root.tag == "r"


class TestExplosionGuard:
    def _confusable_sources(self, count):
        # Non-leaf records with no deciding rule → all pairs uncertain.
        records_a = "".join(f"<p><q><n>a{i}</n></q></p>" for i in range(count))
        records_b = "".join(f"<p><q><m>b{i}</m></q></p>" for i in range(count))
        return (
            parse_document(f"<r>{records_a}</r>"),
            parse_document(f"<r>{records_b}</r>"),
        )

    def test_budget_exceeded_raises(self):
        source_a, source_b = self._confusable_sources(6)
        with pytest.raises(ExplosionError) as excinfo:
            integrate(source_a, source_b, rules=[DeepEqualRule()],
                      max_possibilities=100)
        assert excinfo.value.estimated == 13327

    def test_budget_sufficient_succeeds(self):
        source_a, source_b = self._confusable_sources(3)
        result = integrate(source_a, source_b, rules=[DeepEqualRule()],
                           max_possibilities=100)
        # 3-vs-3 all-uncertain: Σ C(3,k)² k! = 34 matchings.
        assert result.report.largest_choice == 34

    def test_estimator_predicts_the_explosion(self):
        from repro.core.engine import IntegrationConfig
        from repro.core.estimate import estimate_integration
        from repro.core.oracle import Oracle
        source_a, source_b = self._confusable_sources(6)
        config = IntegrationConfig(oracle=Oracle([DeepEqualRule()]),
                                   max_possibilities=100)
        estimate = estimate_integration(source_a, source_b, config)
        assert estimate.possibility_count == 13327
