"""Tests for possible-world enumeration and counting."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import ExplosionError
from repro.pxml.build import certain_prob, choice_prob
from repro.pxml.model import PXDocument, PXElement, PXText, Possibility, ProbNode
from repro.pxml.worlds import distinct_worlds, iter_worlds, world_count
from repro.xmlkit.serializer import serialize
from .conftest import make_leaf, pxml_documents


def two_choice_doc():
    """root <r> with two independent binary choices under it."""
    c1 = choice_prob([("1/2", [make_leaf("a", "1")]), ("1/2", [make_leaf("a", "2")])])
    c2 = choice_prob([("1/4", [make_leaf("b", "x")]), ("3/4", [])])
    return PXDocument(certain_prob(PXElement("r", children=[c1, c2])))


class TestWorldCount:
    def test_certain_doc(self):
        assert world_count(PXDocument(certain_prob(make_leaf("a", "x")))) == 1

    def test_independent_choices_multiply(self):
        assert world_count(two_choice_doc()) == 4

    def test_alternatives_add(self):
        node = choice_prob([("1/3", []), ("1/3", []), ("1/3", [])])
        doc = PXDocument(certain_prob(PXElement("r", children=[node])))
        assert world_count(doc) == 3

    def test_nested_choice_in_alternative(self):
        inner = choice_prob([("1/2", [PXText("a")]), ("1/2", [PXText("b")])])
        outer = choice_prob([
            ("1/2", [PXElement("x", children=[inner])]),
            ("1/2", []),
        ])
        doc = PXDocument(certain_prob(PXElement("r", children=[outer])))
        # branch 1 has 2 sub-worlds, branch 2 has 1.
        assert world_count(doc) == 3

    @given(pxml_documents())
    @settings(suppress_health_check=[HealthCheck.too_slow])
    def test_world_count_matches_enumeration(self, doc):
        count = world_count(doc)
        if count <= 500:
            assert len(list(iter_worlds(doc, limit=None))) == count


class TestIterWorlds:
    def test_probabilities_sum_to_one(self):
        worlds = list(iter_worlds(two_choice_doc()))
        assert sum(w.probability for w in worlds) == 1

    def test_world_probabilities_correct(self):
        worlds = {serialize(w.document): w.probability for w in iter_worlds(two_choice_doc())}
        assert worlds["<r><a>1</a><b>x</b></r>"] == Fraction(1, 8)
        assert worlds["<r><a>2</a></r>"] == Fraction(3, 8)

    def test_limit_raises_explosion(self):
        # 2^12 worlds with limit 100.
        children = [
            choice_prob([("1/2", [make_leaf("a", "1")]), ("1/2", [])])
            for _ in range(12)
        ]
        doc = PXDocument(certain_prob(PXElement("r", children=children)))
        with pytest.raises(ExplosionError):
            list(iter_worlds(doc, limit=100))

    @given(pxml_documents())
    @settings(suppress_health_check=[HealthCheck.too_slow])
    def test_probability_mass_is_exactly_one(self, doc):
        if world_count(doc) <= 500:
            assert sum(w.probability for w in iter_worlds(doc, limit=None)) == 1


class TestDistinctWorlds:
    def test_duplicates_merged(self):
        node = choice_prob([("1/2", [make_leaf("a", "x")]),
                            ("1/2", [make_leaf("a", "x")])])
        doc = PXDocument(certain_prob(PXElement("r", children=[node])))
        merged = distinct_worlds(doc)
        assert len(merged) == 1
        assert merged[0][1] == 1

    def test_sorted_by_probability(self):
        node = choice_prob([("1/4", [make_leaf("a", "x")]),
                            ("3/4", [make_leaf("a", "y")])])
        doc = PXDocument(certain_prob(PXElement("r", children=[node])))
        merged = distinct_worlds(doc)
        assert merged[0][1] == Fraction(3, 4)

    @given(pxml_documents())
    @settings(suppress_health_check=[HealthCheck.too_slow])
    def test_distinct_mass_is_one(self, doc):
        if world_count(doc) <= 300:
            assert sum(prob for _, prob in distinct_worlds(doc, limit=None)) == 1
