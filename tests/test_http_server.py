"""Tests for the asyncio HTTP dataspace front.

Three layers, increasingly end-to-end:

* endpoint semantics against an in-process :class:`BackgroundServer`
  (routing, wire decoding, structured errors, keep-alive, pipelining);
* the **concurrency soak**: N threads × M mixed query/feedback/integrate
  HTTP requests against one live server must produce Fraction-identical
  answers to a serial in-process replay of the same schedules, inside a
  hard timeout (no deadlock) — matrix reduced in CI via ``SOAK_THREADS``
  / ``SOAK_REQUESTS``;
* the acceptance end-to-end: two **sequential server processes**
  (``imprecise serve --http``) sharing a ``--cache-dir`` serve
  Fraction-identical answers, the second from persistent-cache hits,
  asserted entirely over HTTP.
"""

import http.server
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from fractions import Fraction
from pathlib import Path

import pytest

from repro.data.addressbook import addressbook_documents
from repro.dbms.service import DataspaceService, format_cache_stats
from repro.server.app import ServerApp
from repro.server.client import DataspaceClient, ServerError
from repro.server.http import BackgroundServer
from repro.xmlkit.serializer import serialize

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Soak matrix — CI reduces it, a deep local run can crank it up.
SOAK_THREADS = int(os.environ.get("SOAK_THREADS", "6"))
SOAK_REQUESTS = int(os.environ.get("SOAK_REQUESTS", "8"))
SOAK_TIMEOUT = float(os.environ.get("SOAK_TIMEOUT", "120"))

QUERIES = ["//person/tel", "//person/nm", '//person[nm="John"]/tel']


def shape(answer):
    return [(item.value, item.probability, item.occurrences) for item in answer]


@pytest.fixture
def service(tmp_path):
    with DataspaceService(
        directory=tmp_path / "store", cache_dir=tmp_path / "cache"
    ) as service:
        yield service


@pytest.fixture
def live(service):
    """(client, service, app) against a live in-process server."""
    app = ServerApp(service)
    with BackgroundServer(app) as background:
        client = DataspaceClient(background.server.host, background.server.port)
        try:
            yield client, service, app
        finally:
            client.close()
    app.close()


def load_addressbook(client):
    book_a, book_b = addressbook_documents()
    client.load("a", serialize(book_a))
    client.load("b", serialize(book_b))
    client.integrate("a", "b", "ab")


class TestEndpoints:
    def test_healthz(self, live):
        client, _, _ = live
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["documents"] == 0

    def test_load_list_delete(self, live):
        client, _, _ = live
        book_a, _ = addressbook_documents()
        assert client.load("a", serialize(book_a)) == {"stored": "a", "kind": "xml"}
        assert client.documents() == [{"name": "a", "kind": "xml"}]
        assert client.healthz()["documents"] == 1
        assert client.delete("a") == {"deleted": "a"}
        assert client.documents() == []

    def test_query_matches_in_process_exactly(self, live):
        client, service, _ = live
        load_addressbook(client)
        for query in QUERIES:
            over_http = client.query("ab", query)
            in_process = service.query("ab", query)
            assert shape(over_http) == shape(in_process)
            assert all(
                isinstance(item.probability, Fraction) for item in over_http
            )

    def test_batch_matches_serial_queries(self, live):
        client, _, _ = live
        load_addressbook(client)
        answers = client.batch("ab", QUERIES)
        assert len(answers) == len(QUERIES)
        for query, batched in zip(QUERIES, answers):
            assert shape(batched) == shape(client.query("ab", query))

    def test_integrate_reports(self, live):
        client, _, _ = live
        book_a, book_b = addressbook_documents()
        client.load("a", serialize(book_a))
        client.load("b", serialize(book_b))
        report = client.integrate("a", "b", "ab")
        assert report["world_count"] >= 1
        assert "nodes" in report["summary"]
        assert client.documents()[0] == {"name": "a", "kind": "xml"}
        assert {"name": "ab", "kind": "pxml"} in client.documents()

    def test_feedback_conditions_the_answer(self, live):
        client, _, _ = live
        load_addressbook(client)
        before = client.query("ab", "//person/tel")
        step = client.feedback("ab", "//person/tel", "1111", correct=True)
        assert step["kind"] == "confirm"
        assert isinstance(step["prior"], Fraction)
        assert step["prior"] == before.probability_of("1111")
        after = client.query("ab", "//person/tel")
        assert after.probability_of("1111") == Fraction(1)

    def test_document_stats(self, live):
        client, service, _ = live
        load_addressbook(client)
        stats = client.document_stats("ab")
        census = service.stats("ab")
        assert stats["world_count"] == census.world_count
        assert stats["total"] == census.total

    def test_pxml_round_trip_load(self, live):
        from repro.pxml.serialize import pxml_to_text

        client, service, _ = live
        load_addressbook(client)
        text = pxml_to_text(service._module.probabilistic("ab"))
        client.load("ab2", text, kind="pxml")
        assert shape(client.query("ab2", "//person/tel")) == shape(
            client.query("ab", "//person/tel")
        )

    def test_persistent_hits_over_http(self, live):
        client, _, _ = live
        load_addressbook(client)
        first = client.query("ab", "//person/tel")
        before = client.stats()
        second = client.query("ab", "//person/tel")
        after = client.stats()
        assert shape(first) == shape(second)
        assert after["persistent_hits"] == before["persistent_hits"] + 1

    def test_aggregate_matches_in_process_exactly(self, live):
        client, service, _ = live
        load_addressbook(client)
        for kind, target, text in [
            ("count", "person", None),
            ("sum", "tel", None),
            ("min", "tel", None),
            ("max", "tel", None),
            ("exists", "person", None),
            ("count", "nm", "John"),
        ]:
            over_http = client.aggregate("ab", kind, target, text=text)
            in_process = service.aggregate("ab", kind, target, text=text)
            assert over_http == in_process
            assert all(
                isinstance(p, Fraction) for p in over_http.values()
            )

    def test_aggregate_xpath_spelling_shares_the_cache_row(self, live):
        client, _, _ = live
        load_addressbook(client)
        client.aggregate("ab", "count", "person")
        before = client.stats()
        assert client.aggregate("ab", "count", "//person") == \
            client.aggregate("ab", "count", "person")
        after = client.stats()
        # Both spellings (and the repeat) were persistent hits on the
        # one row the first call stored.
        assert after["persistent_aggregate_stored"] == \
            before["persistent_aggregate_stored"]
        assert after["persistent_aggregate_hits"] >= \
            before["persistent_aggregate_hits"] + 2

    def test_aggregate_persistent_hits_over_http(self, live):
        client, _, _ = live
        load_addressbook(client)
        first = client.aggregate("ab", "sum", "tel")
        before = client.stats()
        second = client.aggregate("ab", "sum", "tel")
        after = client.stats()
        assert first == second
        assert after["persistent_aggregate_hits"] == \
            before["persistent_aggregate_hits"] + 1


class TestSearch:
    """POST /search: the dataspace-wide fan-out over the wire."""

    def test_fused_result_identical_to_in_process(self, live):
        client, service, _ = live
        load_addressbook(client)
        for kwargs in (
            {},
            {"strategy": "rrf"},
            {"strategy": "rrf", "k": 7},
            {"documents": ["a", "b"]},
            {"glob": "a*"},
            {"weights": {"ab": 3}},
            {"strategy": "rrf", "k": "15/2", "weights": {"a": "1/3"}},
        ):
            over_http = client.search("//person/tel", **kwargs)
            in_process = service.query_all(
                "//person/tel",
                names=kwargs.get("documents"),
                glob=kwargs.get("glob"),
                strategy=kwargs.get("strategy", "prob"),
                weights=kwargs.get("weights"),
                **(
                    {"rrf_k": kwargs["k"]} if "k" in kwargs else {}
                ),
            )
            # Dataclass equality: strategy, items (exact Fraction
            # scores), membership order, weights, provenance triples.
            assert over_http == in_process, kwargs

    def test_provenance_intact_over_the_wire(self, live):
        client, _, _ = live
        load_addressbook(client)
        fused = client.search("//person/tel")
        assert fused.documents == ("a", "ab", "b")
        assert sum(fused.weights.values()) == 1
        for item in fused.items:
            assert item.sources, item
            for source in item.sources:
                assert source.document in fused.documents
                assert source.rank >= 1
                assert isinstance(source.probability, Fraction)
                assert 0 < source.probability <= 1

    def test_unknown_strategy_is_400(self, live):
        client, _, _ = live
        load_addressbook(client)
        with pytest.raises(ServerError) as excinfo:
            client.search("//person/tel", strategy="borda")
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "QueryError"

    def test_empty_store_is_404(self, live):
        client, _, _ = live
        with pytest.raises(ServerError) as excinfo:
            client.search("//person/tel")
        assert excinfo.value.status == 404

    def test_unmatched_glob_is_404(self, live):
        client, _, _ = live
        load_addressbook(client)
        with pytest.raises(ServerError) as excinfo:
            client.search("//person/tel", glob="zzz*")
        assert excinfo.value.status == 404

    def test_documents_and_glob_together_is_400(self, live):
        client, _, _ = live
        load_addressbook(client)
        with pytest.raises(ServerError) as excinfo:
            client._request(
                "POST",
                "/search",
                {"xpath": "//x", "documents": ["a"], "glob": "a*"},
            )
        assert excinfo.value.status == 400

    def test_missing_xpath_is_400(self, live):
        client, _, _ = live
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/search", {"glob": "*"})
        assert excinfo.value.status == 400
        assert "xpath" in str(excinfo.value)

    @pytest.mark.parametrize(
        "payload",
        [
            {"xpath": "//x", "k": 2.5},
            {"xpath": "//x", "k": True},
            {"xpath": "//x", "strategy": "rrf", "k": "-1"},
            {"xpath": "//x", "weights": {"a": 0}},
            {"xpath": "//x", "weights": {"a": 1.5}},
            {"xpath": "//x", "weights": "heavy"},
            {"xpath": "//x", "documents": "a"},
            {"xpath": "//x", "strategy": 7},
        ],
    )
    def test_malformed_search_bodies_are_400(self, live, payload):
        client, _, _ = live
        load_addressbook(client)
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/search", payload)
        assert excinfo.value.status == 400


class TestErrors:
    def test_missing_document_is_404(self, live):
        client, _, _ = live
        with pytest.raises(ServerError) as excinfo:
            client.query("ghost", "//x")
        assert excinfo.value.status == 404

    def test_bad_xpath_is_400(self, live):
        client, _, _ = live
        load_addressbook(client)
        with pytest.raises(ServerError) as excinfo:
            client.query("ab", "//[broken")
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "XPathSyntaxError"

    def test_aggregate_unknown_kind_is_400(self, live):
        client, _, _ = live
        load_addressbook(client)
        with pytest.raises(ServerError) as excinfo:
            client.aggregate("ab", "median", "tel")
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "QueryError"

    def test_aggregate_missing_field_is_400(self, live):
        client, _, _ = live
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/aggregate", {"document": "ab", "kind": "count"})
        assert excinfo.value.status == 400
        assert "target" in str(excinfo.value)

    def test_aggregate_missing_document_is_404(self, live):
        client, _, _ = live
        with pytest.raises(ServerError) as excinfo:
            client.aggregate("ghost", "count", "person")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, live):
        client, _, _ = live
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, live):
        client, _, _ = live
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/documents/a")
        assert excinfo.value.status == 405

    def test_invalid_json_body_is_400(self, live):
        client, _, _ = live
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/query", raw_body=b"{not json")
        assert excinfo.value.status == 400

    def test_missing_field_is_400(self, live):
        client, _, _ = live
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/query", {"document": "ab"})
        assert excinfo.value.status == 400
        assert "xpath" in str(excinfo.value)

    def test_invalid_document_name_is_400(self, live):
        client, _, _ = live
        with pytest.raises(ServerError) as excinfo:
            client.load("bad/../name", "<r/>")
        assert excinfo.value.status in (400, 404)

    def test_error_does_not_kill_the_connection(self, live):
        client, _, _ = live
        load_addressbook(client)
        with pytest.raises(ServerError):
            client.query("ghost", "//x")
        # Same client, same keep-alive connection, next request fine.
        assert shape(client.query("ab", "//person/nm"))


class TestDeadlines:
    def test_generous_deadline_is_invisible(self, live):
        client, _, _ = live
        load_addressbook(client)
        plain = shape(client.query("ab", "//person/tel"))
        bounded = shape(
            client.query("ab", "//person/tel", deadline_ms=60_000)
        )
        assert bounded == plain

    @pytest.mark.parametrize("bad", [0, -5, "soon", 1.5, True])
    def test_bad_deadline_ms_is_400(self, live, bad):
        client, _, _ = live
        load_addressbook(client)
        with pytest.raises(ServerError) as excinfo:
            client._request(
                "POST",
                "/query",
                {"document": "ab", "xpath": "//person/tel",
                 "deadline_ms": bad},
            )
        assert excinfo.value.status == 400

    def test_allow_partial_must_be_boolean(self, live):
        client, _, _ = live
        load_addressbook(client)
        with pytest.raises(ServerError) as excinfo:
            client._request(
                "POST",
                "/search",
                {"xpath": "//person/tel", "allow_partial": "yes"},
            )
        assert excinfo.value.status == 400

    def test_blown_deadline_is_typed_504(self, live):
        from repro.errors import DeadlineExceededError

        client, service, _ = live
        load_addressbook(client)
        original = service.query

        def slow_query(name, plan, **kwargs):
            time.sleep(0.2)
            return original(name, plan, **kwargs)

        service.query = slow_query
        try:
            with pytest.raises(DeadlineExceededError):
                client.query("ab", "//person/tel", deadline_ms=50)
        finally:
            service.query = original
        # The 504 was a healthy HTTP exchange: the same keep-alive
        # connection keeps serving.
        assert shape(client.query("ab", "//person/tel"))


class _FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Stdlib upstream answering 503 (with Retry-After) until its
    budget runs out, then 200 — exercising the client's replay gate
    without needing to race a real server into overload."""

    failures_left = 0
    attempts = []

    def _respond(self):
        type(self).attempts.append(self.command)
        if type(self).failures_left > 0:
            type(self).failures_left -= 1
            body = b'{"error": {"type": "overloaded", "message": "shed"}}'
            self.send_response(503)
            self.send_header("Retry-After", "0")
        else:
            body = b'{"status": "ok", "documents": 0}'
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _respond
    do_POST = _respond

    def log_message(self, *args):
        pass


@pytest.fixture
def flaky_upstream():
    _FlakyHandler.failures_left = 0
    _FlakyHandler.attempts = []
    httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd.server_address
    finally:
        httpd.shutdown()
        thread.join()


class TestClient503Replay:
    def test_retry_503_replays_idempotent_requests(self, flaky_upstream):
        host, port = flaky_upstream
        _FlakyHandler.failures_left = 2
        with DataspaceClient(host, port, retry_503=2) as client:
            assert client.healthz()["status"] == "ok"
        assert _FlakyHandler.attempts == ["GET", "GET", "GET"]

    def test_retry_budget_exhausted_surfaces_the_503(self, flaky_upstream):
        host, port = flaky_upstream
        _FlakyHandler.failures_left = 5
        with DataspaceClient(host, port, retry_503=2) as client:
            with pytest.raises(ServerError) as excinfo:
                client.healthz()
        assert excinfo.value.status == 503
        assert _FlakyHandler.attempts == ["GET", "GET", "GET"]

    def test_post_is_never_replayed(self, flaky_upstream):
        host, port = flaky_upstream
        _FlakyHandler.failures_left = 5
        with DataspaceClient(host, port, retry_503=3) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("a", "//x")
        assert excinfo.value.status == 503
        assert _FlakyHandler.attempts == ["POST"]

    def test_retry_disabled_by_default(self, flaky_upstream):
        host, port = flaky_upstream
        _FlakyHandler.failures_left = 1
        with DataspaceClient(host, port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.healthz()
        assert excinfo.value.status == 503
        assert _FlakyHandler.attempts == ["GET"]

    def test_retry_delay_honors_and_caps_the_hint(self):
        from repro.server.client import RETRY_AFTER_CAP

        delay = DataspaceClient._retry_delay
        assert delay("2") == 2.0
        assert delay("0") == 0.0
        assert delay("9999") == RETRY_AFTER_CAP
        assert delay(None) == 0.1
        assert delay("soon") == 0.1
        assert delay("-3") == 0.0

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError):
            DataspaceClient("127.0.0.1", 1, retry_503=-1)


class TestProtocol:
    def test_pipelined_requests_answered_in_order(self, live):
        """Two requests written back-to-back before reading a byte come
        back in order on one connection — HTTP/1.1 pipelining."""
        client, _, _ = live
        load_addressbook(client)
        with socket.create_connection((client.host, client.port), timeout=30) as sock:
            request = (
                "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                "GET /documents HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            )
            sock.sendall(request.encode())
            blob = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                blob += chunk
        text = blob.decode()
        assert text.count("HTTP/1.1 200") == 2
        assert text.index('"status"') < text.index('"documents": [')

    def test_oversized_header_rejected(self, live):
        client, _, _ = live
        with socket.create_connection((client.host, client.port), timeout=30) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\nX-Big: " + b"a" * (80 * 1024))
            blob = sock.recv(65536)
        assert b"431" in blob.split(b"\r\n", 1)[0]

    def test_malformed_request_line_rejected(self, live):
        client, _, _ = live
        with socket.create_connection((client.host, client.port), timeout=30) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            blob = sock.recv(65536)
        assert b"400" in blob.split(b"\r\n", 1)[0]

    def test_silent_connection_reaped_by_idle_timeout(self, service):
        """A client that connects and sends nothing (or a header drip)
        cannot park a server task forever: the idle timeout closes it
        with a best-effort 408."""
        app = ServerApp(service)
        background = BackgroundServer(app)
        background.server.idle_timeout = 0.3
        with background:
            host, port = background.server.host, background.server.port
            with socket.create_connection((host, port), timeout=30) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\n")  # never finished
                sock.settimeout(10)
                blob = sock.recv(65536)
                assert b"408" in blob.split(b"\r\n", 1)[0]
                assert sock.recv(65536) == b""  # server closed the socket
        app.close()

    def test_duplicate_content_length_rejected(self, live):
        """Conflicting Content-Length headers are a request-smuggling
        vector (RFC 7230 §3.3.2): 400, never last-wins."""
        client, _, _ = live
        with socket.create_connection((client.host, client.port), timeout=30) as sock:
            sock.sendall(
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 10\r\nContent-Length: 0\r\n\r\n"
                b"0123456789"
            )
            blob = sock.recv(65536)
        assert b"400" in blob.split(b"\r\n", 1)[0]

    @pytest.mark.parametrize(
        "headers,status",
        [
            (b"Transfer-Encoding: chunked\r\n", b"501"),
            (b"Transfer-Encoding: gzip\r\n", b"501"),
            (b"Transfer-Encoding: chunked\r\nTransfer-Encoding: identity\r\n",
             b"400"),
        ],
    )
    def test_transfer_encoding_rejected(self, live, headers, status):
        """Any Transfer-Encoding is refused outright — an unread encoded
        body would desync the connection (smuggling vector)."""
        client, _, _ = live
        with socket.create_connection((client.host, client.port), timeout=30) as sock:
            sock.sendall(b"POST /query HTTP/1.1\r\nHost: x\r\n" + headers + b"\r\n")
            blob = sock.recv(65536)
        assert status in blob.split(b"\r\n", 1)[0]

    def test_idle_between_requests_closes_silently(self, service):
        """No 408 lands on a connection idle *between* requests — a
        keep-alive client would misread it as its next response."""
        app = ServerApp(service)
        background = BackgroundServer(app)
        background.server.idle_timeout = 0.3
        with background:
            host, port = background.server.host, background.server.port
            client = DataspaceClient(host, port)
            assert client.healthz()["status"] == "ok"
            time.sleep(1.0)  # idle past the timeout, zero bytes sent
            # The server closed silently; the client reconnects (GET is
            # safe to replay) and the request succeeds — no stale 408.
            assert client.healthz()["status"] == "ok"
            client.close()
        app.close()

    def test_duplicate_query_params_first_wins(self, live):
        client, service, _ = live
        book_a, _ = addressbook_documents()
        from repro.pxml.build import certain_document
        from repro.pxml.serialize import pxml_to_text

        text = pxml_to_text(certain_document(book_a))
        client._request(
            "PUT", "/documents/dup?kind=pxml&kind=xml", raw_body=text.encode()
        )
        assert {"name": "dup", "kind": "pxml"} in client.documents()


class TestStatsSurfacesAgree:
    def test_http_stats_is_the_service_dict(self, live):
        """GET /stats must serve exactly DataspaceService.cache_stats()
        — the shared code path with `imprecise serve --cache-stats` —
        plus the HTTP-front-only "http" metrics section."""
        client, service, _ = live
        load_addressbook(client)
        client.query("ab", "//person/tel")
        client.query("ab", "//person/tel")
        over_http = client.stats()
        in_process = service.cache_stats()
        assert "http" in over_http  # front-only section, not in cache_stats
        assert {k: v for k, v in over_http.items() if k != "http"} == in_process

    def test_cli_rendering_parses_back_to_the_same_counters(self, live):
        """format_cache_stats (what --cache-stats and the `cache-stats`
        protocol command print) renders the same dict GET /stats serves:
        parse the lines back and compare key for key."""
        client, service, _ = live
        load_addressbook(client)
        client.query("ab", "//person/nm")
        over_http = client.stats()
        rendered = format_cache_stats(service.cache_stats())
        parsed = {}
        for line in rendered.splitlines():
            key, _, value = line.partition(": ")
            parsed[key] = int(value.replace(",", ""))
        assert parsed == {k: v for k, v in over_http.items() if k != "http"}
        for counter in ("persistent_hits", "persistent_misses",
                        "persistent_evictions"):
            assert counter in parsed


def build_soak_schedules():
    """Deterministic per-thread op schedules.  Each thread owns its
    private output documents (so mutations cannot interact across
    threads) and also queries the shared immutable ``base`` document —
    mixed reads and writes, replayable serially."""
    schedules = []
    for thread in range(SOAK_THREADS):
        ops = []
        private = f"out{thread}"
        ops.append(("integrate", "a", "b", private))
        for index in range(SOAK_REQUESTS):
            kind = index % 4
            if kind == 0:
                ops.append(("query", "base", QUERIES[index % len(QUERIES)]))
            elif kind == 1:
                ops.append(("query", private, QUERIES[index % len(QUERIES)]))
            elif kind == 2:
                ops.append(("feedback", private, "//person/tel", "1111"))
            else:
                ops.append(("batch", "base", QUERIES))
        schedules.append(ops)
    return schedules


def run_schedule_http(client, ops):
    results = []
    for op in ops:
        if op[0] == "query":
            results.append(shape(client.query(op[1], op[2])))
        elif op[0] == "batch":
            results.append([shape(a) for a in client.batch(op[1], op[2])])
        elif op[0] == "feedback":
            step = client.feedback(op[1], op[2], op[3], correct=True)
            results.append((step["kind"], step["prior"], step["worlds_after"]))
        elif op[0] == "integrate":
            report = client.integrate(op[1], op[2], op[3])
            results.append((report["total_nodes"], report["world_count"]))
    return results


def run_schedule_serial(service, ops):
    from repro.experiments import standard_rules

    results = []
    for op in ops:
        if op[0] == "query":
            results.append(shape(service.query(op[1], op[2])))
        elif op[0] == "batch":
            results.append([shape(a) for a in service.run_batch(op[1], op[2])])
        elif op[0] == "feedback":
            step = service.feedback(op[1], op[2], op[3], correct=True)
            results.append((step.kind, step.prior, step.worlds_after))
        elif op[0] == "integrate":
            report = service.integrate(
                op[1], op[2], op[3], rules=standard_rules()
            )
            results.append((report.total_nodes, report.world_count))
    return results


def populate_soak(service):
    book_a, book_b = addressbook_documents()
    service.load_document("a", book_a)
    service.load_document("b", book_b)
    from repro.experiments import standard_rules

    service.integrate("a", "b", "base", rules=standard_rules())


class TestConcurrencySoak:
    def test_soak_matches_serial_and_terminates(self, tmp_path):
        """Acceptance: N threads × M mixed requests against one live
        server are Fraction-identical to a serial in-process replay and
        finish within the timeout (deadlock guard)."""
        schedules = build_soak_schedules()

        # Serial reference over its own store (no server involved).
        with DataspaceService(
            directory=tmp_path / "serial-store", cache_dir=tmp_path / "serial-cache"
        ) as serial_service:
            populate_soak(serial_service)
            expected = [
                run_schedule_serial(serial_service, ops) for ops in schedules
            ]

        # Live server over a separate, identically-populated store.
        with DataspaceService(
            directory=tmp_path / "store", cache_dir=tmp_path / "cache"
        ) as service:
            populate_soak(service)
            app = ServerApp(service)
            with BackgroundServer(app) as background:
                host, port = background.server.host, background.server.port

                def worker(ops):
                    # One client (one connection) per thread.
                    with DataspaceClient(host, port, timeout=SOAK_TIMEOUT) as client:
                        return run_schedule_http(client, ops)

                start = time.monotonic()
                with ThreadPoolExecutor(max_workers=SOAK_THREADS) as pool:
                    futures = [pool.submit(worker, ops) for ops in schedules]
                    actual = [
                        future.result(timeout=SOAK_TIMEOUT) for future in futures
                    ]
                elapsed = time.monotonic() - start
            app.close()

        assert elapsed < SOAK_TIMEOUT
        assert actual == expected


class ServerProcess:
    """An ``imprecise serve --http`` subprocess bound to an ephemeral
    port (parsed from its startup line)."""

    def __init__(self, store: Path, cache: Path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(store),
                "--cache-dir", str(cache), "--http", "127.0.0.1:0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        line = self.proc.stdout.readline().strip()
        assert line.startswith("serving on http://"), (
            line or self.proc.stderr.read()
        )
        self.port = int(line.rsplit(":", 1)[1])

    def stop(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.communicate()
            raise
        return self.proc.returncode

    def __enter__(self) -> "ServerProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.proc.poll() is None:
            self.stop()


class TestSequentialServerProcesses:
    def test_second_process_serves_warm_fraction_identical(self, tmp_path):
        """The PR's acceptance end-to-end, entirely over HTTP: process
        one integrates and prices a workload; process two (same
        --cache-dir) serves the identical Fractions with persistent
        hits > 0 and no engine ever built."""
        store, cache = tmp_path / "store", tmp_path / "cache"
        book_a, book_b = addressbook_documents()

        aggregates = [("count", "person"), ("sum", "tel"), ("min", "tel")]

        with ServerProcess(store, cache) as first:
            client = DataspaceClient("127.0.0.1", first.port)
            client.load("a", serialize(book_a))
            client.load("b", serialize(book_b))
            client.integrate("a", "b", "ab")
            cold = {query: shape(client.query("ab", query)) for query in QUERIES}
            cold_aggregates = {
                spec: sorted(
                    client.aggregate("ab", *spec).items(),
                    key=lambda item: (item[0] is not None, item[0] or 0),
                )
                for spec in aggregates
            }
            cold_stats = client.stats()
            client.close()
            assert first.stop() == 0
        assert cold_stats["persistent_stored"] == len(QUERIES)
        assert cold_stats["persistent_aggregate_stored"] == len(aggregates)

        with ServerProcess(store, cache) as second:
            client = DataspaceClient("127.0.0.1", second.port)
            warm = {query: shape(client.query("ab", query)) for query in QUERIES}
            warm_aggregates = {
                spec: sorted(
                    client.aggregate("ab", *spec).items(),
                    key=lambda item: (item[0] is not None, item[0] or 0),
                )
                for spec in aggregates
            }
            warm_stats = client.stats()
            client.close()
            assert second.stop() == 0

        assert warm == cold  # Fraction-identical across processes
        assert warm_aggregates == cold_aggregates
        assert warm_stats["persistent_hits"] >= len(QUERIES)
        assert warm_stats["persistent_stored"] == 0
        assert warm_stats["persistent_aggregate_hits"] >= len(aggregates)
        assert warm_stats["persistent_aggregate_stored"] == 0
        assert warm_stats["engines"] == 0  # answers came straight from disk

    def test_graceful_shutdown_exits_zero(self, tmp_path):
        with ServerProcess(tmp_path / "store", tmp_path / "cache") as server:
            client = DataspaceClient("127.0.0.1", server.port)
            assert client.healthz()["status"] == "ok"
            client.close()
            assert server.stop() == 0
