"""Differential harness for rank fusion (`repro.query.fusion`).

Pins both fusion strategies Fraction-identical to naive reference
implementations over the concatenated per-document answer sets —
``prob`` against brute-force probability-mass accumulation, ``rrf``
against the literal reciprocal-rank formula — plus the fusion
invariants: permutation invariance across document order, monotonicity
in source weight, single-document fan-out ≡ plain ``query``.  The
service-level sweep drives :meth:`DataspaceService.query_all` over
seeded random documents in raw, simplified, and feedback-conditioned
states, with per-document answers cross-checked against the
world-enumeration reference backend.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, seed, settings
from hypothesis import strategies as st

from repro.dbms.service import DataspaceService
from repro.errors import MissingDocumentError, QueryError
from repro.feedback.conditioning import condition_on_event
from repro.probability import ONE, ZERO
from repro.pxml.build import certain_prob, choice_prob
from repro.pxml.events import lit
from repro.pxml.model import PXDocument, PXElement, PXText
from repro.pxml.simplify import simplify
from repro.pxml.worlds import world_count
from repro.query.engine import query_enumeration
from repro.query.fusion import (
    DEFAULT_RRF_K,
    FUSION_STRATEGIES,
    fuse_aggregates,
    fuse_answers,
    fusion_weights,
)
from repro.query.aggregates import aggregate_distribution_enumerated
from repro.query.ranking import RankedAnswer, RankedItem

WORLD_LIMIT = 300

VALUES = ("ada", "bob", "cyd", "dee", "eli", "fay")
DOCUMENTS = ("alpha", "beta", "gamma", "delta")


# -- naive references ---------------------------------------------------------


def reference_prob(answers, weights):
    """Brute force over the concatenated per-document answer sets:
    accumulate each document's exact probability mass under its weight."""
    scores = {}
    for name, answer in answers.items():
        for item in answer.items:
            scores[item.value] = (
                scores.get(item.value, ZERO) + weights[name] * item.probability
            )
    return scores


def reference_rrf(answers, weights, k):
    """The reciprocal-rank formula, literally: w_d / (k + rank_d(v))."""
    scores = {}
    for name, answer in answers.items():
        for rank, item in enumerate(answer.items, start=1):
            scores[item.value] = scores.get(item.value, ZERO) + weights[
                name
            ] / (Fraction(k) + rank)
    return scores


def reference_order(scores):
    """Expected fused order: descending score, ties broken by value."""
    return sorted(scores, key=lambda value: (-scores[value], value))


def assert_matches_reference(fused, answers, weights, *, strategy, k=DEFAULT_RRF_K):
    expected = (
        reference_prob(answers, weights)
        if strategy == "prob"
        else reference_rrf(answers, weights, k)
    )
    assert fused.values() == reference_order(expected)
    for item in fused.items:
        assert item.score == expected[item.value], (strategy, item)
    # Provenance: exactly the contributing documents, in sorted order,
    # with the value's true local rank and exact local probability.
    for item in fused.items:
        expected_sources = sorted(
            name for name in answers if item.value in answers[name].values()
        )
        assert [s.document for s in item.sources] == expected_sources
        for source in item.sources:
            local = answers[source.document]
            assert local.values()[source.rank - 1] == item.value
            assert source.probability == local.probability_of(item.value)


# -- synthetic answer generators ----------------------------------------------


@st.composite
def ranked_answers(draw):
    count = draw(st.integers(min_value=0, max_value=len(VALUES)))
    values = draw(
        st.lists(
            st.sampled_from(VALUES), min_size=count, max_size=count, unique=True
        )
    )
    items = [
        RankedItem(
            value,
            Fraction(
                draw(st.integers(min_value=1, max_value=8)),
                draw(st.integers(min_value=8, max_value=16)),
            ),
        )
        for value in values
    ]
    return RankedAnswer(items)


@st.composite
def fanouts(draw, min_documents=1):
    names = draw(
        st.lists(
            st.sampled_from(DOCUMENTS),
            min_size=min_documents,
            max_size=len(DOCUMENTS),
            unique=True,
        )
    )
    return {name: draw(ranked_answers()) for name in names}


@st.composite
def sparse_weights(draw, names):
    chosen = draw(st.lists(st.sampled_from(names), max_size=len(names), unique=True))
    return {
        name: Fraction(
            draw(st.integers(min_value=1, max_value=5)),
            draw(st.integers(min_value=1, max_value=3)),
        )
        for name in chosen
    }


# -- property tests: strategies vs references ---------------------------------


class TestAgainstReference:
    @given(fanouts())
    @settings(max_examples=120, deadline=None)
    @seed(20260801)
    def test_prob_matches_brute_force(self, answers):
        fused = fuse_answers(answers, strategy="prob")
        weights = fusion_weights(sorted(answers))
        assert_matches_reference(fused, answers, weights, strategy="prob")
        # prob scores are genuine probabilities.
        assert all(ZERO < item.score <= ONE for item in fused.items)

    @given(fanouts(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=120, deadline=None)
    @seed(20260802)
    def test_rrf_matches_naive(self, answers, k):
        fused = fuse_answers(answers, strategy="rrf", rrf_k=k)
        weights = fusion_weights(sorted(answers))
        assert_matches_reference(fused, answers, weights, strategy="rrf", k=k)
        assert fused.rrf_k == Fraction(k)

    @given(fanouts(min_documents=2))
    @settings(max_examples=80, deadline=None)
    @seed(20260803)
    def test_weighted_prob_matches_brute_force(self, answers):
        names = sorted(answers)
        raw = {names[0]: Fraction(3), names[-1]: Fraction(1, 2)}
        weights = fusion_weights(names, raw)
        assert sum(weights.values()) == ONE
        fused = fuse_answers(answers, weights=raw)
        assert_matches_reference(fused, answers, weights, strategy="prob")


class TestInvariants:
    @given(fanouts(min_documents=2), st.randoms(use_true_random=False))
    @settings(
        max_examples=80,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @seed(20260804)
    def test_permutation_invariance(self, answers, rng):
        """Fusing the same answers in any insertion order is identical —
        items, scores, provenance, membership order."""
        names = list(answers)
        rng.shuffle(names)
        shuffled = {name: answers[name] for name in names}
        for strategy in FUSION_STRATEGIES:
            assert fuse_answers(shuffled, strategy=strategy) == fuse_answers(
                answers, strategy=strategy
            )

    @given(fanouts(min_documents=2))
    @settings(max_examples=80, deadline=None)
    @seed(20260805)
    def test_weight_monotonicity(self, answers):
        """Raising one document's weight strictly raises the fused score
        of every value only that document contributes (and of no value
        the document does not contribute)."""
        names = sorted(answers)
        boosted = names[0]
        only_here = [
            item.value
            for item in answers[boosted].items
            if not any(
                item.value in answers[other].values()
                for other in names
                if other != boosted
            )
        ]
        low = fuse_answers(answers, weights={boosted: Fraction(1, 2)})
        high = fuse_answers(answers, weights={boosted: Fraction(4)})
        for value in only_here:
            assert high.score_of(value) > low.score_of(value)
        for name in names:
            for item in answers[name].items:
                if name != boosted and item.value not in answers[boosted].values():
                    assert high.score_of(item.value) < low.score_of(item.value)

    @given(ranked_answers())
    @settings(max_examples=80, deadline=None)
    @seed(20260806)
    def test_single_document_prob_equals_plain_query(self, answer):
        """A one-document ``prob`` fan-out *is* the plain query: weight
        normalizes to 1, so fused scores equal the local probabilities
        and the order is the RankedAnswer's own."""
        fused = fuse_answers({"solo": answer})
        assert fused.values() == answer.values()
        for item in fused.items:
            assert item.score == answer.probability_of(item.value)
            assert item.sources == fused.sources_of(item.value)
            (source,) = item.sources
            assert source.document == "solo"

    @given(ranked_answers())
    @settings(max_examples=40, deadline=None)
    @seed(20260807)
    def test_single_document_rrf_preserves_order(self, answer):
        fused = fuse_answers({"solo": answer}, strategy="rrf")
        assert fused.values() == answer.values()


class TestValidation:
    def test_unknown_strategy(self):
        with pytest.raises(QueryError, match="unknown fusion strategy"):
            fuse_answers({"a": RankedAnswer()}, strategy="borda")

    def test_empty_fanout(self):
        with pytest.raises(QueryError, match="empty document selection"):
            fuse_answers({})

    def test_unknown_weight_name(self):
        with pytest.raises(QueryError, match="outside the fan-out"):
            fuse_answers({"a": RankedAnswer()}, weights={"typo": 1})

    @pytest.mark.parametrize("bad", [0, -1, "0/3", True, "x", None])
    def test_bad_weight(self, bad):
        with pytest.raises(QueryError):
            fuse_answers({"a": RankedAnswer()}, weights={"a": bad})

    @pytest.mark.parametrize("bad", [-1, "-1/2", "x", None, True, 2.5])
    def test_bad_rrf_k(self, bad):
        with pytest.raises(QueryError):
            fuse_answers({"a": RankedAnswer()}, strategy="rrf", rrf_k=bad)

    def test_rational_rrf_k_accepted(self):
        answer = RankedAnswer([RankedItem("v", Fraction(1, 2))])
        fused = fuse_answers({"a": answer}, strategy="rrf", rrf_k="121/2")
        assert fused.score_of("v") == Fraction(1, Fraction(121, 2) + 1)

    def test_weights_ignored_names_rejected_for_aggregates(self):
        with pytest.raises(QueryError, match="outside the fan-out"):
            fuse_aggregates({"a": {1: ONE}}, weights={"b": 1})


class TestAggregateMixture:
    def test_mixture_is_weighted_sum(self):
        mixed = fuse_aggregates(
            {
                "a": {1: Fraction(1, 2), 2: Fraction(1, 2)},
                "b": {2: Fraction(1, 3), None: Fraction(2, 3)},
            },
            weights={"a": 3},
        )
        assert mixed == {
            None: Fraction(1, 4) * Fraction(2, 3),
            1: Fraction(3, 4) * Fraction(1, 2),
            2: Fraction(3, 4) * Fraction(1, 2) + Fraction(1, 4) * Fraction(1, 3),
        }
        # Pinned key order: None first, then ascending.
        assert list(mixed) == [None, 1, 2]
        assert sum(mixed.values()) == ONE


# -- service-level sweep: real documents, all three states --------------------


def random_document(rng):
    """A small random probabilistic document over <m> value leaves:
    certain and choice-valued leaves, some optional (structural
    uncertainty), so per-document answers genuinely differ."""
    children = []
    for _ in range(rng.randint(1, 3)):
        if rng.random() < 0.3:
            value = rng.choice(VALUES)
            leaf = PXElement("m", children=[certain_prob(PXText(value))])
        else:
            values = rng.sample(VALUES, rng.randint(1, 3))
            weights = [rng.randint(1, 3) for _ in values]
            total = sum(weights)
            leaf = PXElement(
                "m",
                children=[
                    choice_prob(
                        [
                            (Fraction(w, total), [PXText(v)])
                            for w, v in zip(weights, values)
                        ]
                    )
                ],
            )
        if rng.random() < 0.3:
            # Optional element: present in half the worlds.
            children.append(
                choice_prob([(Fraction(1, 2), [leaf]), (Fraction(1, 2), [])])
            )
        else:
            children.append(certain_prob(leaf))
    return PXDocument(certain_prob(PXElement("r", children=children)))


def first_choice_event(document):
    for node in document.iter_prob_nodes():
        if len(node.possibilities) >= 2:
            return lit(node, 0)
    return None


def apply_state(document, state):
    if state == "simplify":
        simplified, _ = simplify(document)
        return simplified
    if state == "condition":
        event = first_choice_event(document)
        return document if event is None else condition_on_event(document, event)
    return document


class TestServiceSweep:
    """`query_all` over K stored documents is Fraction-identical to the
    reference fusion of per-document *enumeration* answers — both
    strategies, raw/simplified/feedback-conditioned documents."""

    @pytest.mark.parametrize("state", ["raw", "simplify", "condition"])
    def test_query_all_matches_enumeration_reference(self, state):
        rng = random.Random(0xF05E + len(state))
        for round_index in range(6):
            documents = {}
            for index in range(rng.randint(2, 4)):
                doc = apply_state(random_document(rng), state)
                if world_count(doc) > WORLD_LIMIT:
                    continue
                documents[f"doc{index}"] = doc
            if not documents:
                continue
            with DataspaceService() as service:
                for name, doc in documents.items():
                    service.load_document(name, doc)
                answers = {
                    name: query_enumeration(doc, "//m")
                    for name, doc in documents.items()
                }
                weights = fusion_weights(sorted(documents))
                fused_prob = service.query_all("//m")
                assert_matches_reference(
                    fused_prob, answers, weights, strategy="prob"
                )
                fused_rrf = service.query_all("//m", strategy="rrf", rrf_k=7)
                assert_matches_reference(
                    fused_rrf, answers, weights, strategy="rrf", k=7
                )
                assert fused_prob.documents == tuple(sorted(documents))

    def test_query_all_single_document_equals_plain_query(self):
        rng = random.Random(0x51)
        with DataspaceService() as service:
            doc = random_document(rng)
            service.load_document("only", doc)
            plain = service.query("only", "//m")
            fused = service.query_all("//m", names=["only"])
            assert fused.values() == plain.values()
            for item in fused.items:
                assert item.score == plain.probability_of(item.value)

    def test_query_all_weighted_and_globbed(self):
        rng = random.Random(0x9B)
        with DataspaceService() as service:
            for name in ("pair.a", "pair.b", "other"):
                service.load_document(name, random_document(rng))
            fused = service.query_all(
                "//m", glob="pair.*", weights={"pair.a": 3}
            )
            assert fused.documents == ("pair.a", "pair.b")
            assert fused.weights == {
                "pair.a": Fraction(3, 4),
                "pair.b": Fraction(1, 4),
            }
            answers = {
                name: service.query(name, "//m") for name in fused.documents
            }
            assert_matches_reference(
                fused, answers, fused.weights, strategy="prob"
            )

    def test_aggregate_all_matches_enumerated_mixture(self):
        rng = random.Random(0xA66)
        with DataspaceService() as service:
            documents = {}
            for index in range(3):
                doc = random_document(rng)
                documents[f"doc{index}"] = doc
                service.load_document(f"doc{index}", doc)
            mixed = service.aggregate_all("count", "m")
            reference = fuse_aggregates(
                {
                    name: aggregate_distribution_enumerated(doc, "count", "m")
                    for name, doc in documents.items()
                }
            )
            assert mixed == reference
            assert sum(mixed.values()) == ONE

    def test_empty_selection_raises(self):
        with DataspaceService() as service:
            with pytest.raises(MissingDocumentError):
                service.query_all("//m")
            service.load("a", "<r><m>1</m></r>")
            with pytest.raises(MissingDocumentError):
                service.query_all("//m", glob="zzz*")
            with pytest.raises(MissingDocumentError):
                service.query_all("//m", names=["missing"])

    def test_names_and_glob_are_exclusive(self):
        with DataspaceService() as service:
            service.load("a", "<r><m>1</m></r>")
            with pytest.raises(Exception, match="not both"):
                service.query_all("//m", names=["a"], glob="a*")
