"""Tests for ranked-answer construction."""

from fractions import Fraction

from repro.query.ranking import RankedAnswer, RankedItem, merge_ranked


def item(value, probability, occurrences=1):
    return RankedItem(value, Fraction(probability), occurrences)


class TestRankedAnswer:
    def test_sorted_by_probability_desc(self):
        answer = RankedAnswer([item("low", "1/4"), item("high", "3/4")])
        assert answer.values() == ["high", "low"]

    def test_ties_broken_by_value(self):
        answer = RankedAnswer([item("b", "1/2"), item("a", "1/2")])
        assert answer.values() == ["a", "b"]

    def test_probability_of(self):
        answer = RankedAnswer([item("x", "1/3")])
        assert answer.probability_of("x") == Fraction(1, 3)
        assert answer.probability_of("missing") == 0

    def test_top(self):
        answer = RankedAnswer([item("a", "1/2"), item("b", "1/3"), item("c", "1/6")])
        assert [i.value for i in answer.top(2)] == ["a", "b"]

    def test_above_threshold(self):
        answer = RankedAnswer([item("a", "9/10"), item("b", "1/10")])
        assert [i.value for i in answer.above(0.5)] == ["a"]

    def test_above_float_threshold_means_decimal(self):
        # Regression: a float threshold is coerced through
        # as_probability, so 0.3 means the decimal 3/10 — not the binary
        # float 0.2999…9889 it parses to.  This probability sits between
        # the two readings: the old float comparison kept it, the
        # decimal reading must drop it.
        between = Fraction(299999999999999999, 10**18)
        assert Fraction(0.3) < between < Fraction(3, 10)
        answer = RankedAnswer([RankedItem("gap", between), item("sure", "9/10")])
        assert [i.value for i in answer.above(0.3)] == ["sure"]
        assert [i.value for i in answer.above(Fraction(3, 10))] == ["sure"]

    def test_as_table_paper_format(self):
        answer = RankedAnswer([
            item("Die Hard: With a Vengeance", 1),
            item("Mission: Impossible II", "96/100"),
            item("Mission: Impossible", "21/100"),
        ])
        table = answer.as_table()
        assert table.splitlines()[0] == "100% Die Hard: With a Vengeance"
        assert " 96% Mission: Impossible II" in table
        assert " 21% Mission: Impossible" in table

    def test_empty_answer_table(self):
        assert RankedAnswer([]).as_table() == "(empty answer)"

    def test_len_and_iter(self):
        answer = RankedAnswer([item("a", "1/2"), item("b", "1/2")])
        assert len(answer) == 2
        assert [i.value for i in answer] == ["a", "b"]


class TestMergeRanked:
    def test_sums_same_value(self):
        merged = merge_ranked([item("x", "1/4"), item("x", "1/4"), item("y", "1/8")])
        assert merged.probability_of("x") == Fraction(1, 2)
        assert merged.probability_of("y") == Fraction(1, 8)

    def test_occurrences_accumulate(self):
        merged = merge_ranked([item("x", "1/4", 2), item("x", "1/4", 3)])
        assert merged.items[0].occurrences == 5

    def test_empty(self):
        assert len(merge_ranked([])) == 0
