"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.XMLParseError,
    errors.DTDError,
    errors.DTDViolation,
    errors.XPathSyntaxError,
    errors.XPathEvaluationError,
    errors.ModelError,
    errors.ProbabilityError,
    errors.IntegrationError,
    errors.IntegrationConflict,
    errors.ExplosionError,
    errors.QueryError,
    errors.FeedbackError,
    errors.StoreError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_all_derive_from_imprecise_error(self, error_type):
        assert issubclass(error_type, errors.ImpreciseError)

    def test_integration_subtypes(self):
        assert issubclass(errors.IntegrationConflict, errors.IntegrationError)
        assert issubclass(errors.ExplosionError, errors.IntegrationError)

    def test_single_catch_covers_library(self):
        with pytest.raises(errors.ImpreciseError):
            raise errors.QueryError("boom")


class TestPayloads:
    def test_parse_error_location(self):
        error = errors.XMLParseError("bad", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_parse_error_without_location(self):
        assert str(errors.XMLParseError("bad")) == "bad"

    def test_xpath_error_position(self):
        error = errors.XPathSyntaxError("bad", position=4, text="//a[")
        assert "offset 4" in str(error)

    def test_explosion_estimate(self):
        error = errors.ExplosionError("too big", estimated=12345)
        assert error.estimated == 12345
