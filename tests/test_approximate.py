"""Tests for Monte-Carlo approximate querying."""

import pytest

from repro.core.engine import integrate
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.errors import QueryError
from repro.query.approximate import approximate_query
from repro.query.engine import ProbQueryEngine


@pytest.fixture(scope="module")
def figure2_document():
    book_a, book_b = addressbook_documents()
    return integrate(book_a, book_b,
                     rules=[DeepEqualRule(), LeafValueRule()],
                     dtd=ADDRESSBOOK_DTD).document


class TestApproximateQuery:
    def test_deterministic_under_seed(self, figure2_document):
        first = approximate_query(figure2_document, "//person/tel",
                                  samples=200, seed=1)
        second = approximate_query(figure2_document, "//person/tel",
                                   samples=200, seed=1)
        assert [(i.value, i.hits) for i in first.items] == [
            (i.value, i.hits) for i in second.items
        ]

    def test_estimates_close_to_exact(self, figure2_document):
        exact = ProbQueryEngine(figure2_document).query("//person/tel")
        approx = approximate_query(figure2_document, "//person/tel",
                                   samples=3000, seed=7)
        for item in exact:
            estimate = approx.estimate_of(item.value)
            assert abs(estimate - float(item.probability)) < 0.05

    def test_error_bars_shrink_with_samples(self, figure2_document):
        small = approximate_query(figure2_document, "//person/tel",
                                  samples=100, seed=3)
        large = approximate_query(figure2_document, "//person/tel",
                                  samples=5000, seed=3)
        assert large.items[0].standard_error < small.items[0].standard_error

    def test_as_ranked_bridges_to_quality(self, figure2_document):
        from repro.query.quality import answer_quality
        approx = approximate_query(figure2_document, "//person/tel",
                                   samples=500, seed=5)
        quality = answer_quality(approx.as_ranked(), {"1111", "2222"})
        assert float(quality.recall) > 0.5

    def test_table_rendering(self, figure2_document):
        approx = approximate_query(figure2_document, "//person/tel",
                                   samples=50, seed=2)
        assert "%" in approx.as_table()

    def test_invalid_samples_rejected(self, figure2_document):
        with pytest.raises(QueryError):
            approximate_query(figure2_document, "//person/tel", samples=0)

    def test_value_queries_rejected(self, figure2_document):
        with pytest.raises(QueryError):
            approximate_query(figure2_document, "count(//person)", samples=10)
