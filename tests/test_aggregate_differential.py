"""Differential harness: every aggregate pushdown is Fraction-identical
to per-world enumeration.

The bottom-up convolution (:func:`repro.query.aggregates.
aggregate_distribution`) and the per-world definition
(:func:`~repro.query.aggregates.aggregate_distribution_enumerated`) are
independent implementations of the same semantics; this suite pins them
against each other over seeded random documents — raw, after
``simplify()``, and after ``condition_on_event()`` — for every kind in
the family (count/sum/min/max/exists, filtered and unfiltered).
"""

import random
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, seed, settings
from hypothesis import strategies as st

from repro.probability import ONE
from repro.pxml.build import certain_prob, choice_prob
from repro.pxml.events import lit
from repro.pxml.model import PXDocument, PXElement, PXText, Possibility, ProbNode
from repro.pxml.simplify import simplify
from repro.pxml.worlds import world_count
from repro.feedback.conditioning import condition_on_event
from repro.query.aggregates import (
    AGGREGATE_KINDS,
    aggregate_distribution,
    aggregate_distribution_enumerated,
    compile_aggregate,
)

#: Exact numeric leaf values — integers, a ratio, decimals, a negative.
NUMERIC_VALUES = ("0", "1", "2", "3", "5", "-1", "2.5", "7/2")

#: Enumeration guard: documents beyond this many worlds are skipped
#: (the convolution handles them fine; the reference cannot).
WORLD_LIMIT = 400

#: The differential matrix: every kind, with and without the
#: predicate filter.
CASES = [(kind, None) for kind in AGGREGATE_KINDS] + [
    (kind, "2") for kind in AGGREGATE_KINDS
]


@st.composite
def numeric_leaves(draw, tag="m"):
    """A numeric leaf element: no children, or one value-choice node."""
    if draw(st.booleans()):
        value = draw(st.sampled_from(NUMERIC_VALUES))
        return PXElement(tag, children=[certain_prob(PXText(value))])
    count = draw(st.integers(min_value=1, max_value=3))
    values = draw(
        st.lists(
            st.sampled_from(NUMERIC_VALUES),
            min_size=count,
            max_size=count,
        )
    )
    weights = [draw(st.integers(min_value=1, max_value=3)) for _ in values]
    total = sum(weights)
    return PXElement(
        tag,
        children=[
            choice_prob(
                [(Fraction(w, total), [v]) for w, v in zip(weights, values)]
            )
        ],
    )


@st.composite
def item_probs(draw, depth):
    """A probability node whose possibilities hold 0-2 items: numeric
    leaves <m>, or (above depth 0) wrapper elements <w> holding more."""
    branch = draw(st.integers(min_value=1, max_value=3))
    weights = [draw(st.integers(min_value=1, max_value=3)) for _ in range(branch)]
    total = sum(weights)
    node = ProbNode()
    for weight in weights:
        children = []
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            if depth > 0 and draw(st.booleans()):
                children.append(
                    PXElement("w", children=[draw(item_probs(depth=depth - 1))])
                )
            else:
                children.append(draw(numeric_leaves()))
        node.append(Possibility(Fraction(weight, total), children))
    return node


@st.composite
def numeric_documents(draw, max_depth=2):
    """A valid probabilistic document whose <m> elements are numeric
    leaves — the fragment where every aggregate pushdown applies."""
    root = PXElement(
        "r",
        children=[
            draw(item_probs(depth=max_depth))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ],
    )
    return PXDocument(certain_prob(root))


def assert_differential(document):
    """The harness core: pushdown == enumeration for the whole matrix,
    and every distribution is a probability distribution."""
    for kind, text in CASES:
        pushed = aggregate_distribution(document, kind, "m", text=text)
        enumerated = aggregate_distribution_enumerated(
            document, kind, "m", text=text
        )
        assert pushed == enumerated, (kind, text, pushed, enumerated)
        assert sum(pushed.values()) == ONE
        # Key-identical too, not merely ==: canonical key types and order.
        assert [(k, type(k)) for k in pushed] == [
            (k, type(k)) for k in enumerated
        ]


def first_choice_event(document):
    """A literal event over the document's first real choice point, or
    None when the document is certain."""
    for node in document.iter_prob_nodes():
        if len(node.possibilities) >= 2:
            return lit(node, 0)
    return None


class TestDifferential:
    @given(numeric_documents())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    @seed(20260729)
    def test_pushdown_matches_enumeration(self, doc):
        if world_count(doc) > WORLD_LIMIT:
            return
        assert_differential(doc)

    @given(numeric_documents())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    @seed(20260730)
    def test_agreement_survives_simplify(self, doc):
        if world_count(doc) > WORLD_LIMIT:
            return
        simplified, _ = simplify(doc)
        assert_differential(simplified)
        # And simplify preserved the aggregate semantics themselves.
        for kind in ("count", "sum", "min"):
            assert aggregate_distribution(
                simplified, kind, "m"
            ) == aggregate_distribution(doc, kind, "m")

    @given(numeric_documents())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    @seed(20260731)
    def test_agreement_survives_conditioning(self, doc):
        if world_count(doc) > WORLD_LIMIT:
            return
        event = first_choice_event(doc)
        if event is None:
            return
        posterior = condition_on_event(doc, event)
        assert_differential(posterior)

    def test_seeded_random_sweep(self):
        """A plain seeded-random sweep (no hypothesis shrinking in the
        loop): 40 documents through the full matrix."""
        rng = random.Random(5)

        def leaf():
            values = rng.sample(NUMERIC_VALUES, rng.randint(1, 3))
            weights = [rng.randint(1, 3) for _ in values]
            total = sum(weights)
            return PXElement("m", children=[
                choice_prob([
                    (Fraction(w, total), [v]) for w, v in zip(weights, values)
                ])
            ])

        def prob(depth):
            branch = rng.randint(1, 3)
            weights = [rng.randint(1, 3) for _ in range(branch)]
            total = sum(weights)
            node = ProbNode()
            for weight in weights:
                children = []
                for _ in range(rng.randint(0, 2)):
                    if depth > 0 and rng.random() < 0.4:
                        children.append(
                            PXElement("w", children=[prob(depth - 1)])
                        )
                    else:
                        children.append(leaf())
                node.append(Possibility(Fraction(weight, total), children))
            return node

        checked = 0
        for _ in range(40):
            doc = PXDocument(certain_prob(
                PXElement("r", children=[prob(2) for _ in range(rng.randint(1, 3))])
            ))
            if world_count(doc) > WORLD_LIMIT:
                continue
            assert_differential(doc)
            checked += 1
        assert checked >= 20  # the sweep actually exercised documents


class TestSpecIdentity:
    def test_spellings_share_one_identity(self):
        for kind in AGGREGATE_KINDS:
            bare = compile_aggregate(kind, "m")
            xpath = compile_aggregate(kind, "//m")
            assert bare.fingerprint == xpath.fingerprint
            assert bare.digest == xpath.digest

    def test_filtered_spellings_converge(self):
        by_kw = compile_aggregate("count", "m", text="2")
        by_predicate = compile_aggregate("count", '//m[. = "2"]')
        assert by_kw.digest == by_predicate.digest

    def test_distinct_aggregates_distinct_digests(self):
        digests = {
            compile_aggregate(kind, tag, text=text).digest
            for kind in AGGREGATE_KINDS
            for tag in ("m", "w")
            for text in (None, "2")
        }
        assert len(digests) == len(AGGREGATE_KINDS) * 2 * 2
