"""Tests for exact probability helpers."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProbabilityError
from repro.probability import (
    as_probability,
    check_distribution,
    format_percent,
    format_probability,
    normalize,
)


class TestAsProbability:
    def test_fraction_passthrough(self):
        assert as_probability(Fraction(1, 3)) == Fraction(1, 3)

    def test_int_bounds(self):
        assert as_probability(0) == 0
        assert as_probability(1) == 1

    def test_float_is_decimal_not_binary(self):
        # 0.1 must mean 1/10, not the binary float value.
        assert as_probability(0.1) == Fraction(1, 10)

    def test_string_fraction(self):
        assert as_probability("2/5") == Fraction(2, 5)

    def test_string_decimal(self):
        assert as_probability("0.25") == Fraction(1, 4)

    def test_rejects_negative(self):
        with pytest.raises(ProbabilityError):
            as_probability(-0.5)

    def test_rejects_above_one(self):
        with pytest.raises(ProbabilityError):
            as_probability(Fraction(3, 2))

    def test_rejects_zero_when_disallowed(self):
        with pytest.raises(ProbabilityError):
            as_probability(0, allow_zero=False)

    def test_rejects_bool(self):
        with pytest.raises(ProbabilityError):
            as_probability(True)

    def test_rejects_garbage_string(self):
        with pytest.raises(ProbabilityError):
            as_probability("not-a-number")

    def test_rejects_object(self):
        with pytest.raises(ProbabilityError):
            as_probability(object())

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=10**6))
    def test_any_valid_fraction_roundtrips(self, numerator, denominator):
        if numerator <= denominator:
            value = Fraction(numerator, denominator)
            assert as_probability(value) == value


class TestFormatting:
    def test_format_probability(self):
        assert format_probability(Fraction(1, 3)) == "0.3333"

    def test_format_percent(self):
        assert format_percent(Fraction(97, 100)) == "97%"

    def test_format_percent_digits(self):
        assert format_percent(Fraction(1, 3), digits=1) == "33.3%"


class TestNormalize:
    def test_scales_to_one(self):
        result = normalize([Fraction(1), Fraction(3)])
        assert result == [Fraction(1, 4), Fraction(3, 4)]
        assert sum(result) == 1

    def test_rejects_all_zero(self):
        with pytest.raises(ProbabilityError):
            normalize([Fraction(0), Fraction(0)])

    def test_rejects_negative(self):
        with pytest.raises(ProbabilityError):
            normalize([Fraction(-1), Fraction(2)])

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1).filter(lambda w: sum(w) > 0))
    def test_normalized_always_sums_to_one(self, weights):
        result = normalize([Fraction(w) for w in weights])
        assert sum(result) == 1


class TestCheckDistribution:
    def test_valid_strict(self):
        check_distribution([Fraction(1, 2), Fraction(1, 2)])

    def test_strict_rejects_subnormal(self):
        with pytest.raises(ProbabilityError):
            check_distribution([Fraction(1, 2)])

    def test_loose_accepts_subnormal(self):
        check_distribution([Fraction(1, 2)], strict=False)

    def test_loose_rejects_above_one(self):
        with pytest.raises(ProbabilityError):
            check_distribution([Fraction(3, 4), Fraction(3, 4)], strict=False)

    def test_rejects_empty(self):
        with pytest.raises(ProbabilityError):
            check_distribution([])
