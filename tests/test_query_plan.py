"""Tests for compiled query plans, the event-probability cache and the
batch query API.

The central properties:

* a plan compiled once and reused gives answers identical (Fraction-equal)
  to fresh compilation, with and without the cache;
* cached and uncached ``event_probability`` agree on arbitrary events;
* ``QueryEngine.run_batch`` matches per-query ``run`` exactly.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import IntegrationConfig, integrate
from repro.core.oracle import Oracle
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.errors import IntegrationError, QueryError
from repro.pxml.build import certain_document, certain_prob
from repro.pxml.model import PXText


def certain_prob_text(value):
    return certain_prob(PXText(value))
from repro.pxml.events import all_of, any_of, event_probability, lit, negate
from repro.pxml.events_cache import EventProbabilityCache, cache_for, invalidate
from repro.pxml.simplify import simplify
from repro.query.engine import ProbQueryEngine, QueryEngine
from repro.query.plan import QueryPlan, compile_plan
from repro.xmlkit.parser import parse_document
from .conftest import pxml_documents

GENERIC = [DeepEqualRule(), LeafValueRule()]

QUERIES = [
    "//person/tel",
    "//person/nm",
    '//person[tel="1111"]/nm',
    '//person[nm="john"]/tel',
    "//person[not(tel)]/nm",
    '//person[some $t in tel satisfies contains($t, "1")]/nm',
]


def ranked_map(answer):
    return {item.value: item.probability for item in answer}


@pytest.fixture(scope="module")
def figure2_document():
    book_a, book_b = addressbook_documents()
    return integrate(book_a, book_b, rules=GENERIC, dtd=ADDRESSBOOK_DTD).document


class TestCompilePlan:
    def test_compile_from_string(self):
        plan = compile_plan("//person/tel")
        assert isinstance(plan, QueryPlan)
        assert plan.expression == "//person/tel"
        assert plan.step_count == 2

    def test_idempotent_on_plans(self):
        plan = compile_plan("//a/b")
        assert compile_plan(plan) is plan

    def test_fingerprint_is_structural(self):
        assert compile_plan("//a/b").fingerprint == compile_plan("//a/b").fingerprint
        assert compile_plan("//a/b").fingerprint != compile_plan("//a/c").fingerprint
        assert (
            compile_plan("//a[b]").fingerprint
            != compile_plan("//a[c]").fingerprint
        )

    def test_fingerprint_hashable(self):
        {compile_plan(q).fingerprint for q in QUERIES}

    def test_fingerprint_digest_shape(self):
        digest = compile_plan("//a/b").fingerprint_digest
        assert len(digest) == 64 and int(digest, 16) >= 0  # sha256 hex
        assert digest == compile_plan("//a/b").fingerprint_digest
        assert digest != compile_plan("//a/c").fingerprint_digest

    def test_fingerprint_digest_pinned(self):
        """The persistent-cache stability contract: this digest keys
        answers on disk.  If this test fails you changed the fingerprint
        or its encoding — bump repro.dbms.cache_store.SCHEMA_VERSION so
        existing cache files are rebuilt, then re-pin."""
        assert compile_plan("//person/tel").fingerprint_digest == (
            compile_plan("//person/tel").fingerprint_digest
        )
        pinned = "e328e037d7ec5267769cf5c0552e21fc8e7b752f8a5d5627bc10645c3dd15723"
        assert compile_plan('//a[b="x"]/c').fingerprint_digest == pinned

    def test_positional_predicate_rejected_at_compile_time(self):
        with pytest.raises(QueryError):
            compile_plan("//person[1]")

    def test_arithmetic_rejected_at_compile_time(self):
        with pytest.raises(QueryError):
            compile_plan("//person[tel + 1]")

    def test_unknown_function_rejected_at_compile_time(self):
        with pytest.raises(QueryError):
            compile_plan("//person[last()]")

    def test_unbound_variable_rejected_at_compile_time(self):
        with pytest.raises(QueryError):
            compile_plan("//person[$ghost]")

    def test_quantifier_binds_its_variable(self):
        compile_plan('//person[some $t in tel satisfies contains($t, "1")]')

    def test_non_nodeset_rejected(self):
        with pytest.raises(QueryError):
            compile_plan('"just a literal"')


class TestPlanReuse:
    def test_plan_reuse_matches_fresh_compilation(self, figure2_document):
        for query in QUERIES:
            plan = compile_plan(query)
            fresh = ranked_map(ProbQueryEngine(figure2_document).query(query))
            reused_engine = ProbQueryEngine(figure2_document)
            first = ranked_map(reused_engine.query(plan))
            second = ranked_map(reused_engine.query(plan))
            assert first == fresh, query
            assert second == fresh, query

    def test_one_plan_many_documents(self):
        plan = compile_plan("//m/t")
        doc_a = certain_document(parse_document("<r><m><t>Jaws</t></m></r>"))
        doc_b = certain_document(parse_document("<r><m><t>Alien</t></m></r>"))
        assert ProbQueryEngine(doc_a).query(plan).values() == ["Jaws"]
        assert ProbQueryEngine(doc_b).query(plan).values() == ["Alien"]

    def test_cached_and_uncached_engines_agree(self, figure2_document):
        for query in QUERIES:
            cached = ranked_map(
                ProbQueryEngine(figure2_document, use_cache=True).query(query)
            )
            uncached = ranked_map(
                ProbQueryEngine(figure2_document, use_cache=False).query(query)
            )
            assert cached == uncached, query

    def test_repeated_query_hits_answer_cache(self, figure2_document):
        cache = EventProbabilityCache()
        engine = ProbQueryEngine(figure2_document, cache=cache)
        first = engine.answer_events("//person/tel")
        second = engine.answer_events("//person/tel")
        assert second is first  # same cached map, no recomputation

    def test_shared_cache_keeps_documents_separate(self):
        """A cache instance explicitly shared across documents must not
        leak one document's answers into another's (answer maps are
        keyed per document; only the event memo is safely shared)."""
        doc_a = certain_document(parse_document("<r><m><t>Jaws</t></m></r>"))
        doc_b = certain_document(parse_document("<r><m><t>Psycho</t></m></r>"))
        shared = EventProbabilityCache()
        assert QueryEngine(doc_a, cache=shared).run("//m/t").values() == ["Jaws"]
        assert QueryEngine(doc_b, cache=shared).run("//m/t").values() == ["Psycho"]
        from repro.query.aggregates import count_distribution

        assert count_distribution(doc_a, "m", cache=shared) == {1: Fraction(1)}
        two = certain_document(parse_document("<r><m/><m/></r>"))
        assert count_distribution(two, "m", cache=shared) == {2: Fraction(1)}

    def test_engines_share_document_cache(self, figure2_document):
        engine_a = ProbQueryEngine(figure2_document)
        engine_b = ProbQueryEngine(figure2_document)
        assert engine_a.cache is engine_b.cache
        assert engine_a.cache is cache_for(figure2_document)


class TestEventProbabilityCache:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(document=pxml_documents(), data=st.data())
    def test_cached_agrees_with_uncached_on_random_events(self, document, data):
        """Property: for events assembled from the document's own choice
        points, the memoized probability equals the reference one."""
        nodes = [
            node for node in document.iter_prob_nodes()
            if len(node.possibilities) > 1
        ]
        cache = EventProbabilityCache()
        literals = [
            lit(node, data.draw(st.integers(0, len(node.possibilities) - 1)))
            for node in nodes[:4]
        ]
        events = []
        if literals:
            events.append(any_of(literals))
            events.append(all_of(literals))
            events.append(negate(any_of(literals)))
            events.append(any_of([all_of(literals), negate(literals[0])]))
        for event in events:
            assert cache.probability(event) == event_probability(event)
            # Second read comes from the memo and must not drift.
            assert cache.probability(event) == event_probability(event)

    def test_bulk_matches_single(self, figure2_document):
        engine = ProbQueryEngine(figure2_document, use_cache=False)
        events = [
            event
            for query in QUERIES
            for event, _ in engine.answer_events(query).values()
        ]
        cache = EventProbabilityCache()
        bulk = cache.probabilities_of(events)
        assert bulk == [event_probability(event) for event in events]

    def test_stats_count_hits(self, figure2_document):
        cache = EventProbabilityCache()
        engine = ProbQueryEngine(figure2_document, cache=cache)
        engine.query("//person/tel")
        misses = cache.misses
        assert misses > 0 and cache.hits == 0
        # The answer-event cache absorbs the repeat entirely.
        engine.query("//person/tel")
        assert cache.misses == misses

    def test_invalidate_drops_registry_entry(self, figure2_document):
        cache = cache_for(figure2_document)
        ProbQueryEngine(figure2_document).query("//person/tel")
        assert len(cache) > 0
        invalidate(figure2_document)
        assert len(cache) == 0
        assert cache_for(figure2_document) is not cache

    def test_simplify_is_functional_and_keeps_input_cache(self, figure2_document):
        """simplify() copies with fresh uids: the input document's cache
        stays valid and populated, and the simplified copy answers
        identically through its own (fresh) cache."""
        document = figure2_document.copy()
        ProbQueryEngine(document).query("//person/tel")
        entries_before = len(cache_for(document))
        assert entries_before > 0
        simplified, _ = simplify(document)
        assert len(cache_for(document)) == entries_before
        assert ranked_map(ProbQueryEngine(simplified).query("//person/tel")) == (
            ranked_map(ProbQueryEngine(document).query("//person/tel"))
        )

    def test_in_place_mutation_requires_invalidate(self):
        """The documented contract for code that mutates probability
        nodes in place: call invalidate(), after which fresh engines
        serve the new distribution."""
        from repro.pxml.build import choice_prob
        from repro.pxml.model import (
            PXDocument, PXElement, PXText, Possibility, ProbNode,
        )

        choice = choice_prob([
            (Fraction(1, 2), [PXElement("t", children=[certain_prob_text("a")])]),
            (Fraction(1, 2), [PXElement("t", children=[certain_prob_text("b")])]),
        ])
        document = PXDocument(
            ProbNode([Possibility(1, [PXElement("r", children=[choice])])])
        )
        engine = ProbQueryEngine(document)
        assert engine.query("//t").probability_of("a") == Fraction(1, 2)
        # Mutate probabilities in place — the one case invalidate() is for.
        choice.possibilities[0].prob = Fraction(3, 4)
        choice.possibilities[1].prob = Fraction(1, 4)
        invalidate(document)
        assert ProbQueryEngine(document).query("//t").probability_of("a") == (
            Fraction(3, 4)
        )


class TestBatchAPI:
    def test_run_batch_matches_per_query_run(self, figure2_document):
        engine = QueryEngine(figure2_document)
        batched = engine.run_batch(QUERIES)
        for query, answer in zip(QUERIES, batched):
            single = QueryEngine(figure2_document, use_cache=False).run(query)
            assert ranked_map(answer) == ranked_map(single), query

    def test_run_batch_preserves_order_and_length(self, figure2_document):
        engine = QueryEngine(figure2_document)
        answers = engine.run_batch(["//person/nm", "//person/tel"])
        assert len(answers) == 2
        assert all(answers[0].values()) and "1111" in answers[1].values()

    def test_run_batch_accepts_plans(self, figure2_document):
        plans = [compile_plan(q) for q in QUERIES[:3]]
        engine = QueryEngine(figure2_document)
        batched = engine.run_batch(plans)
        for plan, answer in zip(plans, batched):
            assert ranked_map(answer) == ranked_map(engine.run(plan))

    def test_empty_batch(self, figure2_document):
        assert QueryEngine(figure2_document).run_batch([]) == []

    def test_run_batch_uncached_agrees(self, figure2_document):
        cached = QueryEngine(figure2_document, use_cache=True).run_batch(QUERIES)
        uncached = QueryEngine(figure2_document, use_cache=False).run_batch(QUERIES)
        for left, right in zip(cached, uncached):
            assert ranked_map(left) == ranked_map(right)

    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(document=pxml_documents())
    def test_batch_matches_singles_on_random_documents(self, document):
        queries = ["//a", "//b//x", "//item", "//rec/a"]
        engine = QueryEngine(document)
        try:
            batched = engine.run_batch(queries)
        except QueryError:
            # Random documents can exceed the engine's value-realisation
            # cap — a legitimate refusal.  Batch and single paths must
            # refuse identically.
            with pytest.raises(QueryError):
                for query in queries:
                    QueryEngine(document, use_cache=False).run(query)
            return
        for query, answer in zip(queries, batched):
            single = QueryEngine(document, use_cache=False).run(query)
            assert ranked_map(answer) == ranked_map(single), query


class TestCacheWiring:
    def test_count_distribution_memoized(self, figure2_document):
        from repro.query.aggregates import compile_aggregate, count_distribution

        cache = cache_for(figure2_document)
        first = count_distribution(figure2_document, "person")
        # Memoized under the compiled spec's plan-derived fingerprint.
        key = compile_aggregate("count", "person").fingerprint
        assert cache.aggregate(figure2_document, key) is not None
        second = count_distribution(figure2_document, "person")
        assert second == first
        # Returned mappings are fresh copies — caller mutation must not
        # poison the cache.
        second[999] = Fraction(1)
        assert count_distribution(figure2_document, "person") == first
        uncached = count_distribution(figure2_document, "person", use_cache=False)
        assert uncached == first

    def test_approximate_exact_top_matches_engine(self, figure2_document):
        from repro.query.approximate import approximate_query

        answer = approximate_query(
            figure2_document, "//person/tel", samples=50, seed=7, exact_top=2
        )
        engine = ProbQueryEngine(figure2_document)
        for item in answer.items:
            if item.exact:
                exact = engine.answer_probability("//person/tel", item.value)
                assert item.estimate == float(exact)
                assert item.standard_error == 0.0
        assert any(item.exact for item in answer.items)


class TestSourceWeightNormalization:
    def _config(self, weights):
        return IntegrationConfig(oracle=Oracle(GENERIC), source_weights=weights)

    def test_float_halves(self):
        config = self._config((0.5, 0.5))
        assert config.source_weights == (Fraction(1, 2), Fraction(1, 2))
        assert all(isinstance(w, Fraction) for w in config.source_weights)

    def test_high_precision_complement_normalizes(self):
        # Coercion of high-precision floats can leave the exact sum a
        # hair off 1 even though the floats sum to exactly 1.0.
        weight = 0.13436424411240122
        config = self._config((weight, 1 - weight))
        total = sum(config.source_weights, Fraction(0))
        assert total == 1
        assert abs(config.source_weights[0] - Fraction(weight)) < Fraction(1, 10**6)

    def test_random_complements_always_accepted(self):
        import random

        rng = random.Random(1)
        for _ in range(50):
            weight = rng.random()
            if not 0 < weight < 1:
                continue
            config = self._config((weight, 1 - weight))
            assert sum(config.source_weights, Fraction(0)) == 1

    def test_grossly_wrong_weights_still_raise(self):
        with pytest.raises(IntegrationError):
            self._config((Fraction(1, 3), Fraction(1, 3)))

    def test_string_weights(self):
        config = self._config(("1/3", "2/3"))
        assert config.source_weights == (Fraction(1, 3), Fraction(2, 3))

    def test_weights_affect_integration(self):
        """Normalized weights flow into value-conflict probabilities."""
        doc_a = parse_document("<person><tel>1111</tel></person>")
        doc_b = parse_document("<person><tel>2222</tel></person>")
        from repro.core.engine import Integrator

        weight = 0.7514816557045541  # high-precision, needs normalization
        config = IntegrationConfig(
            oracle=Oracle(GENERIC),
            dtd=ADDRESSBOOK_DTD,
            source_weights=(weight, 1 - weight),
        )
        result = Integrator(config).integrate(doc_a, doc_b)
        answer = ProbQueryEngine(result.document).query("//person/tel")
        probs = ranked_map(answer)
        assert probs["1111"] == config.source_weights[0]
        assert probs["2222"] == config.source_weights[1]
