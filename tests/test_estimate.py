"""Tests for the analytic size estimator.

The headline property: the estimator equals the materialised engine result
*exactly* — node counts and world counts — in both representation modes.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.engine import IntegrationConfig, Integrator
from repro.core.estimate import estimate_integration
from repro.core.oracle import ConstantPrior, Oracle
from repro.core.rules import DeepEqualRule, LeafValueRule, PersonNameReconciler
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.errors import IntegrationError
from repro.pxml.stats import tree_stats
from repro.xmlkit.parser import parse_document
from .conftest import source_pairs

GENERIC = [DeepEqualRule(), LeafValueRule()]


def both_modes(source_a, source_b, **kwargs):
    for factored in (True, False):
        config = IntegrationConfig(
            oracle=Oracle(GENERIC, prior=ConstantPrior("1/2")),
            factor_components=factored,
            max_possibilities=100_000,
            **kwargs,
        )
        result = Integrator(config).integrate(source_a, source_b)
        estimate = estimate_integration(source_a, source_b, config)
        stats = tree_stats(result.document)
        yield factored, stats, estimate


class TestExactAgreement:
    def test_addressbook(self):
        book_a, book_b = addressbook_documents()
        for factored, stats, estimate in both_modes(book_a, book_b, dtd=ADDRESSBOOK_DTD):
            assert estimate.total_nodes == stats.total, f"factored={factored}"
            assert estimate.world_count == stats.world_count

    def test_leaf_conflicts(self):
        source_a = parse_document("<r><p><n>a</n><t>1</t></p></r>")
        source_b = parse_document("<r><p><n>a</n><t>2</t></p></r>")
        for factored, stats, estimate in both_modes(source_a, source_b):
            assert estimate.total_nodes == stats.total
            assert estimate.world_count == stats.world_count

    def test_multi_element_components(self):
        source_a = parse_document(
            "<r><p><n>a</n></p><p><n>b</n></p><p><n>c</n></p></r>"
        )
        source_b = parse_document(
            "<r><p><n>a</n><x>1</x></p><p><n>b</n><x>2</x></p></r>"
        )
        for factored, stats, estimate in both_modes(source_a, source_b):
            assert estimate.total_nodes == stats.total
            assert estimate.world_count == stats.world_count

    def test_reconcilers_mirrored(self):
        source_a = parse_document("<r><p><d>John Woo</d><x>q</x></p></r>")
        source_b = parse_document("<r><p><d>Woo, John</d><x>q</x></p></r>")
        for factored, stats, estimate in both_modes(
            source_a, source_b, reconcilers=(PersonNameReconciler(("d",)),)
        ):
            assert estimate.total_nodes == stats.total
            assert estimate.world_count == stats.world_count

    @given(source_pairs())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_property_agreement(self, pair):
        source_a, source_b = pair
        for factored, stats, estimate in both_modes(source_a, source_b):
            assert estimate.total_nodes == stats.total, f"factored={factored}"
            assert estimate.world_count == stats.world_count, f"factored={factored}"


class TestDiagnostics:
    def test_group_diagnostics_present(self):
        source_a = parse_document("<r><p><n>a</n></p></r>")
        source_b = parse_document("<r><p><n>a</n><x>1</x></p></r>")
        config = IntegrationConfig(oracle=Oracle([DeepEqualRule()]))
        estimate = estimate_integration(source_a, source_b, config)
        assert len(estimate.groups) == 1
        group = estimate.groups[0]
        assert group.tag == "p"
        assert group.parent_tag == "r"
        assert group.joint_matchings == 2
        assert estimate.possibility_count == 2

    def test_no_uncertain_groups(self):
        source = parse_document("<r><p><n>a</n></p></r>")
        config = IntegrationConfig(oracle=Oracle(GENERIC))
        estimate = estimate_integration(source, source.copy(), config)
        assert estimate.groups == []
        assert estimate.possibility_count == 1

    def test_root_mismatch_mirrors_engine(self):
        config = IntegrationConfig(oracle=Oracle(GENERIC))
        with pytest.raises(IntegrationError):
            estimate_integration(
                parse_document("<a/>"), parse_document("<b/>"), config
            )

    def test_estimator_ignores_possibility_budget(self):
        # 5×5 all-uncertain: 1546 matchings, budget 10 — the engine would
        # refuse, the estimator must not.
        record = "".join(f"<p><n>n{i}</n></p>" for i in range(5))
        other = "".join(f"<p><m>m{i}</m></p>" for i in range(5))
        source_a = parse_document(f"<r>{record}</r>")
        source_b = parse_document(f"<r>{other}</r>")
        config = IntegrationConfig(
            oracle=Oracle([DeepEqualRule()]), max_possibilities=10
        )
        estimate = estimate_integration(source_a, source_b, config)
        assert estimate.possibility_count == 1546
