"""Tests for the concurrent, cache-persistent dataspace service."""

import gc
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from fractions import Fraction

import pytest

from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.dbms.service import DataspaceService
from repro.dbms.store import DocumentStore
from repro.errors import StoreError
from repro.pxml.events_cache import registered_count
from repro.query.engine import ProbQueryEngine

RULES = [DeepEqualRule(), LeafValueRule()]
WORKLOAD = [
    "//person/tel",
    "//person/nm",
    '//person[nm="John"]/tel',
    "//person",
]


def shape(answer):
    return [(item.value, item.probability, item.occurrences) for item in answer]


def shape_fused(fused):
    """Full comparable form of a FusedAnswer: strategy, membership,
    and every item with its exact score and provenance triples."""
    return (
        fused.strategy,
        fused.documents,
        tuple(sorted(fused.weights.items())),
        tuple(
            (
                item.value,
                item.score,
                tuple(
                    (source.document, source.rank, source.probability)
                    for source in item.sources
                ),
            )
            for item in fused.items
        ),
    )


@pytest.fixture
def integrated(tmp_path):
    """A persistent service with an integrated addressbook stored as 'ab'."""
    service = DataspaceService(
        directory=tmp_path / "store", cache_dir=tmp_path / "cache"
    )
    book_a, book_b = addressbook_documents()
    service.load_document("a", book_a)
    service.load_document("b", book_b)
    service.integrate("a", "b", "ab", rules=RULES, dtd=ADDRESSBOOK_DTD)
    yield service, tmp_path
    service.close()


class TestQuerying:
    def test_matches_direct_engine(self, integrated):
        service, _ = integrated
        direct = ProbQueryEngine(service._module.probabilistic("ab"))
        for query in WORKLOAD:
            assert shape(service.query("ab", query)) == shape(direct.query(query))

    def test_plain_documents_query_as_certain(self, integrated):
        service, _ = integrated
        answer = service.query("a", "//person/nm")
        assert answer.probability_of("John") == Fraction(1)

    def test_run_batch_matches_serial(self, integrated):
        service, _ = integrated
        batch = service.run_batch("ab", WORKLOAD)
        for query, answer in zip(WORKLOAD, batch):
            assert shape(answer) == shape(service.query("ab", query))

    def test_missing_document_raises(self, integrated):
        service, _ = integrated
        with pytest.raises(StoreError):
            service.query("nope", "//x")


class TestPersistence:
    def test_warm_restart_serves_identical_fractions(self, integrated):
        service, tmp_path = integrated
        cold = [shape(service.query("ab", q)) for q in WORKLOAD]
        service.close()
        with DataspaceService(
            directory=tmp_path / "store", cache_dir=tmp_path / "cache"
        ) as warm:
            warm_answers = [shape(warm.query("ab", q)) for q in WORKLOAD]
            assert warm_answers == cold
            stats = warm.cache_stats()
            assert stats["persistent_hits"] == len(WORKLOAD)
            # Served straight from disk: no engine was ever built.
            assert stats["engines"] == 0

    def test_no_cache_dir_still_works(self, tmp_path):
        with DataspaceService(directory=tmp_path / "store") as service:
            service.load("doc", "<r><x>1</x></r>")
            assert service.query("doc", "//x").values() == ["1"]
            assert "persistent_hits" not in service.cache_stats()

    def test_reload_invalidates(self, integrated):
        """Replacing a document's content must never serve the old answer."""
        service, _ = integrated
        service.load("solo", "<r><x>old</x></r>")
        assert service.query("solo", "//x").values() == ["old"]
        service.load("solo", "<r><x>new</x></r>")
        assert service.query("solo", "//x").values() == ["new"]

    def test_feedback_invalidates_and_conditions(self, integrated):
        service, _ = integrated
        before = service.query("ab", "//person/tel")
        assert before.probability_of("1111") == Fraction(3, 4)
        service.feedback("ab", "//person/tel", "1111", correct=True)
        after = service.query("ab", "//person/tel")
        assert after.probability_of("1111") == Fraction(1)

    def test_delete_removes_answers(self, integrated):
        service, _ = integrated
        service.query("ab", "//person/tel")
        service.delete("ab")
        assert "ab" not in service.store
        assert service.cache.version("ab") >= 1

    def test_reintegration_repriced(self, integrated):
        service, _ = integrated
        first = service.query("ab", "//person/tel")
        # Re-integrate over a changed source: same output name, new content.
        service.load(
            "b", "<addressbook><person><nm>John</nm><tel>9999</tel></person>"
            "</addressbook>"
        )
        service.integrate("a", "b", "ab", rules=RULES, dtd=ADDRESSBOOK_DTD)
        second = service.query("ab", "//person/tel")
        assert shape(first) != shape(second)
        assert second.probability_of("9999") > 0


class TestConcurrency:
    @pytest.mark.parametrize("threads", [4, 8])
    def test_concurrent_queries_match_serial(self, integrated, threads):
        service, _ = integrated
        serial = {query: shape(service.query("ab", query)) for query in WORKLOAD}
        service.cache.clear()  # force concurrent re-evaluation
        with service._mu:
            service._engines.clear()

        errors = []
        barrier = threading.Barrier(threads)

        def worker(_):
            try:
                barrier.wait(timeout=30)
                out = {}
                for query in WORKLOAD:
                    out[query] = shape(service.query("ab", query))
                return out
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)
                raise

        with ThreadPoolExecutor(max_workers=threads) as pool:
            results = list(pool.map(worker, range(threads)))
        assert not errors
        for result in results:
            assert result == serial

    def test_concurrent_mixed_documents(self, integrated):
        service, _ = integrated
        service.load("other", "<r><x>1</x><x>2</x></r>")
        expected = {
            "ab": shape(service.query("ab", "//person/tel")),
            "other": shape(service.query("other", "//x")),
        }
        service.cache.clear()
        with service._mu:
            service._engines.clear()

        def worker(index):
            name = "ab" if index % 2 == 0 else "other"
            query = "//person/tel" if name == "ab" else "//x"
            return name, shape(service.query(name, query))

        with ThreadPoolExecutor(max_workers=6) as pool:
            for name, result in pool.map(worker, range(12)):
                assert result == expected[name]


class TestStoreLRU:
    def test_eviction_bounds_materialized_documents(self, tmp_path):
        store = DocumentStore(tmp_path, max_cached=2)
        service = DataspaceService(store=store)
        for index in range(5):
            service.load(f"doc{index}", f"<r><x>{index}</x></r>")
        assert store.cached_count() <= 2
        # Evicted documents transparently reload — and still answer.
        assert service.query("doc0", "//x").values() == ["0"]

    def test_eviction_releases_event_caches(self, tmp_path):
        store = DocumentStore(tmp_path, max_cached=1)
        before = registered_count()
        for index in range(4):
            service = DataspaceService(store=store)
            service.load(f"doc{index}", f"<r><x>{index}</x></r>")
            service.query(f"doc{index}", "//x")  # registers an event cache
            del service
        gc.collect()
        # All but the one still-materialized document's cache are gone.
        assert registered_count() <= before + 1

    def test_constructor_rejects_bad_bound(self, tmp_path):
        with pytest.raises(StoreError):
            DocumentStore(tmp_path, max_cached=0)

    def test_conflicting_constructor_arguments(self, tmp_path):
        with pytest.raises(StoreError):
            DataspaceService(store=DocumentStore(), directory=tmp_path)


class TestReviewRegressions:
    def test_external_file_digest_order_independent(self, tmp_path):
        """An externally-authored (non-canonically-serialized) file must
        digest identically whether or not it was materialized first —
        otherwise warm restarts key the persistent cache differently."""
        (tmp_path / "ext.xml").write_text(
            "<r>\n  <x>1</x>\n</r>", encoding="utf-8"
        )
        cold = DocumentStore(tmp_path).digest("ext")
        warm_store = DocumentStore(tmp_path)
        warm_store.get("ext")  # materialize first
        assert warm_store.digest("ext") == cold

    def test_kind_does_not_parse(self, tmp_path):
        store = DocumentStore(tmp_path)
        store.put("doc", __import__("repro").parse_document("<r/>"))
        fresh = DocumentStore(tmp_path)
        assert fresh.kind("doc") == "xml"
        assert fresh.cached_count() == 0

    def test_engine_map_respects_lru_bound(self, tmp_path):
        service = DataspaceService(
            directory=tmp_path / "store", max_cached_documents=2
        )
        for index in range(6):
            service.load(f"doc{index}", f"<r><x>{index}</x></r>")
            service.query(f"doc{index}", "//x")
        assert len(service._engines) <= 2
        assert service.store.cached_count() <= 2

    def test_cold_query_counts_one_miss(self, integrated):
        service, _ = integrated
        before = service.cache.misses
        service.query("ab", "//person/nm")
        assert service.cache.misses == before + 1
        before_hits = service.cache.hits
        service.query("ab", "//person/nm")
        assert service.cache.hits == before_hits + 1


class TestAggregates:
    def test_aggregate_matches_direct_computation(self, integrated):
        from repro.query.aggregates import aggregate_distribution

        service, _ = integrated
        document = service._module.probabilistic("ab")
        for kind, target, text in [
            ("count", "person", None),
            ("sum", "tel", None),
            ("min", "tel", None),
            ("max", "tel", None),
            ("exists", "person", None),
            ("count", "nm", "John"),
        ]:
            assert service.aggregate("ab", kind, target, text=text) == \
                aggregate_distribution(document, kind, target, text=text)

    def test_warm_restart_serves_aggregates_without_engine(self, integrated):
        service, tmp_path = integrated
        cold = service.aggregate("ab", "sum", "tel")
        service.close()
        with DataspaceService(
            directory=tmp_path / "store", cache_dir=tmp_path / "cache"
        ) as warm:
            assert warm.aggregate("ab", "sum", "tel") == cold
            stats = warm.cache_stats()
            assert stats["persistent_aggregate_hits"] == 1
            assert stats["engines"] == 0

    def test_spec_with_target_or_text_rejected(self, integrated):
        from repro.errors import QueryError
        from repro.query.aggregates import compile_aggregate

        service, _ = integrated
        spec = compile_aggregate("count", "nm")
        with pytest.raises(QueryError):
            service.aggregate("ab", spec, text="John")
        with pytest.raises(QueryError):
            service.aggregate("ab", spec, "nm")
        # The spec alone is fine.
        assert sum(service.aggregate("ab", spec).values()) == Fraction(1)

    def test_mutation_invalidates_aggregates(self, integrated):
        service, _ = integrated
        service.load("nums", "<r><p>1</p><p>2</p></r>")
        assert service.aggregate("nums", "sum", "p") == {3: Fraction(1)}
        service.load("nums", "<r><p>7</p></r>")
        assert service.aggregate("nums", "sum", "p") == {7: Fraction(1)}

    def test_feedback_invalidates_aggregates(self, integrated):
        from repro.query.aggregates import aggregate_distribution

        service, _ = integrated
        service.aggregate("ab", "count", "tel")
        stored_before = service.cache.aggregate_stored
        service.feedback("ab", "//person/tel", "1111", correct=True)
        after = service.aggregate("ab", "count", "tel")
        # The row was dropped with the prior document: the posterior
        # distribution was recomputed (stored again), not served stale.
        assert service.cache.aggregate_stored == stored_before + 1
        assert sum(after.values()) == Fraction(1)
        assert after == aggregate_distribution(
            service._module.probabilistic("ab"), "count", "tel"
        )


#: Mixed-op soak matrix — CI reduces it via the same env vars the HTTP
#: soak uses; a deep local run can crank it up.
SOAK_THREADS = int(os.environ.get("SOAK_THREADS", "6"))
SOAK_REQUESTS = int(os.environ.get("SOAK_REQUESTS", "8"))
SOAK_TIMEOUT = float(os.environ.get("SOAK_TIMEOUT", "120"))

SOAK_AGGREGATES = [
    ("count", "person", None),
    ("sum", "tel", None),
    ("min", "tel", None),
    ("exists", "nm", "John"),
]


def build_service_soak_schedules():
    """Deterministic per-thread schedules mixing queries, fan-outs
    (``query_all``), aggregates and feedback.  Each thread owns its
    private output document (mutations cannot interact across threads)
    and also reads the shared immutable ``base`` document; fan-outs span
    only ``{private, base}`` so the fused result is a pure function of
    the thread's own schedule position — replayable serially."""
    schedules = []
    for thread in range(SOAK_THREADS):
        ops = []
        private = f"out{thread}"
        ops.append(("integrate", "a", "b", private))
        for index in range(SOAK_REQUESTS):
            kind = index % 6
            if kind == 0:
                ops.append(("query", "base", WORKLOAD[index % len(WORKLOAD)]))
            elif kind == 1:
                agg = SOAK_AGGREGATES[index % len(SOAK_AGGREGATES)]
                ops.append(("aggregate", "base") + agg)
            elif kind == 2:
                agg = SOAK_AGGREGATES[(index + thread) % len(SOAK_AGGREGATES)]
                ops.append(("aggregate", private) + agg)
            elif kind == 3:
                ops.append(("feedback", private, "//person/tel", "1111"))
            elif kind == 4:
                ops.append(("query", private, WORKLOAD[index % len(WORKLOAD)]))
            else:
                strategy = "prob" if (index + thread) % 2 == 0 else "rrf"
                ops.append((
                    "query_all",
                    (private, "base"),
                    WORKLOAD[(index + thread) % len(WORKLOAD)],
                    strategy,
                ))
        schedules.append(ops)
    return schedules


def run_service_schedule(service, ops):
    from repro.experiments import standard_rules

    results = []
    for op in ops:
        if op[0] == "query":
            results.append(shape(service.query(op[1], op[2])))
        elif op[0] == "aggregate":
            distribution = service.aggregate(op[1], op[2], op[3], text=op[4])
            results.append(sorted(
                distribution.items(),
                key=lambda item: (item[0] is not None, item[0] or 0),
            ))
        elif op[0] == "query_all":
            fused = service.query_all(
                op[2], names=list(op[1]), strategy=op[3]
            )
            results.append(shape_fused(fused))
        elif op[0] == "feedback":
            step = service.feedback(op[1], op[2], op[3], correct=True)
            results.append((step.kind, step.prior, step.worlds_after))
        elif op[0] == "integrate":
            report = service.integrate(op[1], op[2], op[3], rules=standard_rules())
            results.append((report.total_nodes, report.world_count))
    return results


def populate_service_soak(service):
    book_a, book_b = addressbook_documents()
    service.load_document("a", book_a)
    service.load_document("b", book_b)
    from repro.experiments import standard_rules

    service.integrate("a", "b", "base", rules=standard_rules())


class TestMixedSoak:
    def test_mixed_query_aggregate_feedback_matches_serial(self, tmp_path):
        """Acceptance (ISSUE 5, extended by ISSUE 7): N threads of mixed
        query/query_all/aggregate/feedback traffic against one
        persistent service are identical — Fraction for Fraction, key
        for key, provenance triple for provenance triple — to a serial
        replay of the same schedules, inside a hard timeout (deadlock
        guard)."""
        schedules = build_service_soak_schedules()

        # Serial reference over its own store.
        with DataspaceService(
            directory=tmp_path / "serial-store",
            cache_dir=tmp_path / "serial-cache",
        ) as serial_service:
            populate_service_soak(serial_service)
            expected = [
                run_service_schedule(serial_service, ops) for ops in schedules
            ]

        # Concurrent run over a separate, identically-populated store.
        with DataspaceService(
            directory=tmp_path / "store", cache_dir=tmp_path / "cache"
        ) as service:
            populate_service_soak(service)
            start = time.monotonic()
            with ThreadPoolExecutor(max_workers=SOAK_THREADS) as pool:
                futures = [
                    pool.submit(run_service_schedule, service, ops)
                    for ops in schedules
                ]
                actual = [
                    future.result(timeout=SOAK_TIMEOUT) for future in futures
                ]
            elapsed = time.monotonic() - start

        assert elapsed < SOAK_TIMEOUT
        assert actual == expected


class TestCrossProcessFence:
    """Two service instances sharing one store directory and one cache
    file — the in-process stand-in for two `serve --http` workers.  The
    per-name cache version is the fence: a mutation through one instance
    must be observed by the other instead of served from its stale
    materialization (ISSUE 8 tentpole)."""

    def two_services(self, tmp_path):
        first = DataspaceService(
            directory=tmp_path / "store", cache_dir=tmp_path / "cache"
        )
        second = DataspaceService(
            directory=tmp_path / "store", cache_dir=tmp_path / "cache"
        )
        return first, second

    def test_sibling_mutation_is_observed(self, tmp_path):
        first, second = self.two_services(tmp_path)
        try:
            first.load("d", "<r><x>old</x></r>")
            assert first.query("d", "//x").values() == ["old"]
            # Warm the *second* instance's in-memory state on the old
            # content: materialization, digest memo, engine.
            assert second.query("d", "//x").values() == ["old"]
            # Mutate through the first instance only.
            first.load("d", "<r><x>new</x></r>")
            assert first.query("d", "//x").values() == ["new"]
            # Without the fence the second instance would re-serve "old"
            # from its stale materialized document and digest.
            assert second.query("d", "//x").values() == ["new"]
        finally:
            first.close()
            second.close()

    def test_sibling_feedback_is_observed(self, tmp_path):
        first, second = self.two_services(tmp_path)
        try:
            book_a, book_b = addressbook_documents()
            first.load_document("a", book_a)
            first.load_document("b", book_b)
            first.integrate("a", "b", "ab", rules=RULES, dtd=ADDRESSBOOK_DTD)
            warm_before = second.query("ab", "//person/tel")
            first.feedback("ab", "//person/tel", "1111")
            after_first = second.query("ab", "//person/tel")
            assert shape(after_first) == shape(first.query("ab", "//person/tel"))
            assert shape(after_first) != shape(warm_before)
        finally:
            first.close()
            second.close()

    def test_aggregates_cross_the_fence(self, tmp_path):
        first, second = self.two_services(tmp_path)
        try:
            first.load("d", "<r><p>1</p><p>2</p></r>")
            assert second.aggregate("d", "count", "p") == {2: Fraction(1)}
            first.load("d", "<r><p>1</p><p>2</p><p>3</p></r>")
            assert second.aggregate("d", "count", "p") == {3: Fraction(1)}
        finally:
            first.close()
            second.close()

    def test_own_mutations_do_not_refresh(self, tmp_path):
        """The fence must not tax the single-process fast path: a
        service observing only its own mutations never drops its
        materialization (refresh would force a reparse per query)."""
        service = DataspaceService(
            directory=tmp_path / "store", cache_dir=tmp_path / "cache"
        )
        try:
            service.load("d", "<r><x>1</x></r>")
            service.query("d", "//x")
            materialized = service.store.get("d")
            service.query("d", "//x")
            assert service.store.get("d") is materialized
        finally:
            service.close()

    def test_fence_noop_without_cache(self, tmp_path):
        service = DataspaceService(directory=tmp_path / "store")
        try:
            service.load("d", "<r><x>1</x></r>")
            assert service.query("d", "//x").values() == ["1"]
        finally:
            service.close()


class TestFanoutErrorContainment:
    """query_all/aggregate_all on a failing corpus: the first error (in
    pinned name order) surfaces, stragglers are cancelled or awaited —
    never left running unobserved (ISSUE 8 satellite)."""

    def corpus(self, tmp_path, workers=4):
        service = DataspaceService(
            directory=tmp_path / "store", fanout_workers=workers
        )
        for name in ("a", "b", "c", "d"):
            service.load(name, f"<r><x>{name}</x></r>")
        return service

    def test_missing_document_mid_corpus(self, tmp_path):
        """A document that vanishes between membership resolution and
        pricing (deleted by a sibling) fails its future; the fan-out
        surfaces that MissingDocumentError."""
        from repro.errors import MissingDocumentError

        service = self.corpus(tmp_path)
        try:
            original = DataspaceService.query
            def flaky(self_, name, plan):
                if name == "b":
                    raise MissingDocumentError("no document named 'b'")
                return original(self_, name, plan)
            service.query = flaky.__get__(service)
            with pytest.raises(MissingDocumentError):
                service.query_all("//x")
        finally:
            service.close()

    def test_stragglers_are_awaited_not_leaked(self, tmp_path):
        """When the error lands, futures already running are awaited to
        completion before it propagates — no work outlives the call."""
        from repro.errors import MissingDocumentError

        service = self.corpus(tmp_path, workers=4)
        finished = threading.Event()
        try:
            original = DataspaceService.query
            def flaky(self_, name, plan):
                if name == "a":
                    time.sleep(0.05)
                    raise MissingDocumentError("no document named 'a'")
                if name == "d":
                    time.sleep(0.3)  # straggler, still running at failure
                    finished.set()
                return original(self_, name, plan)
            service.query = flaky.__get__(service)
            with pytest.raises(MissingDocumentError):
                service.query_all("//x")
            assert finished.is_set(), "straggler leaked past the fan-out"
        finally:
            service.close()

    def test_first_error_in_name_order_wins(self, tmp_path):
        """Two failures: the surfaced error is deterministically the
        first failing *name*, not whichever future crashed first."""
        from repro.errors import MissingDocumentError, QueryError

        service = self.corpus(tmp_path, workers=4)
        try:
            original = DataspaceService.query
            def flaky(self_, name, plan):
                if name == "b":
                    time.sleep(0.2)  # fails *later* in wall-clock time
                    raise MissingDocumentError("no document named 'b'")
                if name == "c":
                    raise QueryError("c exploded first")
                return original(self_, name, plan)
            service.query = flaky.__get__(service)
            with pytest.raises(MissingDocumentError):
                service.query_all("//x")
        finally:
            service.close()

    def test_aggregate_all_contains_errors_too(self, tmp_path):
        from repro.errors import QueryError

        service = self.corpus(tmp_path)
        try:
            original = DataspaceService.aggregate
            def flaky(self_, name, spec, target=None, *, text=None):
                if name == "c":
                    raise QueryError("boom")
                return original(self_, name, spec, target, text=text)
            service.aggregate = flaky.__get__(service)
            with pytest.raises(QueryError):
                service.aggregate_all("count", "x")
        finally:
            service.close()


class TestCloseLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        service = DataspaceService(
            directory=tmp_path / "store", cache_dir=tmp_path / "cache"
        )
        service.load("d", "<r><x>1</x></r>")
        service.query_all("//x")  # create the fan-out pool
        service.close()
        service.close()  # second close: no error, no double-shutdown

    def test_fanout_after_close_raises(self, tmp_path):
        service = DataspaceService(directory=tmp_path / "store")
        service.load("d", "<r><x>1</x></r>")
        service.close()
        with pytest.raises(StoreError, match="closed"):
            service.query_all("//x")
        with pytest.raises(StoreError, match="closed"):
            service.aggregate_all("count", "x")

    def test_close_before_any_fanout(self, tmp_path):
        service = DataspaceService(directory=tmp_path / "store")
        service.load("d", "<r><x>1</x></r>")
        service.close()  # pool never created; nothing to shut down
        with pytest.raises(StoreError, match="closed"):
            service.query_all("//x")
