"""Tests for the FLWOR-lite layer."""

from fractions import Fraction

import pytest

from repro.core.engine import integrate
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.dbms.xq import evaluate_flwor, evaluate_flwor_ranked, parse_flwor
from repro.errors import XPathSyntaxError
from repro.xmlkit.parser import parse_document

DOC = parse_document(
    """
    <movies>
      <movie><title>Jaws</title><year>1975</year></movie>
      <movie><title>Heat</title><year>1995</year></movie>
      <movie><title>Casino</title><year>1995</year></movie>
    </movies>
    """
)


def texts(values):
    return [v.text() if hasattr(v, "text") else v for v in values]


class TestParsing:
    def test_minimal_query(self):
        query = parse_flwor("for $m in //movie return $m/title")
        assert [clause.kind for clause in query.clauses] == ["for"]

    def test_all_clauses(self):
        query = parse_flwor(
            'for $m in //movie let $t := $m/title where $m/year = "1995"'
            " order by $t descending return $t"
        )
        assert [c.kind for c in query.clauses] == ["for", "let", "where", "order-by"]
        assert query.clauses[3].descending

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "return 1",                       # no for clause
            "for $m in //movie",              # no return
            "for m in //movie return $m",     # missing $
            "let $x := 1 return $x",          # no for
            "junk for $m in //movie return $m",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(XPathSyntaxError):
            parse_flwor(text)

    def test_keyword_inside_string_not_a_clause(self):
        query = parse_flwor(
            'for $m in //movie where contains($m/title, "for") return $m/title'
        )
        assert [c.kind for c in query.clauses] == ["for", "where"]


class TestEvaluation:
    def test_for_return(self):
        result = evaluate_flwor(DOC, "for $m in //movie return $m/title")
        assert texts(result) == ["Jaws", "Heat", "Casino"]

    def test_where_filters(self):
        result = evaluate_flwor(
            DOC, 'for $m in //movie where $m/year = "1995" return $m/title'
        )
        assert texts(result) == ["Heat", "Casino"]

    def test_let_binds(self):
        result = evaluate_flwor(
            DOC,
            'for $m in //movie let $t := $m/title where $t = "Jaws" return $t',
        )
        assert texts(result) == ["Jaws"]

    def test_order_by(self):
        result = evaluate_flwor(
            DOC, "for $m in //movie order by $m/title return $m/title"
        )
        assert texts(result) == ["Casino", "Heat", "Jaws"]

    def test_order_by_descending(self):
        result = evaluate_flwor(
            DOC, "for $m in //movie order by $m/title descending return $m/title"
        )
        assert texts(result) == ["Jaws", "Heat", "Casino"]

    def test_numeric_order(self):
        result = evaluate_flwor(
            DOC, "for $m in //movie order by $m/year return $m/year"
        )
        assert texts(result) == ["1975", "1995", "1995"]

    def test_nested_for_cross_product(self):
        result = evaluate_flwor(
            DOC,
            "for $m in //movie for $y in $m/year return $y",
        )
        assert len(result) == 3

    def test_atomic_return(self):
        result = evaluate_flwor(DOC, "for $m in //movie return string($m/year)")
        assert result == ["1975", "1995", "1995"]


class TestProbabilisticFLWOR:
    def test_ranked_over_worlds(self):
        book_a, book_b = addressbook_documents()
        result = integrate(
            book_a, book_b,
            rules=[DeepEqualRule(), LeafValueRule()],
            dtd=ADDRESSBOOK_DTD,
        )
        answer = evaluate_flwor_ranked(
            result.document,
            'for $p in //person where $p/nm = "John" return $p/tel',
        )
        assert answer.probability_of("1111") == Fraction(3, 4)
        assert answer.probability_of("2222") == Fraction(3, 4)
