"""Tests for plain ↔ probabilistic conversion."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.errors import ModelError
from repro.pxml.build import (
    certain_document,
    certain_element,
    certain_prob,
    choice_prob,
    to_certain,
)
from repro.pxml.model import PXText
from repro.pxml.worlds import world_count
from repro.xmlkit.nodes import XDocument, deep_equal, element
from .conftest import xml_documents


class TestCertainConversion:
    def test_certain_document_roundtrip(self):
        doc = XDocument(element("r", element("a", "x"), element("b", "y")))
        back = to_certain(certain_document(doc))
        assert deep_equal(back.root, doc.root)

    def test_certain_document_one_world(self):
        doc = XDocument(element("r", element("a", "x")))
        assert world_count(certain_document(doc)) == 1

    def test_whitespace_text_dropped(self):
        doc = XDocument(element("r", "   ", element("a")))
        converted = certain_document(doc)
        back = to_certain(converted)
        assert len(back.root.children) == 1

    def test_attributes_preserved(self):
        doc = XDocument(element("r", k="v"))
        assert to_certain(certain_document(doc)).root.attributes == {"k": "v"}

    @given(xml_documents())
    def test_roundtrip_property(self, doc):
        assert deep_equal(to_certain(certain_document(doc)).root, doc.root)

    @given(xml_documents())
    def test_certain_docs_have_one_world(self, doc):
        assert world_count(certain_document(doc)) == 1


class TestChoiceProb:
    def test_builds_distribution(self):
        node = choice_prob([("1/3", [PXText("a")]), ("2/3", [PXText("b")])])
        assert [p.prob for p in node.possibilities] == [Fraction(1, 3), Fraction(2, 3)]

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            choice_prob([])


class TestToCertain:
    def test_uncertain_rejected(self):
        node = choice_prob([("1/2", [PXText("a")]), ("1/2", [PXText("b")])])
        with pytest.raises(ModelError):
            to_certain(node)

    def test_single_possibility_below_one_rejected(self):
        from repro.pxml.model import Possibility, ProbNode
        node = ProbNode([Possibility(Fraction(1, 2), [PXText("a")])])
        with pytest.raises(ModelError):
            to_certain(node)

    def test_certain_prob_unwraps_to_children(self):
        children = to_certain(certain_prob(certain_element(element("a", "x"))))
        assert len(children) == 1
        assert children[0].tag == "a"
