"""Self-healing tier benchmark: recovery time after a worker kill.

The supervision loop's promise (ISSUE 9): when a worker
dies mid-serving, the tier (a) keeps answering immediately — the router
reroutes the dead shard's documents to a surviving worker — and (b)
returns to full capacity once the supervisor respawns the child and the
health probe re-admits it.  This benchmark kills a worker under a warm
workload and measures both distances:

``reroute_seconds``
    Kill → every document in the corpus answers again (through reroute;
    502s are retried until the blip clears).
``readmission_seconds``
    Kill → supervisor reports the restart *and* the routing ring is back
    to full strength.

Acceptance: ``readmission_seconds`` ≤ the ceiling —
``BENCH_RECOVERY_MAX_SECONDS`` when set (CI matches its runner), else
15 s locally, generous against the 0.2 s probe interval used here so
only a genuinely wedged supervisor fails the build.

Correctness rides along: every post-recovery answer must be
Fraction-identical to its pre-kill twin.  The measured trajectory lands
in ``BENCH_recovery.json``.
"""

import os
import time

from repro.server.client import DataspaceClient, ServerError
from repro.server.multiproc import MultiProcServer

from .conftest import format_table, write_bench_json, write_result

WORKERS = int(os.environ.get("BENCH_RECOVERY_WORKERS", "2"))
DOC_COUNT = int(os.environ.get("BENCH_RECOVERY_DOCS", "8"))
MAX_SECONDS = float(os.environ.get("BENCH_RECOVERY_MAX_SECONDS", "15"))
PROBE_INTERVAL = 0.2
QUERIES = ["//x", "//y"]


def _shape(answer):
    return [(item.value, item.probability, item.occurrences) for item in answer]


def test_recovery_after_worker_kill(tmp_path):
    store, cache = tmp_path / "store", tmp_path / "cache"
    store.mkdir()
    cache.mkdir()
    tier = MultiProcServer(
        store, workers=WORKERS, cache_dir=cache,
        probe_interval=PROBE_INTERVAL, backoff_initial=0.05,
    )
    host, port = tier.start()
    client = DataspaceClient(host, port, timeout=30)
    try:
        for index in range(DOC_COUNT):
            client.load(
                f"src{index}",
                f"<r><x>{index % 4}</x><x>1</x><y>{index}</y></r>",
            )
        expected = {}
        for index in range(DOC_COUNT):
            for query in QUERIES:
                expected[(index, query)] = _shape(
                    client.query(f"src{index}", query)
                )

        victim = tier.workers[0]
        victim.proc.kill()
        victim.proc.wait(10)
        killed_at = time.perf_counter()

        # Distance (a): every document answers again, Fraction-identical,
        # rerouted around the dead shard while the respawn is in flight.
        for index in range(DOC_COUNT):
            for query in QUERIES:
                while True:
                    try:
                        shape = _shape(client.query(f"src{index}", query))
                        break
                    except ServerError as error:
                        assert error.status == 502, error
                        assert (
                            time.perf_counter() - killed_at < MAX_SECONDS
                        ), f"src{index} still failing after {MAX_SECONDS:g}s"
                        time.sleep(0.02)
                assert shape == expected[(index, query)]
        reroute_seconds = time.perf_counter() - killed_at

        # Distance (b): respawned, probed healthy, ring at full strength.
        while True:
            stats = client.stats()
            if (
                stats["supervisor"]["restarts"] >= 1
                and len(stats["ring"]["available"]) == WORKERS
            ):
                break
            assert (
                time.perf_counter() - killed_at < MAX_SECONDS
            ), f"worker not re-admitted after {MAX_SECONDS:g}s"
            time.sleep(0.05)
        readmission_seconds = time.perf_counter() - killed_at

        for index in range(DOC_COUNT):
            for query in QUERIES:
                assert (
                    _shape(client.query(f"src{index}", query))
                    == expected[(index, query)]
                )
    finally:
        client.close()
        tier.stop()

    write_result(
        "recovery",
        f"Self-healing tier — recovery after a worker kill"
        f" ({WORKERS} workers, {DOC_COUNT} documents,"
        f" probe every {PROBE_INTERVAL:g}s,"
        f" ceiling {MAX_SECONDS:g}s, {os.cpu_count()} cores)\n"
        + format_table(
            ["distance", "seconds"],
            [
                ["kill -> all documents re-serve (reroute)",
                 f"{reroute_seconds:7.3f}"],
                ["kill -> respawned worker re-admitted",
                 f"{readmission_seconds:7.3f}"],
            ],
        ),
    )
    write_bench_json(
        "recovery",
        {
            "workers": WORKERS,
            "documents": DOC_COUNT,
            "probe_interval": PROBE_INTERVAL,
            "cores": os.cpu_count(),
            "reroute_seconds": round(reroute_seconds, 3),
            "readmission_seconds": round(readmission_seconds, 3),
            "max_seconds": MAX_SECONDS,
        },
    )

    assert readmission_seconds <= MAX_SECONDS, (
        f"worker re-admission took {readmission_seconds:.2f}s,"
        f" above the {MAX_SECONDS:g}s acceptance ceiling"
    )
