"""§V typical conditions: 6 MPEG-7 movies (1995) vs 60 IMDB movies.

Paper: two movies refer to the same real-world object; "only on two
occasions 'The Oracle' could not make an absolute decision.  The
integrated document of about 3500 nodes compactly stores the resulting 4
possible worlds."
"""

from repro.experiments import run_typical, typical_sources
from repro.core.estimate import estimate_integration
from repro.experiments import movie_config

from .conftest import format_table, write_result


def test_sec5_typical_conditions(benchmark):
    result = benchmark.pedantic(run_typical, rounds=3, iterations=1)
    report = result.report

    assert report.undecided_pairs == 2, "paper: two undecided occasions"
    assert report.world_count == 4, "paper: 4 possible worlds"
    assert 2000 <= report.total_nodes <= 5000, "paper: about 3500 nodes"

    rows = [
        ["undecided oracle decisions", "2", str(report.undecided_pairs)],
        ["possible worlds", "4", str(report.world_count)],
        ["integrated document nodes", "~3500", f"{report.total_nodes:,}"],
        ["pairs judged", "—", str(report.pairs_judged)],
        ["certain matches", "—", str(report.certain_matches)],
        ["certain non-matches", "—", str(report.certain_non_matches)],
    ]
    write_result(
        "sec5_typical",
        "§V typical conditions — 6 (MPEG-7, 1995) vs 60 (IMDB),"
        " full rule set (genre+title+year)\n"
        + format_table(["metric", "paper", "measured"], rows),
    )


def test_sec5_confusing_vs_typical_jump(benchmark):
    """Paper: 'the size of the integration result jumps from 3500 nodes to
    1,5 million' when the same 6-vs-60 integration runs under confusing
    conditions — reproduce the jump (exact estimator, joint form)."""
    from repro.experiments import figure5_sources

    def measure():
        typical = run_typical().report.total_nodes
        source_a, source_b = figure5_sources(60)
        confusing = estimate_integration(
            source_a, source_b, movie_config("genre", "title", "year",
                                             factor_components=False)
        ).total_nodes
        return typical, confusing

    typical_nodes, confusing_nodes = benchmark.pedantic(
        measure, rounds=2, iterations=1
    )
    assert confusing_nodes > 50 * typical_nodes, "confusion must cost orders more"
    write_result(
        "sec5_jump",
        "§V typical-vs-confusing jump (6 vs 60, full rules)\n"
        + format_table(
            ["condition", "paper nodes", "measured nodes"],
            [
                ["typical", "~3,500", f"{typical_nodes:,}"],
                ["confusing", "~1,500,000", f"{confusing_nodes:,}"],
                ["jump", "~430x", f"{confusing_nodes / typical_nodes:,.0f}x"],
            ],
        ),
    )
