"""HTTP dataspace front benchmark: warm-cache serving throughput.

The cost model the network front must honor: once a workload is priced
and persisted, serving it again is SQLite lookup + JSON — so requests/s
over real HTTP should be bounded by wire overhead, not by probabilistic
evaluation.  This benchmark measures a warm workload three ways:

* in-process ``service.query`` calls (the no-network ceiling),
* sequential HTTP requests over one keep-alive connection,
* concurrent HTTP requests (several client threads, one connection
  each — the shape a dashboard fan-out produces).

Acceptance (ISSUE 3): warm HTTP throughput ≥ a conservative floor
(``BENCH_HTTP_RPS_FLOOR``, default 25 req/s — local machines measure
hundreds to thousands), with every HTTP answer Fraction-identical to
the in-process answer.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.rules import Decision, DeepEqualRule, LeafValueRule, PredicateRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.dbms.service import DataspaceService
from repro.server.app import ServerApp
from repro.server.client import DataspaceClient
from repro.server.http import BackgroundServer

from .conftest import format_table, write_bench_json, write_result

#: Conservative floor for shared CI runners; local machines clear it by
#: one to two orders of magnitude.
RPS_FLOOR = float(os.environ.get("BENCH_HTTP_RPS_FLOOR", "25"))

ROUNDS = int(os.environ.get("BENCH_HTTP_ROUNDS", "30"))
CLIENT_THREADS = 4

PERSON_COUNT = 6

WORKLOAD = [
    "//person/nm",
    "//person/tel",
    '//person[contains(nm, "p1")]/tel',
    '//person[nm="p0"]/tel',
]


def _shape(answer):
    return [(item.value, item.probability, item.occurrences) for item in answer]


def _different_names_differ(a, b, context):
    """Different names ⇒ different people; same name stays uncertain
    (keeps the 6-person matching at 3^6 worlds instead of exploding)."""
    name_a, name_b = a.find("nm"), b.find("nm")
    if name_a is None or name_b is None:
        return None
    if name_a.text() != name_b.text():
        return Decision.NO_MATCH
    return None


RULES = [
    DeepEqualRule(),
    PredicateRule("name-discriminates", _different_names_differ, tags=("person",)),
    LeafValueRule(),
]


def _populate(store_dir, cache_dir):
    entries_a = [(f"p{i}", f"1{i}1") for i in range(PERSON_COUNT)]
    entries_b = [(f"p{i}", f"2{i}2") for i in range(PERSON_COUNT)]
    book_a, book_b = addressbook_documents(entries_a, entries_b)
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
        service.load_document("a", book_a)
        service.load_document("b", book_b)
        service.integrate("a", "b", "ab", rules=RULES, dtd=ADDRESSBOOK_DTD)
        for query in WORKLOAD:
            service.query("ab", query)  # price once: everything below is warm


def test_http_warm_throughput(tmp_path):
    store_dir, cache_dir = tmp_path / "store", tmp_path / "cache"
    _populate(store_dir, cache_dir)

    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
        app = ServerApp(service)
        with BackgroundServer(app) as background:
            host, port = background.server.host, background.server.port

            # In-process ceiling (same warm persistent cache).
            start = time.perf_counter()
            for _ in range(ROUNDS):
                for query in WORKLOAD:
                    service.query("ab", query)
            in_process_time = time.perf_counter() - start

            with DataspaceClient(host, port) as client:
                # Correctness first: HTTP answers == in-process answers.
                for query in WORKLOAD:
                    assert _shape(client.query("ab", query)) == _shape(
                        service.query("ab", query)
                    )

                start = time.perf_counter()
                for _ in range(ROUNDS):
                    for query in WORKLOAD:
                        client.query("ab", query)
                sequential_time = time.perf_counter() - start

            def hammer(thread_index):
                with DataspaceClient(host, port) as thread_client:
                    for _ in range(ROUNDS):
                        for query in WORKLOAD:
                            thread_client.query("ab", query)

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
                list(pool.map(hammer, range(CLIENT_THREADS)))
            concurrent_time = time.perf_counter() - start
        app.close()

    requests = ROUNDS * len(WORKLOAD)
    in_process_rps = requests / in_process_time if in_process_time else float("inf")
    sequential_rps = requests / sequential_time if sequential_time else float("inf")
    concurrent_rps = (
        requests * CLIENT_THREADS / concurrent_time
        if concurrent_time
        else float("inf")
    )

    write_result(
        "http_server",
        f"HTTP dataspace front — warm-cache serving throughput"
        f" ({len(WORKLOAD)} queries × {ROUNDS} rounds,"
        f" 3^{PERSON_COUNT}-world document, floor {RPS_FLOOR:g} req/s)\n"
        + format_table(
            ["mode", "requests", "total time", "throughput"],
            [
                ["in-process (no network)", f"{requests}",
                 f"{in_process_time * 1e3:8.1f} ms", f"{in_process_rps:10.0f} req/s"],
                ["http sequential (1 conn)", f"{requests}",
                 f"{sequential_time * 1e3:8.1f} ms", f"{sequential_rps:10.0f} req/s"],
                [f"http concurrent ({CLIENT_THREADS} conns)",
                 f"{requests * CLIENT_THREADS}",
                 f"{concurrent_time * 1e3:8.1f} ms", f"{concurrent_rps:10.0f} req/s"],
            ],
        ),
    )
    write_bench_json(
        "http_server",
        {
            "rounds": ROUNDS,
            "client_threads": CLIENT_THREADS,
            "requests": requests,
            "in_process_rps": round(in_process_rps, 1),
            "sequential_rps": round(sequential_rps, 1),
            "concurrent_rps": round(concurrent_rps, 1),
            "floor_rps": RPS_FLOOR,
        },
    )

    assert sequential_rps >= RPS_FLOOR, (
        f"warm HTTP throughput {sequential_rps:.0f} req/s below the"
        f" {RPS_FLOOR:g} req/s acceptance floor"
    )
    assert concurrent_rps >= RPS_FLOOR, (
        f"concurrent warm HTTP throughput {concurrent_rps:.0f} req/s below"
        f" the {RPS_FLOOR:g} req/s acceptance floor"
    )
