"""Ablation A3: compaction passes on integration outputs.

Measures how much :mod:`repro.pxml.simplify` shrinks real integration
results (duplicate possibilities, factorable common content), and that the
distribution over worlds is untouched.
"""

import pytest

from repro.core.engine import Integrator
from repro.experiments import movie_config, section6_sources, table1_sources
from repro.pxml.simplify import simplify_fixpoint
from repro.pxml.worlds import world_count

from .conftest import format_table, write_result

WORKLOADS = {
    "table1 full rules (joint)": (
        table1_sources, ("genre", "title", "year"), False
    ),
    "table1 title rule (joint)": (table1_sources, ("title",), False),
    "section6 (factored)": (section6_sources, ("genre", "title"), True),
}

_rows: list[list[str]] = []


@pytest.mark.parametrize("label", list(WORKLOADS), ids=list(WORKLOADS))
def test_simplify_ablation(benchmark, label):
    sources_fn, rule_names, factored = WORKLOADS[label]
    source_a, source_b = sources_fn()
    config = movie_config(*rule_names, factor_components=factored,
                          max_possibilities=50_000)
    document = Integrator(config).integrate(source_a, source_b).document

    simplified, report = benchmark(simplify_fixpoint, document)

    assert world_count(simplified) <= world_count(document)
    assert simplified.node_count() <= document.node_count()
    _rows.append(
        [
            label,
            f"{report.nodes_before:,}",
            f"{report.nodes_after:,}",
            str(report.duplicates_merged),
            str(report.common_factored),
        ]
    )
    if len(_rows) == len(WORKLOADS):
        write_result(
            "ablation_simplify",
            "Ablation A3 — compaction of integration outputs\n"
            + format_table(
                ["workload", "nodes before", "nodes after",
                 "duplicates merged", "common factored"],
                _rows,
            ),
        )
