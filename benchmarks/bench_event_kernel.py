"""Kernel ablation: hash-consed + independence-decomposed probability
kernel vs the PR-3 pure-Shannon-expansion kernel.

The PR-4 kernel (``repro.pxml.events.event_probability``) prices the
production query shape — an OR of occurrence conjunctions over disjoint
subtrees — as a linear product (``P(∨ parts) = 1 − ∏ (1 − P(part))``
over variable-disjoint components) instead of expanding it.  The PR-3
kernel is preserved verbatim in ``repro.pxml.events_reference`` as the
baseline; both must return bit-identical Fractions.

Since PR 10 the bench also races the *compiled* top-down path
(``repro.pxml.events_compile``) against the bottom-up kernel on a
corpus-wide fan-out: the same plan shape priced across many documents
with one shared :class:`LiteralProbabilityTable`, so literal and
small-conjunction rows warmed by the first pass answer the rest.

Acceptance (asserted, after the JSON record is written so a noisy
runner never loses the trajectory point):

* ≥ ``BENCH_KERNEL_SPEEDUP_FLOOR`` (default 5×) on the independent-OR
  workload, Fraction-identical results in both modes;
* ≥ ``BENCH_COMPILED_WARM_FLOOR`` (default 2×) for warm compiled
  corpus-wide pricing vs per-document bottom-up pricing,
  Fraction-identical answers;
* a 2,600-deep / 5,200-literal chain prices through the worklist
  evaluator without ``RecursionError`` (the PR-3 kernel cannot price it
  at all — that side is reported, not raced).
"""

import os
import time
from fractions import Fraction

from repro.pxml.build import choice_prob
from repro.pxml.events import all_of, any_of, event_probability, lit
from repro.pxml.events_compile import (
    LiteralProbabilityTable,
    compile_event,
    compiled_probability,
)
from repro.pxml.events_reference import expansion_probability
from repro.pxml.model import PXText

from .conftest import format_table, write_bench_json, write_result

#: Acceptance floor for the kernel speedup.  Locally the measured ratio
#: is ~40× on the asserted workload; shared CI runners are noisy enough
#: that wall-clock ratios can dip on scheduler stalls, so CI sets a
#: lower sanity floor via this env var instead of flaking.
SPEEDUP_FLOOR = float(os.environ.get("BENCH_KERNEL_SPEEDUP_FLOOR", "5"))

#: Acceptance floor for warm compiled corpus-wide pricing vs bottom-up.
#: Locally the measured ratio is well above 2× (warm pricing is mostly
#: table lookups); CI can lower it on noisy runners.
COMPILED_WARM_FLOOR = float(os.environ.get("BENCH_COMPILED_WARM_FLOOR", "2"))

#: The compiled fan-out workload: this many same-shaped documents, each
#: an OR of independent conjunctions over fresh choice variables.
CORPUS_DOCUMENTS = 24

#: The asserted workload: an OR of M independent K-literal conjunctions
#: over fresh 3-way choice variables (M·K variables total).
CONJUNCTIONS = 24
LITERALS_PER_CONJUNCTION = 4

#: Smaller/larger sizes reported alongside for the trajectory file.
SWEEP = [(12, 3), (24, 4), (40, 5)]

ROUNDS = 3


def _ternary():
    third = Fraction(1, 3)
    return choice_prob(
        [(third, [PXText("a")]), (third, [PXText("b")]), (third, [PXText("c")])]
    )


def build_independent_or(conjunctions: int, literals: int):
    """OR of ``conjunctions`` conjunctions of ``literals`` fresh choices."""
    groups = [[_ternary() for _ in range(literals)] for _ in range(conjunctions)]
    event = any_of([all_of([lit(node, 0) for node in group]) for group in groups])
    closed_form = 1 - (1 - Fraction(1, 3) ** literals) ** conjunctions
    return event, closed_form


def _time_best_of(rounds: int, func, *args):
    """Best-of-N wall time (and the last result): each call prices with a
    fresh memo, so repeats measure the kernel, not the cache."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def build_deep_chain(depth: int):
    """An alternating ∧/∨ chain with fresh variables at every level —
    ``2 · depth`` literals, nested ``depth`` levels deep.  Decomposes to
    a linear product; recursive kernels blow Python's stack on it."""
    event = lit(_ternary(), 0)
    for _ in range(depth):
        event = any_of([all_of([event, lit(_ternary(), 0)]), lit(_ternary(), 1)])
    return event


def test_kernel_speedup_on_independent_or():
    """Acceptance: the PR-4 kernel is ≥5× the PR-3 expansion kernel on
    OR-of-independent-conjunctions, with identical Fractions."""
    sweep_rows = []
    sweep_records = []
    mismatches = []
    asserted_speedup = None
    for conjunctions, literals in SWEEP:
        event, closed_form = build_independent_or(conjunctions, literals)
        reference_time, reference_prob = _time_best_of(
            ROUNDS, expansion_probability, event
        )
        kernel_time, kernel_prob = _time_best_of(ROUNDS, event_probability, event)
        if kernel_prob != reference_prob:
            mismatches.append(f"{conjunctions}×{literals}: kernel != reference")
        if kernel_prob != closed_form:
            mismatches.append(f"{conjunctions}×{literals}: kernel != closed form")
        speedup = reference_time / kernel_time if kernel_time else float("inf")
        if (conjunctions, literals) == (CONJUNCTIONS, LITERALS_PER_CONJUNCTION):
            asserted_speedup = speedup
        sweep_rows.append(
            [
                f"{conjunctions}×{literals}",
                f"{conjunctions * literals}",
                f"{reference_time * 1e3:8.2f} ms",
                f"{kernel_time * 1e3:8.2f} ms",
                f"{speedup:.1f}×",
            ]
        )
        sweep_records.append(
            {
                "conjunctions": conjunctions,
                "literals_per_conjunction": literals,
                "variables": conjunctions * literals,
                "reference_seconds": reference_time,
                "kernel_seconds": kernel_time,
                "speedup": speedup,
                "probability": float(kernel_prob),
            }
        )

    write_result(
        "bench_event_kernel",
        "Kernel ablation — OR of independent conjunctions, PR-3 expansion"
        f" vs PR-4 decomposition (best of {ROUNDS}, fresh memo per round)\n"
        + format_table(
            ["workload", "vars", "PR-3 kernel", "PR-4 kernel", "speedup"],
            sweep_rows,
        ),
    )
    write_bench_json(
        "event_kernel",
        {
            "workload": "or_of_independent_conjunctions",
            "rounds": ROUNDS,
            "sweep": sweep_records,
            "asserted": {
                "conjunctions": CONJUNCTIONS,
                "literals_per_conjunction": LITERALS_PER_CONJUNCTION,
                "speedup": asserted_speedup,
                "floor": SPEEDUP_FLOOR,
            },
        },
    )
    # Asserts run *after* the record lands: a floor miss on a noisy
    # runner still leaves the trajectory point on disk.
    assert not mismatches, "; ".join(mismatches)
    assert asserted_speedup is not None
    assert asserted_speedup >= SPEEDUP_FLOOR, (
        f"kernel speedup {asserted_speedup:.1f}× below the"
        f" {SPEEDUP_FLOOR}× acceptance floor"
    )


def test_compiled_corpus_fanout_speedup():
    """Acceptance: warm compiled pricing of a same-shaped corpus through
    one shared literal table is ≥2× per-document bottom-up pricing,
    Fraction-identical answers.

    Models :meth:`DataspaceService.query_all`: the same plan priced
    across ``CORPUS_DOCUMENTS`` documents.  Every document has fresh
    choice variables (fresh literal rows) but identical probabilities,
    so the value-keyed small-conjunction rows warmed by the first
    document answer the other 23 — and a warm second pass is lookups
    nearly end to end."""
    conjunctions, literals = CONJUNCTIONS, LITERALS_PER_CONJUNCTION
    corpus = [
        build_independent_or(conjunctions, literals)[0]
        for _ in range(CORPUS_DOCUMENTS)
    ]
    compiled = [compile_event(event) for event in corpus]
    table = LiteralProbabilityTable()

    def price_bottom_up():
        return [event_probability(event) for event in corpus]

    def price_compiled():
        return [
            compiled_probability(plan, table=table) for plan in compiled
        ]

    price_compiled()  # warm the shared table once
    bottom_up_time, bottom_up_probs = _time_best_of(ROUNDS, price_bottom_up)
    compiled_time, compiled_probs = _time_best_of(ROUNDS, price_compiled)
    speedup = bottom_up_time / compiled_time if compiled_time else float("inf")
    stats = table.stats()

    write_result(
        "bench_event_compile",
        "Compiled corpus fan-out — "
        f"{CORPUS_DOCUMENTS} documents × ({conjunctions}×{literals})"
        f" (best of {ROUNDS}, shared literal table, warm)\n"
        + format_table(
            ["leg", "corpus pass", "speedup"],
            [
                ["bottom-up", f"{bottom_up_time * 1e3:8.2f} ms", "1.0×"],
                ["compiled+table", f"{compiled_time * 1e3:8.2f} ms", f"{speedup:.1f}×"],
            ],
        ),
    )
    write_bench_json(
        "event_compile_fanout",
        {
            "workload": "corpus_fanout_or_of_independent_conjunctions",
            "documents": CORPUS_DOCUMENTS,
            "conjunctions": conjunctions,
            "literals_per_conjunction": literals,
            "rounds": ROUNDS,
            "bottom_up_seconds": bottom_up_time,
            "compiled_seconds": compiled_time,
            "speedup": speedup,
            "floor": COMPILED_WARM_FLOOR,
            "literal_hits": stats["literal_hits"],
            "conjunction_hits": stats["conjunction_hits"],
            "product_hits": stats["product_hits"],
        },
    )
    assert compiled_probs == bottom_up_probs, (
        "compiled corpus pricing disagrees with bottom-up"
    )
    assert stats["product_hits"] > 0, "cross-document product rows never hit"
    assert speedup >= COMPILED_WARM_FLOOR, (
        f"warm compiled fan-out speedup {speedup:.1f}× below the"
        f" {COMPILED_WARM_FLOOR}× acceptance floor"
    )


def test_deep_chain_prices_without_recursion():
    """Acceptance: a 5,200-literal event nested 2,600 levels deep prices
    exactly — far past the default recursion limit the PR-3 kernel (and
    the PR-3 event constructors) lived under."""
    depth = 2_600
    start = time.perf_counter()
    event = build_deep_chain(depth)
    build_time = time.perf_counter() - start
    start = time.perf_counter()
    probability = event_probability(event)
    price_time = time.perf_counter() - start
    assert 0 < probability < 1
    # Closed form by the same recurrence, over plain Fractions:
    # p_{i+1} = 1 − (1 − p_i · 1/3) · (1 − 1/3).
    expected = Fraction(1, 3)
    third = Fraction(1, 3)
    for _ in range(depth):
        expected = 1 - (1 - expected * third) * (1 - third)
    assert probability == expected
    write_bench_json(
        "event_kernel_deep_chain",
        {
            "workload": "alternating_and_or_chain",
            "depth": depth,
            "literals": 2 * depth + 1,
            "build_seconds": build_time,
            "price_seconds": price_time,
            "probability": float(probability),
        },
    )
