"""Table I: effect of rules on uncertainty (#nodes of the integration).

Paper (×1000 nodes): none 13 958 → genre 6 015 → title 243 →
genre+title 154 → genre+title+year 29.

The workload is the sequels-six experiment (2 Jaws + 2 Die Hard + 2 M:I
per source, one shared real-world object per franchise) in the joint
(unfactored) representation the original system used.  Node counts come
from the exact analytic estimator — identical to materialisation, which
the harness double-checks on every row small enough to build.
"""

import pytest

from repro.core.engine import Integrator
from repro.core.estimate import estimate_integration
from repro.experiments import (
    TABLE1_PAPER_NODES_X1000,
    TABLE1_ROWS,
    table1_config,
    table1_sources,
)
from repro.pxml.stats import tree_stats

from .conftest import format_table, write_result

#: Rows cheap enough to materialise inside the timing loop.
MATERIALIZABLE = {"Movie title rule", "Genre and movie title rule",
                  "Genre, movie title and year rule"}

_collected: list[list[str]] = []


@pytest.mark.parametrize(
    "label,rule_names,paper_x1000",
    [
        (label, names, paper)
        for (label, names), paper in zip(TABLE1_ROWS, TABLE1_PAPER_NODES_X1000)
    ],
    ids=[label for label, _ in TABLE1_ROWS],
)
def test_table1_row(benchmark, label, rule_names, paper_x1000):
    source_a, source_b = table1_sources()
    config = table1_config(rule_names)

    estimate = benchmark(estimate_integration, source_a, source_b, config)

    if label in MATERIALIZABLE:
        result = Integrator(config).integrate(source_a, source_b)
        stats = tree_stats(result.document)
        assert stats.total == estimate.total_nodes
        assert stats.world_count == estimate.world_count

    _collected.append(
        [
            label,
            f"{paper_x1000 * 1000:,}",
            f"{estimate.total_nodes:,}",
            f"{estimate.possibility_count:,}",
            f"{estimate.world_count:,}",
        ]
    )
    # Shape assertions: monotone reduction in the paper's row order.
    if len(_collected) > 1:
        previous = int(_collected[-2][2].replace(",", ""))
        current = int(_collected[-1][2].replace(",", ""))
        assert current < previous, "each added rule must shrink the result"

    if len(_collected) == len(TABLE1_ROWS):
        table = format_table(
            ["rule set", "paper nodes", "measured nodes", "matchings", "worlds"],
            _collected,
        )
        reduction_paper = TABLE1_PAPER_NODES_X1000[0] / TABLE1_PAPER_NODES_X1000[-1]
        first = int(_collected[0][2].replace(",", ""))
        last = int(_collected[-1][2].replace(",", ""))
        write_result(
            "table1_rules",
            "Table I — effect of rules on uncertainty (sequels six-vs-six,"
            " joint representation)\n"
            + table
            + f"\n\ntotal reduction: paper {reduction_paper:.0f}x,"
              f" measured {first / last:.0f}x",
        )
