"""Ablation A2: event-based query evaluation vs world enumeration.

The reference semantics evaluates the query in every possible world —
exponential in the number of choice points.  The event engine compiles
the query into boolean events and computes exact probabilities without
touching worlds.  This ablation times both on documents with a growing
number of independent uncertain persons (worlds = 3^n).
"""

import pytest

from repro.core.engine import integrate
from repro.core.rules import Decision, DeepEqualRule, LeafValueRule, PredicateRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.pxml.worlds import world_count
from repro.query.engine import ProbQueryEngine, query_enumeration

from .conftest import format_table, write_result


def _different_names_differ(a, b, context):
    """Different names ⇒ different people; same name stays uncertain."""
    name_a, name_b = a.find("nm"), b.find("nm")
    if name_a is None or name_b is None:
        return None
    if name_a.text() != name_b.text():
        return Decision.NO_MATCH
    return None


RULES = [
    DeepEqualRule(),
    PredicateRule("name-discriminates", _different_names_differ, tags=("person",)),
    LeafValueRule(),
]
QUERY = '//person[some $t in tel satisfies contains($t, "1")]/nm'


def build_document(person_count: int):
    """n independently-uncertain persons → 3^n possible worlds."""
    entries_a = [(f"p{i}", f"1{i}1") for i in range(person_count)]
    entries_b = [(f"p{i}", f"2{i}2") for i in range(person_count)]
    book_a, book_b = addressbook_documents(entries_a, entries_b)
    return integrate(book_a, book_b, rules=RULES, dtd=ADDRESSBOOK_DTD).document


@pytest.mark.parametrize("person_count", [2, 4, 6, 8])
def test_event_engine(benchmark, person_count):
    document = build_document(person_count)
    answer = benchmark(ProbQueryEngine(document).query, QUERY)
    assert len(answer) == person_count


@pytest.mark.parametrize("person_count", [2, 4, 6])
def test_enumeration_engine(benchmark, person_count):
    document = build_document(person_count)
    answer = benchmark(query_enumeration, document, QUERY)
    assert len(answer) == person_count


def test_agreement_at_scale(benchmark):
    document = build_document(7)
    assert world_count(document) == 3**7

    def both():
        event_based = ProbQueryEngine(document).query(QUERY)
        enumerated = query_enumeration(document, QUERY)
        return event_based, enumerated

    event_based, enumerated = benchmark.pedantic(both, rounds=2, iterations=1)
    assert {i.value: i.probability for i in event_based} == {
        i.value: i.probability for i in enumerated
    }
    write_result(
        "ablation_query_eval",
        "Ablation A2 — event-based vs per-world evaluation agree on a"
        f" {3**7:,}-world document (see pytest-benchmark timings for the"
        " asymptotic gap)\n"
        + format_table(
            ["engine", "answers"],
            [["event-based", str(len(event_based))],
             ["enumeration", str(len(enumerated))]],
        ),
    )
