"""Ablation A2: event-based query evaluation vs world enumeration,
and cached vs uncached repeated-query workloads.

The reference semantics evaluates the query in every possible world —
exponential in the number of choice points.  The event engine compiles
the query into boolean events and computes exact probabilities without
touching worlds.  This ablation times both on documents with a growing
number of independent uncertain persons (worlds = 3^n).

The second ablation exercises the plan/cache subsystem: a repeated-query
workload (the production shape — dashboards and APIs re-issue the same
queries against one integration) with the per-document cache enabled vs
disabled.  Answers must be identical Fractions; the cached mode must be
at least 5× faster.
"""

import os
import time

import pytest

from repro.core.engine import integrate
from repro.core.rules import Decision, DeepEqualRule, LeafValueRule, PredicateRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.pxml.events_cache import EventProbabilityCache
from repro.pxml.worlds import world_count
from repro.query.engine import ProbQueryEngine, QueryEngine, query_enumeration

from .conftest import format_table, write_bench_json, write_result


def _different_names_differ(a, b, context):
    """Different names ⇒ different people; same name stays uncertain."""
    name_a, name_b = a.find("nm"), b.find("nm")
    if name_a is None or name_b is None:
        return None
    if name_a.text() != name_b.text():
        return Decision.NO_MATCH
    return None


RULES = [
    DeepEqualRule(),
    PredicateRule("name-discriminates", _different_names_differ, tags=("person",)),
    LeafValueRule(),
]
QUERY = '//person[some $t in tel satisfies contains($t, "1")]/nm'


def build_document(person_count: int):
    """n independently-uncertain persons → 3^n possible worlds."""
    entries_a = [(f"p{i}", f"1{i}1") for i in range(person_count)]
    entries_b = [(f"p{i}", f"2{i}2") for i in range(person_count)]
    book_a, book_b = addressbook_documents(entries_a, entries_b)
    return integrate(book_a, book_b, rules=RULES, dtd=ADDRESSBOOK_DTD).document


@pytest.mark.parametrize("person_count", [2, 4, 6, 8])
def test_event_engine(benchmark, person_count):
    document = build_document(person_count)
    # use_cache=False: time the evaluation itself, not cache hits (the
    # cached hot path has its own ablation below).
    engine = ProbQueryEngine(document, use_cache=False)
    answer = benchmark(engine.query, QUERY)
    assert len(answer) == person_count


@pytest.mark.parametrize("person_count", [2, 4, 6, 8])
def test_event_engine_cached(benchmark, person_count):
    """The cached hot path: repeated executions resolve from the
    per-document answer cache."""
    document = build_document(person_count)
    engine = ProbQueryEngine(document)
    answer = benchmark(engine.query, QUERY)
    assert len(answer) == person_count


@pytest.mark.parametrize("person_count", [2, 4, 6])
def test_enumeration_engine(benchmark, person_count):
    document = build_document(person_count)
    answer = benchmark(query_enumeration, document, QUERY)
    assert len(answer) == person_count


def test_agreement_at_scale(benchmark):
    document = build_document(7)
    assert world_count(document) == 3**7

    def both():
        event_based = ProbQueryEngine(document).query(QUERY)
        enumerated = query_enumeration(document, QUERY)
        return event_based, enumerated

    event_based, enumerated = benchmark.pedantic(both, rounds=2, iterations=1)
    assert {i.value: i.probability for i in event_based} == {
        i.value: i.probability for i in enumerated
    }
    write_result(
        "ablation_query_eval",
        "Ablation A2 — event-based vs per-world evaluation agree on a"
        f" {3**7:,}-world document (see pytest-benchmark timings for the"
        " asymptotic gap)\n"
        + format_table(
            ["engine", "answers"],
            [["event-based", str(len(event_based))],
             ["enumeration", str(len(enumerated))]],
        ),
    )


# -- cached vs uncached repeated-query workload --------------------------------

#: A small workload of distinct queries; the repetition (not the variety)
#: is what the cache amortizes.
WORKLOAD = [
    QUERY,
    "//person/nm",
    "//person/tel",
    '//person[contains(nm, "p1")]/tel',
    "//person[not(tel)]/nm",
]
REPEATS = 20

#: Acceptance floor for the cached-vs-uncached speedup.  Locally the
#: measured ratio is well above 10×; shared CI runners are noisy enough
#: that wall-clock ratios can dip on scheduler stalls, so CI sets a
#: lower sanity floor via this env var instead of flaking.
SPEEDUP_FLOOR = float(os.environ.get("BENCH_SPEEDUP_FLOOR", "5"))


def _run_workload_uncached(document):
    answers = []
    for _ in range(REPEATS):
        # Fresh engine, no shared cache: every repetition pays the full
        # traversal and Shannon expansion — the seed behaviour.
        engine = QueryEngine(document, use_cache=False)
        answers.append([engine.run(query) for query in WORKLOAD])
    return answers


def _run_workload_cached(document, cache):
    # One long-lived engine — the deployment shape: plans compile once,
    # the per-document cache stays hot across rounds.
    engine = QueryEngine(document, cache=cache)
    answers = []
    for _ in range(REPEATS):
        answers.append(engine.run_batch(WORKLOAD))
    return answers


def test_cached_vs_uncached_repeated_workload():
    """Acceptance: ≥5× on a repeated-query workload with the cache on,
    with identical (Fraction-equal) answers in both modes."""
    document = build_document(6)

    start = time.perf_counter()
    uncached = _run_workload_uncached(document)
    uncached_time = time.perf_counter() - start

    cache = EventProbabilityCache()
    start = time.perf_counter()
    cached = _run_workload_cached(document, cache)
    cached_time = time.perf_counter() - start

    # Exact agreement, round by round, query by query, Fraction by Fraction.
    for round_uncached, round_cached in zip(uncached, cached):
        for answer_uncached, answer_cached in zip(round_uncached, round_cached):
            assert {i.value: i.probability for i in answer_uncached} == {
                i.value: i.probability for i in answer_cached
            }

    speedup = uncached_time / cached_time if cached_time else float("inf")
    write_result(
        "ablation_query_cache",
        f"Ablation A2b — repeated-query workload ({len(WORKLOAD)} queries ×"
        f" {REPEATS} rounds, 3^6-world document), cache off vs on\n"
        + format_table(
            ["mode", "total time", "per round", "speedup"],
            [
                ["uncached", f"{uncached_time * 1e3:8.1f} ms",
                 f"{uncached_time / REPEATS * 1e3:6.2f} ms", "1.0×"],
                ["cached", f"{cached_time * 1e3:8.1f} ms",
                 f"{cached_time / REPEATS * 1e3:6.2f} ms", f"{speedup:.1f}×"],
            ],
        )
        + f"\ncache stats: {cache.stats()}",
    )
    write_bench_json(
        "ablation_query_cache",
        {
            "workload": "repeated_query_workload",
            "queries": len(WORKLOAD),
            "rounds": REPEATS,
            "uncached_seconds": uncached_time,
            "cached_seconds": cached_time,
            "speedup": speedup,
            "floor": SPEEDUP_FLOOR,
            "cache_stats": cache.stats(),
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"cache speedup {speedup:.1f}× below the {SPEEDUP_FLOOR}× acceptance"
        f" floor (uncached {uncached_time:.3f}s vs cached {cached_time:.3f}s)"
    )


def test_batch_vs_loop_single_pass(benchmark):
    """run_batch on a cold cache vs a per-query loop on a cold cache:
    even without repetition, bulk pricing shares sub-events."""
    document = build_document(6)

    def batch_cold():
        return QueryEngine(document, cache=EventProbabilityCache()).run_batch(
            WORKLOAD
        )

    answers = benchmark(batch_cold)
    loop_answers = [
        QueryEngine(document, use_cache=False).run(query) for query in WORKLOAD
    ]
    for batch_answer, loop_answer in zip(answers, loop_answers):
        assert {i.value: i.probability for i in batch_answer} == {
            i.value: i.probability for i in loop_answer
        }
