"""Multi-process serving tier benchmark: warm-throughput scaling.

The pre-fork tier's cost model (ISSUE 8): a warm workload is SQLite
lookup + JSON per request, so adding workers should add throughput until
the machine runs out of cores — the router's consistent-hash sharding
keeps each document's cache rows hot in one worker and the shared
on-disk answer cache means no worker ever re-prices.

This benchmark hammers the same warm workload (spread over
``DOC_COUNT`` documents so the shard router actually fans out) through a
1-worker tier and an N-worker tier and asserts the scaling factor.

Acceptance: N-worker / 1-worker warm throughput ≥ the floor.  The floor
is honest about hardware: ``BENCH_MULTIPROC_SCALING_FLOOR`` when set
(CI sets it to match its runner), else 2.5 on machines with ≥ 4 cores,
else a sanity floor of 0.5 (on a 1-core box the tier can't scale, but it
must not *collapse* — routing overhead stays bounded).

The measured trajectory lands in ``BENCH_multiproc.json``.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

from repro.dbms.service import DataspaceService
from repro.xmlkit.parser import parse_document
from repro.server.client import DataspaceClient
from repro.server.multiproc import MultiProcServer

from .conftest import format_table, write_bench_json, write_result

WORKERS = int(os.environ.get("BENCH_MULTIPROC_WORKERS", "4"))
ROUNDS = int(os.environ.get("BENCH_MULTIPROC_ROUNDS", "12"))
CLIENT_THREADS = int(os.environ.get("BENCH_MULTIPROC_THREADS", "4"))
DOC_COUNT = 8  # ≥ workers so every shard owns documents

_floor_env = os.environ.get("BENCH_MULTIPROC_SCALING_FLOOR")
if _floor_env is not None:
    SCALING_FLOOR = float(_floor_env)
elif (os.cpu_count() or 1) >= 4:
    SCALING_FLOOR = 2.5
else:
    SCALING_FLOOR = 0.5

QUERIES = ["//x", "//y", '//x[. = "1"]']


def _populate(store_dir, cache_dir):
    """Load the corpus and price the whole workload once — everything
    measured below is served warm from the shared answer cache."""
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
        for index in range(DOC_COUNT):
            service.load_document(
                f"src{index}",
                parse_document(f"<r><x>{index % 4}</x><x>1</x><y>{index}</y></r>"),
            )
        for index in range(DOC_COUNT):
            for query in QUERIES:
                service.query(f"src{index}", query)


def _shape(answer):
    return [(item.value, item.probability, item.occurrences) for item in answer]


def _hammer(host, port):
    """CLIENT_THREADS clients, each sweeping the full warm workload
    ROUNDS times; returns (total requests, wall seconds)."""

    def sweep(thread_index):
        with DataspaceClient(host, port) as client:
            for _ in range(ROUNDS):
                for index in range(DOC_COUNT):
                    for query in QUERIES:
                        client.query(f"src{index}", query)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        list(pool.map(sweep, range(CLIENT_THREADS)))
    elapsed = time.perf_counter() - start
    return CLIENT_THREADS * ROUNDS * DOC_COUNT * len(QUERIES), elapsed


def test_multiproc_warm_scaling(tmp_path):
    store_dir, cache_dir = tmp_path / "store", tmp_path / "cache"
    _populate(store_dir, cache_dir)

    shapes = {}
    timings = {}
    for workers in (1, WORKERS):
        with MultiProcServer(
            store_dir, workers=workers, cache_dir=cache_dir
        ) as tier:
            host, port = tier.host, tier.port
            with DataspaceClient(host, port) as client:
                shapes[workers] = {
                    (index, query): _shape(client.query(f"src{index}", query))
                    for index in range(DOC_COUNT)
                    for query in QUERIES
                }
            timings[workers] = _hammer(host, port)

    # Correctness before speed: both tiers serve Fraction-identical
    # answers for every (document, query) pair.
    assert shapes[1] == shapes[WORKERS]

    single_requests, single_time = timings[1]
    multi_requests, multi_time = timings[WORKERS]
    single_rps = single_requests / single_time if single_time else float("inf")
    multi_rps = multi_requests / multi_time if multi_time else float("inf")
    scaling = multi_rps / single_rps if single_rps else float("inf")

    write_result(
        "multiproc",
        f"Pre-fork serving tier — warm-throughput scaling"
        f" ({DOC_COUNT} documents × {len(QUERIES)} queries ×"
        f" {ROUNDS} rounds × {CLIENT_THREADS} client threads,"
        f" floor {SCALING_FLOOR:g}×, {os.cpu_count()} cores)\n"
        + format_table(
            ["tier", "requests", "total time", "throughput"],
            [
                ["1 worker", f"{single_requests}",
                 f"{single_time * 1e3:8.1f} ms", f"{single_rps:10.0f} req/s"],
                [f"{WORKERS} workers", f"{multi_requests}",
                 f"{multi_time * 1e3:8.1f} ms", f"{multi_rps:10.0f} req/s"],
            ],
        )
        + f"\nscaling: {scaling:.2f}x",
    )
    write_bench_json(
        "multiproc",
        {
            "workers": WORKERS,
            "client_threads": CLIENT_THREADS,
            "documents": DOC_COUNT,
            "rounds": ROUNDS,
            "cores": os.cpu_count(),
            "single_worker_rps": round(single_rps, 1),
            "multi_worker_rps": round(multi_rps, 1),
            "scaling": round(scaling, 3),
            "floor": SCALING_FLOOR,
        },
    )

    assert scaling >= SCALING_FLOOR, (
        f"{WORKERS}-worker warm throughput scaled {scaling:.2f}x over one"
        f" worker, below the {SCALING_FLOOR:g}x acceptance floor"
    )
