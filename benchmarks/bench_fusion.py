"""Fan-out fusion benchmark: warm fused serving vs the cold fan-out.

The cold service fans one query plan across a 12-document dataspace —
every per-document answer is a real engine run — and persists each row
as it prices it.  The warm service is a *fresh* :class:`DataspaceService`
over the same store and cache directories (the restart shape) and must
serve the entire fan-out from the persisted per-document rows: exact
Fractions, no engine, no materialized document — only the fusion
arithmetic itself runs.

Acceptance (ISSUE 7):

* warm fan-out ≥ 5× faster than cold (per fan-out), Fraction-identical
  fused results — scores, membership order and per-document provenance
  — under *both* strategies, served without building an engine;
* the fused results round-trip exactly over the ``"num/den"`` wire
  format (encode → JSON → decode is the identity).
"""

import json
import os
import time

from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.dbms.service import DataspaceService
from repro.server.wire import decode_fused_answer, encode_fused_answer

from .conftest import format_table, write_bench_json, write_result

#: Acceptance floor for warm (persisted per-document rows) vs cold
#: (engine runs per document).  Locally the measured ratio is far above
#: 5×; CI shared runners set a lower sanity floor via this env var
#: rather than flaking on scheduler noise.
FUSION_SPEEDUP_FLOOR = float(os.environ.get("BENCH_FUSION_SPEEDUP_FLOOR", "5"))

#: Repetitions of the fan-out workload per warm timing run.
ROUNDS = 10

#: Documents in the dataspace: ``PAIRS`` integrated addressbook variants
#: (each an uncertain merge with its own conflicts) plus their 2·PAIRS
#: certain source books — 12 documents fanned per query.
PAIRS = 4

#: (expression, strategy) — both fusion strategies over the same plans,
#: so the strategy-independent per-document rows are shared.
WORKLOAD = [
    ("//person/tel", "prob"),
    ("//person/tel", "rrf"),
    ("//person/nm", "prob"),
    ("//person/nm", "rrf"),
]

PERSONS = 4  # per source book


def _populate(store_dir, cache_dir):
    """Build the 12-document dataspace: PAIRS integrated variants, each
    from its own pair of source books (distinct names/phones so every
    document ranks differently)."""
    rules = [DeepEqualRule(), LeafValueRule()]
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
        for pair in range(PAIRS):
            entries_a = [(f"p{pair}{i}", f"1{pair}{i}") for i in range(PERSONS)]
            entries_b = [(f"p{pair}{i}", f"2{pair}{i}") for i in range(PERSONS)]
            book_a, book_b = addressbook_documents(entries_a, entries_b)
            service.load_document(f"src{pair}a", book_a)
            service.load_document(f"src{pair}b", book_b)
            service.integrate(
                f"src{pair}a", f"src{pair}b", f"merged{pair}",
                rules=rules, dtd=ADDRESSBOOK_DTD,
            )
        document_count = len(service.store.list())
    return document_count


def _run_workload(service, rounds):
    fused = []
    for _ in range(rounds):
        fused.append(
            [
                service.query_all(expression, strategy=strategy)
                for expression, strategy in WORKLOAD
            ]
        )
    return fused


def test_warm_fan_out_vs_cold(tmp_path):
    """Acceptance: a restarted service serves the fan-out workload ≥ 5×
    faster (per fan-out) from the persisted per-document rows than the
    cold service that priced it, Fraction-identical under both fusion
    strategies, without ever building an engine."""
    store_dir, cache_dir = tmp_path / "store", tmp_path / "cache"
    document_count = _populate(store_dir, cache_dir)

    # Cold: a fresh cache — the first fan-out of each plan runs one
    # engine per document; the second strategy of the same plan already
    # hits the rows the first stored (strategy is not in the cache key).
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as cold:
        start = time.perf_counter()
        cold_fused = _run_workload(cold, 1)
        cold_time = time.perf_counter() - start
        cold_stats = cold.cache_stats()
    cold_per_op = cold_time / len(WORKLOAD)

    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as warm:
        start = time.perf_counter()
        warm_fused = _run_workload(warm, ROUNDS)
        warm_time = time.perf_counter() - start
        warm_stats = warm.cache_stats()
    warm_per_op = warm_time / (ROUNDS * len(WORKLOAD))

    # Exact agreement: strategy, scores, membership order, weights and
    # provenance triples (FusedAnswer dataclass equality), every round.
    assert all(round_ == cold_fused[0] for round_ in warm_fused)
    for fused in cold_fused[0]:
        assert fused.documents == tuple(sorted(fused.documents))
        assert len(fused.documents) == document_count
    # The warm service never built an engine: pure persistent hits.
    assert warm_stats["engines"] == 0
    plans = len({expression for expression, _ in WORKLOAD})
    assert warm_stats["persistent_hits"] == (
        ROUNDS * len(WORKLOAD) * document_count
    )
    assert cold_stats["persistent_stored"] == plans * document_count
    assert warm_stats["persistent_stored"] == 0

    # The wire format is lossless on every fused result in the workload.
    for fused in cold_fused[0]:
        encoded = json.loads(json.dumps(encode_fused_answer(fused)))
        assert decode_fused_answer(encoded) == fused

    speedup = cold_per_op / warm_per_op if warm_per_op else float("inf")
    write_result(
        "fusion",
        f"Dataspace fan-out — cold pricing vs warm restart"
        f" ({len(WORKLOAD)} fan-outs × {document_count} documents;"
        f" warm × {ROUNDS} rounds)\n"
        + format_table(
            ["mode", "total time", "per fan-out", "speedup"],
            [
                ["cold (engine per document)", f"{cold_time * 1e3:8.1f} ms",
                 f"{cold_per_op * 1e3:6.2f} ms", "1.0×"],
                ["warm (persisted rows)", f"{warm_time * 1e3:8.1f} ms",
                 f"{warm_per_op * 1e3:6.2f} ms", f"{speedup:.1f}×"],
            ],
        )
        + f"\ncold stats: {cold_stats}\nwarm stats: {warm_stats}",
    )
    write_bench_json(
        "fusion",
        {
            "workload": "warm_fan_out_rows_vs_cold_pricing",
            "fan_outs": len(WORKLOAD),
            "documents": document_count,
            "rounds": ROUNDS,
            "cold_seconds": cold_time,
            "warm_seconds": warm_time,
            "cold_per_fan_out_seconds": cold_per_op,
            "warm_per_fan_out_seconds": warm_per_op,
            "speedup": speedup,
            "floor": FUSION_SPEEDUP_FLOOR,
            "cold_stats": cold_stats,
            "warm_stats": warm_stats,
        },
    )
    assert speedup >= FUSION_SPEEDUP_FLOOR, (
        f"warm fan-out speedup {speedup:.1f}× below the"
        f" {FUSION_SPEEDUP_FLOOR}× acceptance floor"
        f" (cold {cold_time:.3f}s vs warm {warm_time:.3f}s)"
    )
