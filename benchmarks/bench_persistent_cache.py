"""Persistent dataspace-service benchmark: warm start vs cold start, and
concurrent serving correctness.

The cold service prices a workload from scratch (tree walks + Shannon
expansions).  The warm service is a *fresh* :class:`DataspaceService`
over the same store and cache directories — the restart shape — and must
serve the entire workload from the persisted answer table: exact
Fractions, no engine, no document materialization.

Acceptance (ISSUE 2):

* warm workload ≥ 3× faster than cold, Fraction-equal answers;
* concurrent queries from ≥ 4 threads return results identical to
  serial execution.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.rules import Decision, DeepEqualRule, LeafValueRule, PredicateRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.dbms.service import DataspaceService

from .conftest import format_table, write_bench_json, write_result

#: Acceptance floor for warm (persisted-cache) vs cold start.  Locally
#: the measured ratio is orders of magnitude above 3× (SQLite lookups vs
#: Shannon expansion); CI shared runners set a lower sanity floor via
#: this env var rather than flaking on scheduler noise.
WARM_SPEEDUP_FLOOR = float(os.environ.get("BENCH_WARM_SPEEDUP_FLOOR", "3"))

#: Repetitions of the workload per timing run — a restarted dashboard or
#: API replays the same queries, so the warm path serves every one.
ROUNDS = 5


def _different_names_differ(a, b, context):
    """Different names ⇒ different people; same name stays uncertain."""
    name_a, name_b = a.find("nm"), b.find("nm")
    if name_a is None or name_b is None:
        return None
    if name_a.text() != name_b.text():
        return Decision.NO_MATCH
    return None


RULES = [
    DeepEqualRule(),
    PredicateRule("name-discriminates", _different_names_differ, tags=("person",)),
    LeafValueRule(),
]

WORKLOAD = [
    '//person[some $t in tel satisfies contains($t, "1")]/nm',
    "//person/nm",
    "//person/tel",
    '//person[contains(nm, "p1")]/tel',
    "//person[not(tel)]/nm",
    '//person[nm="p0"]/tel',
]

PERSON_COUNT = 6  # 3^6 possible worlds


def _populate(store_dir, cache_dir):
    """Integrate the uncertain addressbook into a persistent store."""
    entries_a = [(f"p{i}", f"1{i}1") for i in range(PERSON_COUNT)]
    entries_b = [(f"p{i}", f"2{i}2") for i in range(PERSON_COUNT)]
    book_a, book_b = addressbook_documents(entries_a, entries_b)
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
        service.load_document("a", book_a)
        service.load_document("b", book_b)
        service.integrate("a", "b", "ab", rules=RULES, dtd=ADDRESSBOOK_DTD)


def _run_workload(service):
    answers = []
    for _ in range(ROUNDS):
        answers.append(
            [service.query("ab", query) for query in WORKLOAD]
        )
    return answers


def _shapes(rounds):
    return [
        [
            [(item.value, item.probability, item.occurrences) for item in answer]
            for answer in round_answers
        ]
        for round_answers in rounds
    ]


def test_warm_start_vs_cold_start(tmp_path):
    """Acceptance: a restarted service over the persisted cache serves
    the workload ≥ 3× faster than the cold service that priced it, with
    Fraction-identical answers."""
    store_dir, cache_dir = tmp_path / "store", tmp_path / "cache"
    _populate(store_dir, cache_dir)

    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as cold:
        start = time.perf_counter()
        cold_answers = _run_workload(cold)
        cold_time = time.perf_counter() - start
        cold_stats = cold.cache_stats()

    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as warm:
        start = time.perf_counter()
        warm_answers = _run_workload(warm)
        warm_time = time.perf_counter() - start
        warm_stats = warm.cache_stats()

    # Exact agreement, Fraction by Fraction.
    assert _shapes(warm_answers) == _shapes(cold_answers)
    # The warm service never built an engine: pure persistent hits.
    assert warm_stats["engines"] == 0
    assert warm_stats["persistent_hits"] == ROUNDS * len(WORKLOAD)

    speedup = cold_time / warm_time if warm_time else float("inf")
    write_result(
        "persistent_cache",
        f"Persistent dataspace service — cold start vs warm restart"
        f" ({len(WORKLOAD)} queries × {ROUNDS} rounds,"
        f" 3^{PERSON_COUNT}-world document)\n"
        + format_table(
            ["mode", "total time", "per query", "speedup"],
            [
                ["cold (evaluate + persist)", f"{cold_time * 1e3:8.1f} ms",
                 f"{cold_time / (ROUNDS * len(WORKLOAD)) * 1e3:6.2f} ms",
                 "1.0×"],
                ["warm (persisted cache)", f"{warm_time * 1e3:8.1f} ms",
                 f"{warm_time / (ROUNDS * len(WORKLOAD)) * 1e3:6.2f} ms",
                 f"{speedup:.1f}×"],
            ],
        )
        + f"\ncold stats: {cold_stats}\nwarm stats: {warm_stats}",
    )
    write_bench_json(
        "persistent_cache",
        {
            "workload": "warm_restart_vs_cold_start",
            "queries": len(WORKLOAD),
            "rounds": ROUNDS,
            "cold_seconds": cold_time,
            "warm_seconds": warm_time,
            "speedup": speedup,
            "floor": WARM_SPEEDUP_FLOOR,
            "cold_stats": cold_stats,
            "warm_stats": warm_stats,
        },
    )
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm-start speedup {speedup:.1f}× below the"
        f" {WARM_SPEEDUP_FLOOR}× acceptance floor"
        f" (cold {cold_time:.3f}s vs warm {warm_time:.3f}s)"
    )


@pytest.mark.parametrize("threads", [4, 8])
def test_concurrent_service_matches_serial(tmp_path, threads):
    """Acceptance: ≥4 threads hammering one service return exactly the
    serial answers — cold (evaluating) and warm (persistent hits) alike."""
    store_dir = tmp_path / "store"
    cache_dir = tmp_path / "cache"
    _populate(store_dir, cache_dir)

    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
        serial = _shapes([[service.query("ab", q) for q in WORKLOAD]])[0]
        service.cache.clear()  # next round re-evaluates under contention
        with service._mu:
            service._engines.clear()

        def worker(index):
            # Rotate the starting offset so threads collide on different
            # queries at different times.
            ordered = WORKLOAD[index % len(WORKLOAD):] + WORKLOAD[: index % len(WORKLOAD)]
            return {q: service.query("ab", q) for q in ordered}

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=threads) as pool:
            results = list(pool.map(worker, range(threads * 2)))
        elapsed = time.perf_counter() - start

        expected = dict(zip(WORKLOAD, serial))
        for result in results:
            for query, answer in result.items():
                assert [
                    (i.value, i.probability, i.occurrences) for i in answer
                ] == expected[query]

    write_result(
        f"persistent_cache_concurrent_{threads}",
        f"{threads} threads × {len(WORKLOAD)} queries, {threads * 2} workers:"
        f" identical to serial in {elapsed * 1e3:.1f} ms",
    )
