"""Figure 5: influence of rules on scalability.

Paper: integrating 6 MPEG-7 movies with 0–60 confusing IMDB entries
(sequels/TV shows of the same franchises); log-scale node counts rise to
the 10⁸–10⁹ regime with only the movie-title rule, and stay orders of
magnitude lower when the year rule is added.

Node counts are exact (analytic estimator over the joint representation);
materialising the large configurations is precisely what no system can
do — that is the figure's point.
"""

import math

import pytest

from repro.core.estimate import estimate_integration
from repro.experiments import FIGURE5_SERIES, figure5_sources, movie_config

from .conftest import format_table, write_result

IMDB_COUNTS = (0, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60)

_series_results: dict[str, dict[int, int]] = {}


def sweep(rule_names):
    points = {}
    for count in IMDB_COUNTS:
        source_a, source_b = figure5_sources(count)
        config = movie_config(*rule_names, factor_components=False)
        points[count] = estimate_integration(source_a, source_b, config).total_nodes
    return points


@pytest.mark.parametrize(
    "label,rule_names", FIGURE5_SERIES, ids=[label for label, _ in FIGURE5_SERIES]
)
def test_fig5_series(benchmark, label, rule_names):
    points = benchmark.pedantic(sweep, args=(rule_names,), rounds=2, iterations=1)
    _series_results[label] = points

    counts = sorted(points)
    # Shape: strictly monotone growth over the sweep.
    values = [points[count] for count in counts]
    assert all(a < b for a, b in zip(values, values[1:]))

    if len(_series_results) == len(FIGURE5_SERIES):
        title_only = _series_results["Only movie title rule"]
        with_year = _series_results["Movie title+year rule"]
        rows = []
        for count in counts:
            ratio = title_only[count] / with_year[count]
            rows.append(
                [
                    count,
                    f"{title_only[count]:,}",
                    f"{with_year[count]:,}",
                    f"{ratio:,.0f}x",
                    f"10^{math.log10(max(title_only[count], 1)):.1f}",
                ]
            )
        table = format_table(
            ["IMDB movies", "title rule only", "title+year rule",
             "separation", "title-only magnitude"],
            rows,
        )
        # The paper's headline shapes:
        assert title_only[60] > 10**8, "confusing conditions reach the 10^8+ regime"
        assert title_only[60] > 10 * with_year[60], "year rule separates the series"
        write_result(
            "fig5_scalability",
            "Figure 5 — influence of rules on scalability"
            " (6 MPEG-7 movies vs N confusing IMDB entries, joint"
            " representation, exact node counts)\n" + table,
        )
