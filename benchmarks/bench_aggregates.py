"""Aggregate-distribution benchmark: persisted warm serving vs cold
convolution, plus HTTP round-trip exactness.

The cold service convolves every aggregate bottom-up over the
probabilistic tree (and persists the distribution).  The warm service is
a *fresh* :class:`DataspaceService` over the same store and cache
directories — the restart shape — and must serve the entire aggregate
workload from the persisted aggregate rows: exact Fractions, no engine,
no tree walk.

Acceptance (ISSUE 5):

* warm aggregate workload ≥ 5× faster than cold, Fraction-identical
  distributions, served without building an engine;
* the distributions round-trip exactly over the ``"num/den"`` wire
  format (encode → JSON → decode is the identity).
"""

import json
import os
import time

from repro.core.rules import Decision, DeepEqualRule, LeafValueRule, PredicateRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.dbms.cache_store import (
    decode_aggregate_distribution,
    encode_aggregate_distribution,
)
from repro.dbms.service import DataspaceService

from .conftest import format_table, write_bench_json, write_result

#: Acceptance floor for warm (persisted aggregate rows) vs cold
#: (bottom-up convolution).  Locally the measured ratio is far above 5×;
#: CI shared runners set a lower sanity floor via this env var rather
#: than flaking on scheduler noise.
AGGREGATE_SPEEDUP_FLOOR = float(
    os.environ.get("BENCH_AGGREGATE_SPEEDUP_FLOOR", "5")
)

#: Repetitions of the workload per timing run — a dashboard polls the
#: same aggregates, so the warm path serves every one.
ROUNDS = 10

#: (kind, target, text) — every aggregate kind, with and without the
#: predicate filter, over the uncertain integrated addressbook.
WORKLOAD = [
    ("count", "person", None),
    ("count", "tel", None),
    ("count", "nm", "p0"),
    ("sum", "tel", None),
    ("min", "tel", None),
    ("max", "tel", None),
    ("exists", "person", None),
    ("exists", "tel", "101"),
]

PERSON_COUNT = 6  # 3^6 possible worlds


def _different_names_differ(a, b, context):
    """Different names ⇒ different people; same name stays uncertain."""
    name_a, name_b = a.find("nm"), b.find("nm")
    if name_a is None or name_b is None:
        return None
    if name_a.text() != name_b.text():
        return Decision.NO_MATCH
    return None


RULES = [
    DeepEqualRule(),
    PredicateRule("name-discriminates", _different_names_differ, tags=("person",)),
    LeafValueRule(),
]


def _populate(store_dir, cache_dir):
    """Integrate the uncertain addressbook into a persistent store."""
    entries_a = [(f"p{i}", f"1{i}1") for i in range(PERSON_COUNT)]
    entries_b = [(f"p{i}", f"2{i}2") for i in range(PERSON_COUNT)]
    book_a, book_b = addressbook_documents(entries_a, entries_b)
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
        service.load_document("a", book_a)
        service.load_document("b", book_b)
        service.integrate("a", "b", "ab", rules=RULES, dtd=ADDRESSBOOK_DTD)


def _run_workload(service, rounds):
    distributions = []
    for _ in range(rounds):
        distributions.append(
            [
                service.aggregate("ab", kind, target, text=text)
                for kind, target, text in WORKLOAD
            ]
        )
    return distributions


def test_warm_aggregates_vs_cold_convolution(tmp_path):
    """Acceptance: a restarted service serves the aggregate workload
    ≥ 5× faster (per aggregate) from the persisted aggregate rows than
    the cold service that convolved it, Fraction-identical, without
    ever building an engine."""
    store_dir, cache_dir = tmp_path / "store", tmp_path / "cache"
    _populate(store_dir, cache_dir)

    # Cold: one pass over a fresh cache — every aggregate is a real
    # bottom-up convolution (a second cold round would already be warm:
    # the service persists as it computes).
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as cold:
        start = time.perf_counter()
        cold_distributions = _run_workload(cold, 1)
        cold_time = time.perf_counter() - start
        cold_stats = cold.cache_stats()
    cold_per_op = cold_time / len(WORKLOAD)

    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as warm:
        start = time.perf_counter()
        warm_distributions = _run_workload(warm, ROUNDS)
        warm_time = time.perf_counter() - start
        warm_stats = warm.cache_stats()
    warm_per_op = warm_time / (ROUNDS * len(WORKLOAD))

    # Exact agreement, Fraction by Fraction (and key by key).
    assert all(round_ == cold_distributions[0] for round_ in warm_distributions)
    # The warm service never built an engine: pure persistent hits.
    assert warm_stats["engines"] == 0
    assert warm_stats["persistent_aggregate_hits"] == ROUNDS * len(WORKLOAD)
    assert warm_stats["persistent_aggregate_stored"] == 0

    # The wire format is lossless on every distribution in the workload.
    for distribution in cold_distributions[0]:
        encoded = json.loads(json.dumps(encode_aggregate_distribution(distribution)))
        assert decode_aggregate_distribution(encoded) == distribution

    speedup = cold_per_op / warm_per_op if warm_per_op else float("inf")
    write_result(
        "aggregates",
        f"Aggregate distributions — cold convolution vs warm restart"
        f" ({len(WORKLOAD)} aggregates; warm × {ROUNDS} rounds,"
        f" 3^{PERSON_COUNT}-world document)\n"
        + format_table(
            ["mode", "total time", "per aggregate", "speedup"],
            [
                ["cold (convolve + persist)", f"{cold_time * 1e3:8.1f} ms",
                 f"{cold_per_op * 1e3:6.2f} ms", "1.0×"],
                ["warm (persisted rows)", f"{warm_time * 1e3:8.1f} ms",
                 f"{warm_per_op * 1e3:6.2f} ms", f"{speedup:.1f}×"],
            ],
        )
        + f"\ncold stats: {cold_stats}\nwarm stats: {warm_stats}",
    )
    write_bench_json(
        "aggregates",
        {
            "workload": "warm_aggregate_rows_vs_cold_convolution",
            "aggregates": len(WORKLOAD),
            "rounds": ROUNDS,
            "cold_seconds": cold_time,
            "warm_seconds": warm_time,
            "cold_per_aggregate_seconds": cold_per_op,
            "warm_per_aggregate_seconds": warm_per_op,
            "speedup": speedup,
            "floor": AGGREGATE_SPEEDUP_FLOOR,
            "cold_stats": cold_stats,
            "warm_stats": warm_stats,
        },
    )
    assert speedup >= AGGREGATE_SPEEDUP_FLOOR, (
        f"warm aggregate speedup {speedup:.1f}× below the"
        f" {AGGREGATE_SPEEDUP_FLOOR}× acceptance floor"
        f" (cold {cold_time:.3f}s vs warm {warm_time:.3f}s)"
    )
