"""§VII answer quality: adapted precision/recall (paper ref [13]).

The demo paper announces quality measurement but prints no numbers; this
bench quantifies "good is good enough": answer quality of the §VI queries
against the ground truth (known from the generators' rwo identities),
across rule sets and across feedback rounds — showing that (a) even heavy
uncertainty leaves high-quality ranked answers, and (b) feedback pushes
quality to 1.
"""

import pytest

from repro.core.engine import Integrator
from repro.experiments import (
    QUERY_HORROR,
    QUERY_JOHN,
    movie_config,
    section6_document,
    section6_sources,
)
from repro.feedback.conditioning import FeedbackSession
from repro.query.engine import ProbQueryEngine
from repro.query.quality import answer_quality

from .conftest import format_table, write_result

#: Ground truth for the §VI workload (from the rwo identities).
TRUTH = {
    QUERY_HORROR: {"Jaws", "Jaws 2"},
    QUERY_JOHN: {"Die Hard: With a Vengeance", "Mission: Impossible II"},
}


def quality_row(document, query):
    answer = ProbQueryEngine(document).query(query)
    quality = answer_quality(answer, TRUTH[query])
    return quality


def test_sec7_quality_across_rule_sets(benchmark):
    """Weaker rule sets leave more uncertainty → lower precision, while
    recall stays high (good-is-good-enough)."""
    source_a, source_b = section6_sources()

    def run():
        rows = []
        for label, names in (("title only", ("title",)),
                             ("genre+title", ("genre", "title"))):
            config = movie_config(*names, prior="2/5")
            document = Integrator(config).integrate(source_a, source_b).document
            for query, name in ((QUERY_HORROR, "horror"), (QUERY_JOHN, "john")):
                quality = quality_row(document, query)
                rows.append([label, name,
                             f"{float(quality.precision):.3f}",
                             f"{float(quality.recall):.3f}",
                             f"{float(quality.f1):.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    # good-is-good-enough: every configuration keeps F1 well above 0.5.
    assert all(float(row[4]) > 0.5 for row in rows)
    write_result(
        "sec7_quality_rules",
        "§VII answer quality by rule set (probability-weighted"
        " precision/recall, ref [13])\n"
        + format_table(["rule set", "query", "precision", "recall", "f1"], rows),
    )


def test_sec7_quality_under_feedback(benchmark):
    """The §I information cycle: each feedback interaction removes
    impossible worlds and quality climbs to 1."""
    document = section6_document().document

    def run():
        session = FeedbackSession(document.copy())
        trajectory = []
        steps = [
            ("confirm", QUERY_JOHN, "Mission: Impossible II"),
            ("reject", QUERY_JOHN, "Mission: Impossible"),
            ("confirm", QUERY_HORROR, "Jaws"),
            ("confirm", QUERY_HORROR, "Jaws 2"),
        ]
        quality = quality_row(session.document, QUERY_JOHN)
        trajectory.append(("(initial)", quality))
        for kind, query, value in steps:
            if kind == "confirm":
                session.confirm(query, value)
            else:
                session.reject(query, value)
            trajectory.append(
                (f"{kind} {value!r}", quality_row(session.document, QUERY_JOHN))
            )
        return trajectory

    trajectory = benchmark.pedantic(run, rounds=2, iterations=1)
    final = trajectory[-1][1]
    assert final.precision == 1 and final.recall == 1
    # F1 never decreases along this feedback sequence.
    f1_values = [float(q.f1) for _, q in trajectory]
    assert all(a <= b + 1e-12 for a, b in zip(f1_values, f1_values[1:]))
    rows = [
        [label, f"{float(q.precision):.3f}", f"{float(q.recall):.3f}",
         f"{float(q.f1):.3f}"]
        for label, q in trajectory
    ]
    write_result(
        "sec7_quality_feedback",
        "§VII answer quality across feedback rounds (query: John directors)\n"
        + format_table(["after", "precision", "recall", "f1"], rows),
    )
