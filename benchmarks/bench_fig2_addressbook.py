"""Figure 2: address-book integration → exactly three possible worlds.

Regenerates the paper's running example: two address books, both with a
person named John but different phone numbers, integrated under a DTD
that allows one phone per person.  The measured artefacts are the three
worlds and their probabilities; the benchmark times the full integration.
"""

from repro.core.engine import integrate
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.pxml.worlds import iter_worlds
from repro.probability import format_percent
from repro.xmlkit.serializer import serialize

from .conftest import format_table, write_result

RULES = [DeepEqualRule(), LeafValueRule()]


def run_figure2():
    book_a, book_b = addressbook_documents()
    return integrate(book_a, book_b, rules=RULES, dtd=ADDRESSBOOK_DTD)


def test_fig2_integration(benchmark):
    result = benchmark(run_figure2)
    worlds = sorted(
        iter_worlds(result.document), key=lambda world: -world.probability
    )
    assert len(worlds) == 3, "the paper's example has exactly 3 possible worlds"
    assert sum(world.probability for world in worlds) == 1

    rows = [
        [format_percent(world.probability), serialize(world.document)]
        for world in worlds
    ]
    table = format_table(["P(world)", "world"], rows)
    write_result(
        "fig2_addressbook",
        "Figure 2 — address-book integration (paper: 3 possible worlds)\n"
        + table
        + f"\n\nintegration report: {result.report.summary()}",
    )
