"""§VI probabilistic querying: the paper's two example queries.

Paper answers (on its 33 856-world confusing integration):

    //movie[.//genre="Horror"]/title
        → Jaws 97%, Jaws 2 97% ("the only two movies classified Horror")

    //movie[some $d in .//director satisfies contains($d,"John")]/title
        → 100% Die Hard: With a Vengeance
           96% Mission: Impossible II
           21% Mission: Impossible   ("the 'II' may be a typing mistake")

Our document (see DESIGN.md §3 and EXPERIMENTS.md) reproduces the answer
*structure*: the same values in the same order, WaV certain, the bare
'Mission: Impossible' as the low-probability incorrect answer.  The exact
96/21 split is unreachable under clean possible-world semantics with one
record per source (the pair of probabilities is complementary); we record
the measured values.
"""

import pytest

from repro.experiments import QUERY_HORROR, QUERY_JOHN, section6_document
from repro.probability import format_percent
from repro.pxml.stats import tree_stats
from repro.query.engine import ProbQueryEngine, query_enumeration

from .conftest import format_table, write_result

PAPER_ANSWERS = {
    QUERY_HORROR: [("Jaws", "97%"), ("Jaws 2", "97%")],
    QUERY_JOHN: [
        ("Die Hard: With a Vengeance", "100%"),
        ("Mission: Impossible II", "96%"),
        ("Mission: Impossible", "21%"),
    ],
}


@pytest.fixture(scope="module")
def document():
    return section6_document().document


def test_sec6_document_stats(benchmark):
    result = benchmark.pedantic(section6_document, rounds=3, iterations=1)
    stats = tree_stats(result.document)
    write_result(
        "sec6_document",
        "§VI integrated document (confusing selection, genre+title rules)\n"
        + format_table(
            ["metric", "paper", "measured"],
            [
                ["possible worlds", "33,856", f"{stats.world_count:,}"],
                ["nodes", "—", f"{stats.total:,}"],
                ["choice points", "—", str(stats.choice_points)],
            ],
        ),
    )


@pytest.mark.parametrize(
    "name,query",
    [("horror", QUERY_HORROR), ("john", QUERY_JOHN)],
)
def test_sec6_query(benchmark, document, name, query):
    engine = ProbQueryEngine(document)
    answer = benchmark(engine.query, query)

    paper = PAPER_ANSWERS[query]
    paper_values = [value for value, _ in paper]
    # Structural claims: the paper's values appear, in the paper's order.
    measured_order = [v for v in answer.values() if v in paper_values]
    if name == "john":
        assert measured_order == paper_values
        assert answer.probability_of("Die Hard: With a Vengeance") == 1
        assert float(answer.probability_of("Mission: Impossible")) <= 0.35
    else:
        assert sorted(measured_order) == sorted(paper_values)
        assert set(answer.values()) == set(paper_values), (
            "paper: the ranked answer contains only Jaws and Jaws 2"
        )
        for item in answer:
            assert 0.90 <= float(item.probability) < 1.0

    rows = []
    for value, paper_rank in paper:
        rows.append([paper_rank, format_percent(answer.probability_of(value)), value])
    for item in answer:
        if item.value not in paper_values:
            rows.append(["—", format_percent(item.probability), item.value])
    write_result(
        f"sec6_query_{name}",
        f"§VI query: {query}\n"
        + format_table(["paper", "measured", "title"], rows),
    )


def test_sec6_event_engine_vs_enumeration(benchmark, document):
    """Both engines must agree; the benchmark times the event-based one
    against a document whose world count makes enumeration painful."""
    event_based = benchmark(ProbQueryEngine(document).query, QUERY_JOHN)
    enumerated = query_enumeration(document, QUERY_JOHN)
    assert {i.value: i.probability for i in event_based} == {
        i.value: i.probability for i in enumerated
    }
