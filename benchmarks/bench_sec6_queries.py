"""§VI probabilistic querying: the paper's two example queries.

Paper answers (on its 33 856-world confusing integration):

    //movie[.//genre="Horror"]/title
        → Jaws 97%, Jaws 2 97% ("the only two movies classified Horror")

    //movie[some $d in .//director satisfies contains($d,"John")]/title
        → 100% Die Hard: With a Vengeance
           96% Mission: Impossible II
           21% Mission: Impossible   ("the 'II' may be a typing mistake")

Our document (see DESIGN.md §3 and EXPERIMENTS.md) reproduces the answer
*structure*: the same values in the same order, WaV certain, the bare
'Mission: Impossible' as the low-probability incorrect answer.  The exact
96/21 split is unreachable under clean possible-world semantics with one
record per source (the pair of probabilities is complementary); we record
the measured values.
"""

import os
import time

import pytest

from repro.experiments import QUERY_HORROR, QUERY_JOHN, section6_document
from repro.probability import format_percent
from repro.pxml.events_cache import EventProbabilityCache
from repro.pxml.stats import tree_stats
from repro.query.engine import ProbQueryEngine, QueryEngine, query_enumeration

from .conftest import format_table, write_result

PAPER_ANSWERS = {
    QUERY_HORROR: [("Jaws", "97%"), ("Jaws 2", "97%")],
    QUERY_JOHN: [
        ("Die Hard: With a Vengeance", "100%"),
        ("Mission: Impossible II", "96%"),
        ("Mission: Impossible", "21%"),
    ],
}


@pytest.fixture(scope="module")
def document():
    return section6_document().document


def test_sec6_document_stats(benchmark):
    result = benchmark.pedantic(section6_document, rounds=3, iterations=1)
    stats = tree_stats(result.document)
    write_result(
        "sec6_document",
        "§VI integrated document (confusing selection, genre+title rules)\n"
        + format_table(
            ["metric", "paper", "measured"],
            [
                ["possible worlds", "33,856", f"{stats.world_count:,}"],
                ["nodes", "—", f"{stats.total:,}"],
                ["choice points", "—", str(stats.choice_points)],
            ],
        ),
    )


@pytest.mark.parametrize(
    "name,query",
    [("horror", QUERY_HORROR), ("john", QUERY_JOHN)],
)
def test_sec6_query(benchmark, document, name, query):
    engine = ProbQueryEngine(document)
    answer = benchmark(engine.query, query)

    paper = PAPER_ANSWERS[query]
    paper_values = [value for value, _ in paper]
    # Structural claims: the paper's values appear, in the paper's order.
    measured_order = [v for v in answer.values() if v in paper_values]
    if name == "john":
        assert measured_order == paper_values
        assert answer.probability_of("Die Hard: With a Vengeance") == 1
        assert float(answer.probability_of("Mission: Impossible")) <= 0.35
    else:
        assert sorted(measured_order) == sorted(paper_values)
        assert set(answer.values()) == set(paper_values), (
            "paper: the ranked answer contains only Jaws and Jaws 2"
        )
        for item in answer:
            assert 0.90 <= float(item.probability) < 1.0

    rows = []
    for value, paper_rank in paper:
        rows.append([paper_rank, format_percent(answer.probability_of(value)), value])
    for item in answer:
        if item.value not in paper_values:
            rows.append(["—", format_percent(item.probability), item.value])
    write_result(
        f"sec6_query_{name}",
        f"§VI query: {query}\n"
        + format_table(["paper", "measured", "title"], rows),
    )


def test_sec6_event_engine_vs_enumeration(benchmark, document):
    """Both engines must agree; the benchmark times the event-based one
    against a document whose world count makes enumeration painful."""
    engine = ProbQueryEngine(document, use_cache=False)
    event_based = benchmark(engine.query, QUERY_JOHN)
    enumerated = query_enumeration(document, QUERY_JOHN)
    assert {i.value: i.probability for i in event_based} == {
        i.value: i.probability for i in enumerated
    }


def test_sec6_batch_vs_loop(document):
    """The §VI workload as a batch: ``run_batch`` over both paper queries
    (repeated, as a client would poll them) vs a fresh-engine loop —
    identical Fraction answers, batch at least as fast."""
    workload = [QUERY_HORROR, QUERY_JOHN] * 10

    start = time.perf_counter()
    loop_answers = [
        QueryEngine(document, use_cache=False).run(query) for query in workload
    ]
    loop_time = time.perf_counter() - start

    cache = EventProbabilityCache()
    engine = QueryEngine(document, cache=cache)
    start = time.perf_counter()
    batch_answers = engine.run_batch(workload)
    batch_time = time.perf_counter() - start

    for loop_answer, batch_answer in zip(loop_answers, batch_answers):
        assert {i.value: i.probability for i in loop_answer} == {
            i.value: i.probability for i in batch_answer
        }

    speedup = loop_time / batch_time if batch_time else float("inf")
    write_result(
        "sec6_batch_vs_loop",
        f"§VI workload ({len(workload)} queries) — per-query loop vs run_batch\n"
        + format_table(
            ["mode", "total time", "speedup"],
            [
                ["loop (fresh engines)", f"{loop_time * 1e3:7.1f} ms", "1.0×"],
                ["run_batch (shared cache)", f"{batch_time * 1e3:7.1f} ms",
                 f"{speedup:.1f}×"],
            ],
        )
        + f"\ncache stats: {cache.stats()}",
    )
    # Same noisy-runner escape hatch as BENCH_SPEEDUP_FLOOR in the
    # ablation bench: CI sets a sub-1 sanity floor so one scheduler
    # stall inside the short batch section cannot fail the build.
    floor = float(os.environ.get("BENCH_BATCH_SPEEDUP_FLOOR", "1"))
    assert speedup >= floor, (
        f"batch speedup {speedup:.2f}× below the {floor}× floor"
    )
