"""Ablation A1: joint vs component-factored representation.

The paper's system enumerates *joint* matchings per sibling group (its
Table I sizes match that); factoring independent components into separate
probability nodes represents the same distribution exponentially smaller.
This ablation quantifies the gap on the Table I rows — the direction the
authors' follow-up work ("Taming data explosion…", ref [3]) pursued.
"""

import pytest

from repro.core.estimate import estimate_integration
from repro.experiments import TABLE1_ROWS, movie_config, table1_sources

from .conftest import format_table, write_result

_rows: list[list[str]] = []


@pytest.mark.parametrize(
    "label,rule_names", TABLE1_ROWS, ids=[label for label, _ in TABLE1_ROWS]
)
def test_factoring_ablation(benchmark, label, rule_names):
    source_a, source_b = table1_sources()

    def run():
        joint = estimate_integration(
            source_a, source_b,
            movie_config(*rule_names, factor_components=False,
                         max_possibilities=50_000),
        )
        factored = estimate_integration(
            source_a, source_b,
            movie_config(*rule_names, factor_components=True,
                         max_possibilities=50_000),
        )
        return joint, factored

    joint, factored = benchmark(run)
    assert factored.world_count == joint.world_count, (
        "both representations encode the same distribution"
    )
    components = max((g.components for g in factored.groups), default=0)
    if components > 1:
        # Independent components exist → factoring must win.
        assert factored.total_nodes < joint.total_nodes
    _rows.append(
        [
            label,
            str(components),
            f"{joint.total_nodes:,}",
            f"{factored.total_nodes:,}",
            f"{joint.total_nodes / factored.total_nodes:,.2f}x",
        ]
    )
    if len(_rows) == len(TABLE1_ROWS):
        write_result(
            "ablation_factoring",
            "Ablation A1 — joint (paper) vs component-factored"
            " representation (Table I workload).\n"
            "With a single all-connected component (no rules) factoring"
            " cannot help and its per-child wrappers even cost a little;"
            " once rules split the match graph, it wins by orders of"
            " magnitude.\n"
            + format_table(
                ["rule set", "components", "joint nodes", "factored nodes",
                 "joint/factored"],
                _rows,
            ),
        )
