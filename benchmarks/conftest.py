"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
records the paper-reported value next to the measured one; the rendered
tables land in ``benchmarks/results/*.txt`` (and on stdout when pytest
runs with ``-s``) so EXPERIMENTS.md can quote them.

Performance-acceptance benchmarks additionally emit a machine-readable
trajectory file per workload — ``benchmarks/results/BENCH_<name>.json``
via :func:`write_bench_json` — carrying the measured wall times, op
counts and the speedup against the asserted floor.  CI uploads these as
artifacts, so the perf trajectory is tracked across PRs instead of
living only in transient job logs.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a rendered result table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n--- {name} ---\n{text}")
    return path


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist one benchmark's machine-readable trajectory record.

    ``payload`` is the benchmark's own schema (timings, op counts,
    speedups, asserted floors — numbers, strings and nested dicts/lists
    only); this helper stamps the shared envelope (benchmark name, UTC
    timestamp, interpreter) so records from different PRs line up.
    Exact Fractions must be stringified by the caller (JSON has no
    rational type — going through float would defeat the point).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "bench": name,
        "unix_time": round(time.time(), 3),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **payload,
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\n--- BENCH_{name}.json ---\n{json.dumps(record, sort_keys=True)}")
    return path


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table with right-padded columns."""
    widths = [
        max(len(str(headers[col])), *(len(str(row[col])) for row in rows))
        if rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    def render(cells):
        return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))
    lines = [render(headers), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
