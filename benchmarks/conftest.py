"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
records the paper-reported value next to the measured one; the rendered
tables land in ``benchmarks/results/*.txt`` (and on stdout when pytest
runs with ``-s``) so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a rendered result table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n--- {name} ---\n{text}")
    return path


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table with right-padded columns."""
    widths = [
        max(len(str(headers[col])), *(len(str(row[col])) for row in rows))
        if rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    def render(cells):
        return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))
    lines = [render(headers), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
