"""Named document collections with optional on-disk persistence.

Documents are either plain (:class:`XDocument`) or probabilistic
(:class:`PXDocument`); the store keeps both behind one namespace, persists
them as ``<name>.xml`` / ``<name>.pxml`` files when a directory is given,
and loads lazily with an in-memory cache.

Built for concurrent callers (the :class:`~repro.dbms.service.
DataspaceService` serves many threads over one store):

* **per-name sharded locks** — operations on one document serialize,
  operations on different documents (parsing, disk I/O) proceed in
  parallel; a short global mutex guards only the metadata maps;
* **LRU materialization cache** — pass ``max_cached`` to bound how many
  parsed documents stay in memory; evicting a document also releases its
  :class:`~repro.pxml.events_cache.EventProbabilityCache` (the registry
  holds documents weakly, so the cache dies with the last reference);
* **content digests and versions** — :meth:`digest` is the document's
  content hash (the persistent-cache key half, see
  :func:`repro.dbms.cache_store.document_digest`), computed from the
  file bytes when the document is not materialized so a warm process
  never has to parse just to key a cache lookup; :meth:`version` counts
  in-process ``put``/``delete`` mutations.
"""

from __future__ import annotations

import fnmatch
import hashlib
import re
import threading
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

from ..errors import MissingDocumentError, StoreError
from ..pxml.model import PXDocument
from ..pxml.serialize import parse_pxml, pxml_to_text
from ..xmlkit.nodes import XDocument
from ..xmlkit.parser import parse_document
from ..xmlkit.serializer import serialize
from .cache_store import document_digest

StoredDocument = Union[XDocument, PXDocument]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,127}$")

#: Number of lock shards; contention is per-name, so a handful suffices.
_SHARD_COUNT = 16


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise StoreError(
            f"invalid document name {name!r}"
            " (letters, digits, '_', '.', '-'; max 128 chars)"
        )
    return name


class DocumentStore:  # impreciselint: guarded-by=_mu
    """A thread-safe collection of named documents.

    >>> store = DocumentStore()            # in-memory
    >>> from repro.xmlkit import parse_document
    >>> store.put("movies", parse_document("<movies/>"))
    >>> store.kind("movies")
    'xml'

    ``max_cached`` bounds the number of *materialized* documents kept in
    memory (least-recently-used eviction); persisted files are never
    touched by eviction, and an evicted document transparently reloads on
    the next :meth:`get`.  ``None`` (the default) keeps everything.
    Directory-backed stores only — an in-memory store rejects the bound,
    since evicting a document with no backing file would lose it.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        max_cached: Optional[int] = None,
    ):
        if max_cached is not None and max_cached < 1:
            raise StoreError(f"max_cached must be >= 1, got {max_cached}")
        if max_cached is not None and directory is None:
            raise StoreError(
                "max_cached requires a backing directory — evicting an"
                " in-memory document would lose it"
            )
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.max_cached = max_cached
        self._cache: "OrderedDict[str, StoredDocument]" = OrderedDict()
        self._digests: dict[str, str] = {}
        self._versions: dict[str, int] = {}
        self._mu = threading.RLock()  # metadata maps only — never held on I/O
        self._shards = [threading.RLock() for _ in range(_SHARD_COUNT)]

    # -- helpers ---------------------------------------------------------------

    def _name_lock(self, name: str) -> threading.RLock:
        """The shard lock serializing operations on ``name``."""
        shard = zlib.crc32(name.encode("utf-8")) % _SHARD_COUNT
        return self._shards[shard]

    def _path(self, name: str, kind: str) -> Optional[Path]:
        if self.directory is None:
            return None
        suffix = ".pxml" if kind == "pxml" else ".xml"
        return self.directory / f"{name}{suffix}"

    def _find_file(self, name: str) -> Optional[Path]:
        if self.directory is None:
            return None
        for suffix in (".pxml", ".xml"):
            candidate = self.directory / f"{name}{suffix}"
            if candidate.exists():
                return candidate
        return None

    def _remember(self, name: str, document: StoredDocument) -> None:
        """Insert into the LRU under the metadata lock, evicting if over."""
        with self._mu:
            self._cache[name] = document
            self._cache.move_to_end(name)
            if self.max_cached is not None:
                while len(self._cache) > self.max_cached:
                    # The digest is content-derived and stays valid; the
                    # evicted document's event cache is reclaimed with it
                    # (weak registry) once callers drop their references.
                    self._cache.popitem(last=False)

    # -- operations ---------------------------------------------------------

    def put(self, name: str, document: StoredDocument) -> None:
        """Store (and persist, when directory-backed) a document."""
        _check_name(name)
        if not isinstance(document, (XDocument, PXDocument)):
            raise StoreError(
                f"cannot store {type(document).__name__};"
                " expected XDocument or PXDocument"
            )
        with self._name_lock(name):
            digest: Optional[str] = None
            if self.directory is not None:
                kind = "pxml" if isinstance(document, PXDocument) else "xml"
                if isinstance(document, PXDocument):
                    text = pxml_to_text(document)
                else:
                    text = serialize(document)
                # Remove a stale file of the other kind before writing.
                other = self._path(name, "xml" if kind == "pxml" else "pxml")
                if other is not None and other.exists():
                    other.unlink()
                path = self._path(name, kind)
                assert path is not None
                path.write_text(text, encoding="utf-8")
                # Hash the serialization already in hand — identical to
                # document_digest(document) and to hashing the file bytes
                # just written, without a second serialization pass.
                digest = hashlib.sha256(
                    (kind + "\x00" + text).encode("utf-8")
                ).hexdigest()
            with self._mu:
                if digest is not None:
                    self._digests[name] = digest
                else:
                    # In-memory: digest() computes lazily on first use —
                    # don't serialize a document nobody may ever key on.
                    self._digests.pop(name, None)
                self._versions[name] = self._versions.get(name, 0) + 1
            self._remember(name, document)

    def get(self, name: str) -> StoredDocument:
        """Fetch a document; raises :class:`StoreError` when missing."""
        _check_name(name)
        with self._mu:
            cached = self._cache.get(name)
            if cached is not None:
                self._cache.move_to_end(name)
                return cached
        with self._name_lock(name):
            # Re-check: another thread may have materialized it meanwhile.
            with self._mu:
                cached = self._cache.get(name)
                if cached is not None:
                    self._cache.move_to_end(name)
                    return cached
            path = self._find_file(name)
            if path is None:
                raise MissingDocumentError(f"no document named {name!r}")
            text = path.read_text(encoding="utf-8")
            document: StoredDocument
            if path.suffix == ".pxml":
                document = parse_pxml(text)
            else:
                document = parse_document(text)
            self._remember(name, document)
            return document

    def digest(self, name: str) -> str:
        """Content hash of the stored document (see
        :func:`repro.dbms.cache_store.document_digest`).

        Directory-backed stores always hash the persisted **file bytes**
        — never a parse, and the same value no matter whether the
        document was materialized first (for ``put()``-authored files
        the bytes *are* the canonical serialization, so this equals
        ``document_digest``; for externally-authored files the bytes are
        the one cross-process-stable identity).  In-memory documents
        hash their canonical serialization.  Memoized until the next
        :meth:`put`/:meth:`delete`.
        """
        _check_name(name)
        with self._mu:
            known = self._digests.get(name)
            if known is not None:
                return known
        with self._name_lock(name):
            with self._mu:
                known = self._digests.get(name)
                if known is not None:
                    return known
                cached = self._cache.get(name)
            path = self._find_file(name)
            if path is not None:
                kind = "pxml" if path.suffix == ".pxml" else "xml"
                text = kind + "\x00" + path.read_text(encoding="utf-8")
                digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
            elif cached is not None:
                digest = document_digest(cached)
            else:
                raise MissingDocumentError(f"no document named {name!r}")
            with self._mu:
                self._digests[name] = digest
            return digest

    def version(self, name: str) -> int:
        """In-process mutation counter: bumped by every
        :meth:`put`/:meth:`delete` of ``name`` (0 for never-mutated)."""
        with self._mu:
            return self._versions.get(name, 0)

    def refresh(self, name: str) -> None:
        """Forget ``name``'s in-memory state (materialized document and
        memoized content digest) so the next read re-reads the file.

        This is the store half of the cross-process invalidation fence
        (:meth:`repro.dbms.service.DataspaceService._fence_check`): when
        a sibling process sharing the directory rewrites a document, the
        bytes on disk are new but this process still holds the old
        materialization and digest.  Unknown names are a no-op — there
        is nothing stale to forget.  The in-process mutation counter is
        *not* bumped: the content did not change through this store.
        """
        _check_name(name)
        with self._name_lock(name):
            with self._mu:
                self._cache.pop(name, None)
                self._digests.pop(name, None)

    def kind(self, name: str) -> str:
        """'xml' or 'pxml' — from the in-memory type or the file suffix,
        without parsing; raises :class:`StoreError` when missing."""
        _check_name(name)
        with self._mu:
            cached = self._cache.get(name)
        if cached is not None:
            return "pxml" if isinstance(cached, PXDocument) else "xml"
        path = self._find_file(name)
        if path is None:
            raise MissingDocumentError(f"no document named {name!r}")
        return "pxml" if path.suffix == ".pxml" else "xml"

    def __contains__(self, name: str) -> bool:
        try:
            _check_name(name)
        except StoreError:
            return False
        with self._mu:
            if name in self._cache:
                return True
        return self._find_file(name) is not None

    def list(self) -> list[str]:
        """All document names in **pinned order**: sorted by Unicode
        code point, case-sensitive, on every platform.

        Never the filesystem's enumeration order — directory iteration
        is insertion-ordered on some filesystems and collated on others,
        and downstream consumers (fan-out ranks in
        :meth:`repro.dbms.service.DataspaceService.query_all`, the
        ``documents`` listings) must be reproducible across OSes.
        """
        with self._mu:
            names = set(self._cache)
        if self.directory is not None:
            for path in self.directory.iterdir():
                if path.suffix in (".xml", ".pxml"):
                    names.add(path.stem)
        return sorted(names)

    def glob(self, pattern: str) -> list[str]:
        """Document names matching a shell-style pattern (``*``, ``?``,
        ``[seq]``), in the same pinned sorted order as :meth:`list`.

        Matching is :func:`fnmatch.fnmatchcase` — case-sensitive on
        every platform (plain ``fnmatch.fnmatch`` silently folds case on
        case-insensitive OSes) and never the filesystem's native glob,
        whose result order and case rules are both platform-dependent.
        An unmatched pattern returns ``[]``, not an error.
        """
        return [
            name
            for name in self.list()
            if fnmatch.fnmatchcase(name, pattern)
        ]

    def delete(self, name: str) -> None:
        """Remove a document from memory and disk; raises when absent."""
        _check_name(name)
        with self._name_lock(name):
            with self._mu:
                found = name in self._cache
                self._cache.pop(name, None)
                self._digests.pop(name, None)
            path = self._find_file(name)
            if path is not None:
                path.unlink()
                found = True
            if not found:
                raise MissingDocumentError(f"no document named {name!r}")
            with self._mu:
                self._versions[name] = self._versions.get(name, 0) + 1

    def cached_count(self) -> int:
        """Number of currently materialized documents (diagnostics)."""
        with self._mu:
            return len(self._cache)
