"""Named document collections with optional on-disk persistence.

Documents are either plain (:class:`XDocument`) or probabilistic
(:class:`PXDocument`); the store keeps both behind one namespace, persists
them as ``<name>.xml`` / ``<name>.pxml`` files when a directory is given,
and loads lazily with an in-memory cache.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Union

from ..errors import StoreError
from ..pxml.model import PXDocument
from ..pxml.serialize import parse_pxml, pxml_to_text
from ..xmlkit.nodes import XDocument
from ..xmlkit.parser import parse_document
from ..xmlkit.serializer import serialize

StoredDocument = Union[XDocument, PXDocument]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,127}$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise StoreError(
            f"invalid document name {name!r}"
            " (letters, digits, '_', '.', '-'; max 128 chars)"
        )
    return name


class DocumentStore:
    """A collection of named documents.

    >>> store = DocumentStore()            # in-memory
    >>> from repro.xmlkit import parse_document
    >>> store.put("movies", parse_document("<movies/>"))
    >>> store.kind("movies")
    'xml'
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._cache: dict[str, StoredDocument] = {}

    # -- helpers ---------------------------------------------------------------

    def _path(self, name: str, kind: str) -> Optional[Path]:
        if self.directory is None:
            return None
        suffix = ".pxml" if kind == "pxml" else ".xml"
        return self.directory / f"{name}{suffix}"

    def _find_file(self, name: str) -> Optional[Path]:
        if self.directory is None:
            return None
        for suffix in (".pxml", ".xml"):
            candidate = self.directory / f"{name}{suffix}"
            if candidate.exists():
                return candidate
        return None

    # -- operations ---------------------------------------------------------

    def put(self, name: str, document: StoredDocument) -> None:
        """Store (and persist, when directory-backed) a document."""
        _check_name(name)
        if not isinstance(document, (XDocument, PXDocument)):
            raise StoreError(
                f"cannot store {type(document).__name__};"
                " expected XDocument or PXDocument"
            )
        self._cache[name] = document
        if self.directory is None:
            return
        kind = "pxml" if isinstance(document, PXDocument) else "xml"
        # Remove a stale file of the other kind before writing.
        other = self._path(name, "xml" if kind == "pxml" else "pxml")
        if other is not None and other.exists():
            other.unlink()
        path = self._path(name, kind)
        assert path is not None
        if isinstance(document, PXDocument):
            path.write_text(pxml_to_text(document), encoding="utf-8")
        else:
            path.write_text(serialize(document), encoding="utf-8")

    def get(self, name: str) -> StoredDocument:
        """Fetch a document; raises :class:`StoreError` when missing."""
        _check_name(name)
        if name in self._cache:
            return self._cache[name]
        path = self._find_file(name)
        if path is None:
            raise StoreError(f"no document named {name!r}")
        text = path.read_text(encoding="utf-8")
        document: StoredDocument
        if path.suffix == ".pxml":
            document = parse_pxml(text)
        else:
            document = parse_document(text)
        self._cache[name] = document
        return document

    def kind(self, name: str) -> str:
        """'xml' or 'pxml'."""
        document = self.get(name)
        return "pxml" if isinstance(document, PXDocument) else "xml"

    def __contains__(self, name: str) -> bool:
        try:
            _check_name(name)
        except StoreError:
            return False
        if name in self._cache:
            return True
        return self._find_file(name) is not None

    def list(self) -> list[str]:
        """All document names, sorted."""
        names = set(self._cache)
        if self.directory is not None:
            for path in self.directory.iterdir():
                if path.suffix in (".xml", ".pxml"):
                    names.add(path.stem)
        return sorted(names)

    def delete(self, name: str) -> None:
        _check_name(name)
        found = name in self._cache
        self._cache.pop(name, None)
        path = self._find_file(name)
        if path is not None:
            path.unlink()
            found = True
        if not found:
            raise StoreError(f"no document named {name!r}")
