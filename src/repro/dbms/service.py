"""The dataspace service: concurrent, cache-persistent query serving.

This is the Figure 4 stack assembled for the heavy-traffic path the
ROADMAP aims at.  :class:`DataspaceService` composes

* a thread-safe :class:`~repro.dbms.store.DocumentStore` (per-name
  sharded locks, optional LRU bound on materialized documents),
* the in-memory amortization layers — compiled
  :class:`~repro.query.plan.QueryPlan`\\ s and per-document
  :class:`~repro.pxml.events_cache.EventProbabilityCache`\\ s — and
* an optional persistent :class:`~repro.dbms.cache_store.AnswerCacheStore`
  so priced answers survive process restarts,

behind one facade safe for many threads: :meth:`query`,
:meth:`run_batch`, :meth:`query_all` / :meth:`aggregate_all` (the
dataspace-wide fan-out with rank fusion — see
:mod:`repro.query.fusion`), :meth:`integrate`, :meth:`feedback`.

Serving discipline:

1. a query is keyed by ``(document name, content digest, plan
   fingerprint digest)`` — both digest halves are stable across
   processes (see :mod:`repro.dbms.cache_store`);
2. a persistent **hit** deserializes exact Fractions straight from disk:
   no tree walk, no Shannon expansion, no engine, no per-name lock —
   hits from any number of threads proceed in parallel;
3. a **miss** takes the document's shard lock, evaluates through the
   shared :class:`~repro.query.engine.QueryEngine` (populating the
   in-memory event cache), persists the priced answer, and returns it.
   Misses on *different* documents still run in parallel;
4. every mutation (:meth:`load`, :meth:`integrate`, :meth:`feedback`,
   :meth:`delete`) bumps the persistent cache's per-name version and
   drops the name's rows.  Correctness never depends on that purge — the
   content digest changes with the content — it bounds cache growth and
   fences concurrent writers;
5. when several *processes* share one cache directory (``imprecise serve
   --workers N``), the per-name version doubles as a **cross-process
   fence**: each cache-keyed read first compares the persistent version
   against the one this instance last observed, and on movement drops
   the name's in-memory state (materialized document, content digest,
   engine) so a mutation applied by a sibling process is re-read from
   disk instead of served from a stale materialization.
"""

from __future__ import annotations

import os
import threading
import zlib
from collections import OrderedDict
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from fractions import Fraction
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence, Union

from ..core.engine import IntegrationReport
from ..core.oracle import Oracle
from ..core.rules import Rule
from ..deadline import Deadline, active
from ..errors import (
    CacheBusyError,
    DeadlineExceededError,
    MissingDocumentError,
    QueryError,
    StoreError,
)
from ..feedback.conditioning import FeedbackStep
from ..pxml.build import certain_document
from ..pxml.events_cache import cache_for
from ..pxml.events_compile import LiteralProbabilityTable, shared_literal_table
from ..pxml.model import PXDocument
from ..pxml.stats import NodeStats
from ..query.aggregates import (
    AggregateDistribution,
    AggregateSpec,
    aggregate_distribution,
    compile_aggregate,
)
from ..query.engine import QueryEngine, QueryLike
from ..query.fusion import (
    DEFAULT_RRF_K,
    FusedAnswer,
    WeightLike,
    fuse_aggregates,
    fuse_answers,
)
from ..query.plan import QueryPlan, compile_plan
from ..query.ranking import RankedAnswer
from ..xmlkit.dtd import DTD
from ..xmlkit.nodes import XDocument
from .cache_store import AnswerCacheStore
from .module import ImpreciseModule
from .store import DocumentStore

__all__ = ["DataspaceService", "format_cache_stats"]

_SERVICE_SHARDS = 16


def format_cache_stats(stats: dict) -> str:
    """Render a :meth:`DataspaceService.cache_stats` dict, one sorted
    ``key: value`` line per counter.

    This is the single formatting path for cache diagnostics: the
    ``imprecise serve`` CLI (``cache-stats`` protocol command and
    ``--cache-stats`` exit report) prints exactly this, and ``GET
    /stats`` on the HTTP front serves the same dict as JSON — the two
    surfaces cannot drift because neither picks its own counters.
    """
    return "\n".join(f"{key}: {value:,}" for key, value in sorted(stats.items()))


class DataspaceService:  # impreciselint: guarded-by=_mu
    """Concurrent query/integration service over a document store.

    >>> service = DataspaceService()
    >>> service.load("a", "<r><x>1</x></r>")
    >>> service.query("a", "//x").values()
    ['1']

    Construct over a store directory and a cache directory to get the
    persistent, warm-restartable configuration::

        service = DataspaceService(directory="store/", cache_dir="cache/")

    All public methods are thread-safe; concurrent queries return exactly
    the answers serial execution would (same Fractions).
    """

    def __init__(
        self,
        store: Optional[DocumentStore] = None,
        *,
        directory: Optional[Union[str, Path]] = None,
        cache_store: Optional[AnswerCacheStore] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        max_cached_documents: Optional[int] = None,
        cache_max_rows: Optional[int] = None,
        fanout_workers: Optional[int] = None,
        literal_table: Optional[LiteralProbabilityTable] = None,
    ):
        if store is not None and directory is not None:
            raise StoreError("pass either store= or directory=, not both")
        if cache_store is not None and cache_dir is not None:
            raise StoreError("pass either cache_store= or cache_dir=, not both")
        if cache_max_rows is not None and cache_dir is None:
            # Silently dropping the bound would leave the caller believing
            # the cache is bounded (or exists at all).
            raise StoreError(
                "cache_max_rows requires cache_dir=; for an explicit"
                " cache_store=, configure its max_rows directly instead"
            )
        self.store = (
            store
            if store is not None
            else DocumentStore(directory, max_cached=max_cached_documents)
        )
        if cache_store is None and cache_dir is not None:
            cache_store = AnswerCacheStore(cache_dir, max_rows=cache_max_rows)
        self.cache: Optional[AnswerCacheStore] = cache_store
        self._module = ImpreciseModule(self.store)
        #: The cross-document literal/small-conjunction row store every
        #: engine this service builds prices through (see
        #: :class:`~repro.pxml.events_compile.LiteralProbabilityTable`)
        #: — the process-shared table unless an explicit one is passed.
        #: One instance is threaded through the whole fan-out pool, so N
        #: workers pricing one compiled plan over N documents share rows.
        self.literal_table: LiteralProbabilityTable = (
            literal_table if literal_table is not None
            else shared_literal_table()
        )
        #: name -> (content digest, engine over that content); LRU-bounded
        #: by the store's max_cached so engines (which hold their document
        #: strongly) cannot defeat the store's materialization bound.
        self._engines: "OrderedDict[str, tuple[str, QueryEngine]]" = OrderedDict()
        self._max_engines = self.store.max_cached
        self._mu = threading.Lock()
        self._shards = [threading.RLock() for _ in range(_SERVICE_SHARDS)]
        if fanout_workers is not None and fanout_workers < 1:
            raise StoreError(
                f"fanout_workers must be >= 1, got {fanout_workers}"
            )
        self._fanout_workers = fanout_workers
        self._pool: Optional[ThreadPoolExecutor] = None  # lazy; see _fanout_pool
        self._closed = False
        #: Persistent-cache writes absorbed under pathological write-lock
        #: contention (see :meth:`_cache_put_guarded`): each one cost
        #: warmth (the answer was served uncached), never the request.
        self.cache_write_failures = 0
        #: name -> persistent cache version last observed by this
        #: instance — the cross-process invalidation fence (see
        #: :meth:`_fence_check`).
        self._observed_versions: dict[str, int] = {}

    # -- internals ----------------------------------------------------------

    def _name_lock(self, name: str) -> threading.RLock:
        return self._shards[zlib.crc32(name.encode("utf-8")) % _SERVICE_SHARDS]

    def _engine(self, name: str, digest: str) -> QueryEngine:
        """The shared engine over ``name``'s current content (rebuilt when
        the digest moved; least-recently-used entries evicted beyond the
        store's ``max_cached`` bound)."""
        with self._mu:
            entry = self._engines.get(name)
            if entry is not None and entry[0] == digest:
                self._engines.move_to_end(name)
                return entry[1]
        document = self.store.get(name)
        if isinstance(document, XDocument):
            document = certain_document(document)
        # Stamp the service's cross-document table on the document's
        # shared cache before the engine adopts it: every engine this
        # service builds — including the fan-out pool's workers — then
        # prices literals and small conjunctions through one row store.
        cache = cache_for(document)
        cache.literal_table = self.literal_table
        engine = QueryEngine(document, cache=cache)
        with self._mu:
            entry = self._engines.get(name)
            if entry is not None and entry[0] == digest:
                self._engines.move_to_end(name)
                return entry[1]  # lost the race; share the winner's engine
            self._engines[name] = (digest, engine)
            self._engines.move_to_end(name)
            if self._max_engines is not None:
                while len(self._engines) > self._max_engines:
                    self._engines.popitem(last=False)
        return engine

    def _cache_put_guarded(self, write: Callable[[], None]) -> None:
        """Run one persistent-cache write, absorbing
        :class:`~repro.errors.CacheBusyError`.

        By the time a write runs, the answer is already computed; a
        cache row is warmth, never correctness — so pathological
        write-lock contention (N sibling processes in a writer convoy)
        must cost the row, not the request that did the work.  Absorbed
        writes tick ``cache_write_failures`` (surfaced by
        :meth:`cache_stats`).  This is the *only* sanctioned absorb
        point: reads and mutations let the typed error propagate."""
        try:
            write()
        # impreciselint: disable=no-swallow -- the sanctioned absorb point this rule exists to make unique; counted, documented above
        except CacheBusyError:
            with self._mu:
                self.cache_write_failures += 1

    def _plan_and_digest(
        self, expression: QueryLike
    ) -> tuple[Optional[QueryPlan], str]:
        """Resolve the plan-digest half of the cache key, compiling only
        when the persistent plan memo cannot answer."""
        if (
            self.cache is not None
            and isinstance(expression, str)
        ):
            known = self.cache.plan_digest(expression)
            if known is not None:
                return None, known
        plan = compile_plan(expression)
        if self.cache is not None and isinstance(expression, str):
            self._cache_put_guarded(
                lambda: self.cache.remember_plan(
                    expression, plan.fingerprint_digest
                )
            )
        return plan, plan.fingerprint_digest

    def _fanout_pool(self) -> ThreadPoolExecutor:
        """The lazily-created thread pool fan-outs price documents on
        (created on first :meth:`query_all`/:meth:`aggregate_all`, shut
        down by :meth:`close`).

        Raises :class:`StoreError` after :meth:`close` — silently
        recreating the pool would leak threads past the lifecycle the
        caller thought it had ended."""
        with self._mu:
            if self._closed:
                raise StoreError(
                    "DataspaceService is closed; fan-out is no longer available"
                )
            if self._pool is None:
                workers = self._fanout_workers
                if workers is None:
                    workers = min(32, (os.cpu_count() or 1) + 4)
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="dataspace-fanout"
                )
            return self._pool

    @staticmethod
    def _collect_fanout(
        futures: Sequence[tuple[str, "Future"]]
    ) -> dict:
        """Drain a fan-out with error containment.

        Futures are resolved in submission (pinned sorted-name) order.
        On the first failure every not-yet-started future is cancelled
        and every already-running one is *awaited* before the error
        propagates — no priced-but-orphaned work keeps running behind
        the caller's back, and the surfaced error is deterministically
        the first failing document in name order regardless of which
        future happened to finish first.
        """
        results: dict = {}
        first_error: Optional[BaseException] = None
        for name, future in futures:
            if first_error is not None:
                # No-op for futures already running; result() below then
                # waits for them, so nothing outlives this call.
                future.cancel()
            try:
                results[name] = future.result()
            except CancelledError:
                continue
            # impreciselint: disable=no-swallow -- captured into first_error and re-raised after the drain loop
            except Exception as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results

    @staticmethod
    def _collect_fanout_bounded(
        futures: Sequence[tuple[str, "Future"]],
        deadline: Deadline,
        allow_partial: bool,
        *,
        what: str,
    ) -> tuple[dict, tuple]:
        """Drain a fan-out against a deadline.

        Like :meth:`_collect_fanout` but each wait is capped at the
        budget's remainder.  Once the budget expires, not-yet-started
        futures are cancelled and running stragglers are *abandoned*,
        not awaited — they carry the same deadline on their own threads,
        so their engine checkpoints terminate them promptly; blocking on
        them here would turn a bounded request into an unbounded one.
        Documents that finished in budget are kept either way; without
        ``allow_partial`` any omission raises the typed error.
        """
        results: dict = {}
        omitted: list = []
        expired = deadline.expired()
        for name, future in futures:
            if expired and not future.done():
                future.cancel()
                omitted.append(name)
                continue
            try:
                results[name] = future.result(
                    timeout=max(deadline.remaining_seconds(), 0.0)
                )
            except CancelledError:
                omitted.append(name)
            except FuturesTimeout:
                future.cancel()  # a running straggler self-terminates
                omitted.append(name)
                expired = True
            # impreciselint: disable=no-swallow -- converted to the collective typed raise below (omitted bookkeeping)
            except DeadlineExceededError:
                omitted.append(name)
                expired = True
            except Exception:
                # A real (non-timing) failure outranks partial results:
                # stop the rest and surface it, as _collect_fanout does.
                for _, pending in futures:
                    pending.cancel()
                raise
        if omitted and not allow_partial:
            raise DeadlineExceededError(
                f"{what}: deadline of {deadline.budget_ms}ms exceeded with"
                f" {len(omitted)} of {len(futures)} documents unfinished"
            )
        if omitted and not results:
            raise DeadlineExceededError(
                f"{what}: deadline of {deadline.budget_ms}ms exceeded before"
                f" any of {len(futures)} documents finished"
            )
        return results, tuple(omitted)

    def _select_names(
        self,
        names: Optional[Sequence[str]],
        glob: Optional[str],
        *,
        what: str,
    ) -> list[str]:
        """Resolve a fan-out membership to a pinned sorted name list.

        ``names=None, glob=None`` selects the whole store; explicit
        names are deduplicated, sorted, and checked to exist up front
        (better one clean error than a half-submitted fan-out)."""
        if names is not None and glob is not None:
            raise StoreError(f"{what}: pass either names= or glob=, not both")
        if names is not None:
            selected = sorted(set(names))
            for name in selected:
                if name not in self.store:
                    raise MissingDocumentError(f"no document named {name!r}")
        elif glob is not None:
            selected = self.store.glob(glob)
        else:
            selected = self.store.list()
        if not selected:
            raise MissingDocumentError(
                f"{what} selected no documents"
                + (f" (glob {glob!r})" if glob is not None else "")
            )
        return selected

    def _invalidate(self, name: str) -> None:
        with self._mu:
            self._engines.pop(name, None)
        if self.cache is not None:
            before = self.cache.version(name)
            self.cache.invalidate_document(name)
            after = self.cache.version(name)
            with self._mu:
                if after == before + 1:
                    # Only our own bump: the in-memory state (we just
                    # wrote it) is current, so record the version and
                    # keep the materialization warm.
                    self._observed_versions[name] = after
                else:
                    # A sibling process interleaved a mutation — forget
                    # what we observed so the next read refreshes.
                    self._observed_versions.pop(name, None)

    def _fence_check(self, name: str) -> None:
        """The cross-process invalidation fence (serving-discipline
        point 5): compare the persistent per-name version against the
        one this instance last observed and, on movement, drop every
        piece of in-memory state derived from the old content — the
        shared engine and the store's materialization + content digest
        — so a mutation committed by a sibling process is re-read from
        disk instead of served from a stale materialization.

        Version 0 with nothing observed means the name was never
        invalidated anywhere, so whatever we hold came straight from
        disk and is current.  A request racing the sibling's mutation
        itself may still price the pre-mutation content — that answer
        is keyed by the *old* content digest and stamped with a stale
        version, so it is never served to anyone reading the new state.
        """
        if self.cache is None:
            return
        current = self.cache.version(name)
        with self._mu:
            known = self._observed_versions.get(name)
            if known == current or (known is None and current == 0):
                self._observed_versions[name] = current
                return
            self._observed_versions[name] = current
            self._engines.pop(name, None)
        self.store.refresh(name)

    # -- loading ------------------------------------------------------------

    def load(self, name: str, xml_text: str) -> None:
        """Parse and store a plain XML source document."""
        with self._name_lock(name):
            self._module.load(name, xml_text)
            self._invalidate(name)

    def load_document(
        self, name: str, document: Union[XDocument, PXDocument]
    ) -> None:
        """Store an already-built document under ``name``."""
        with self._name_lock(name):
            self._module.load_document(name, document)
            self._invalidate(name)

    def delete(self, name: str) -> None:
        """Remove a document and every answer cached for it."""
        with self._name_lock(name):
            self.store.delete(name)
            self._invalidate(name)

    def list(self) -> list[str]:
        """All stored document names, sorted."""
        return self.store.list()

    def documents(self) -> list[dict]:
        """``[{"name": ..., "kind": "xml" | "pxml"}, ...]``, sorted by
        name — the listing surface the CLI and the HTTP front share.
        A name deleted concurrently between the listing and its kind
        lookup is skipped, not an error."""
        entries = []
        for name in self.store.list():
            try:
                entries.append({"name": name, "kind": self.store.kind(name)})
            except StoreError:
                continue  # deleted mid-listing by another thread
        return entries

    # -- querying -----------------------------------------------------------

    def query(
        self,
        name: str,
        expression: QueryLike,
        *,
        deadline: Optional[Deadline] = None,
    ) -> RankedAnswer:
        """Ranked probabilistic answer of an XPath query over ``name``.

        Served from the persistent cache when the (content, plan) pair
        has been priced before — by this process or any earlier one.

        ``deadline=`` bounds wall-clock, never precision: it is
        activated on this thread for the duration of the call, the
        engine's evaluation loops poll it, and expiry raises the typed
        :class:`DeadlineExceededError` — the answer is exact or absent,
        never approximate.
        """
        if deadline is None:
            return self._query_unbounded(name, expression)
        with active(deadline):
            deadline.check()
            return self._query_unbounded(name, expression)

    def _query_unbounded(self, name: str, expression: QueryLike) -> RankedAnswer:
        self._fence_check(name)
        plan, plan_digest = self._plan_and_digest(expression)
        if self.cache is not None:
            # Optimistic lock-free fast path: hits deserialize in parallel.
            hit = self.cache.get(name, self.store.digest(name), plan_digest)
            if hit is not None:
                return hit
        with self._name_lock(name):
            # Mutations hold this same lock, so the digest is stable for
            # the whole evaluate-and-persist step below.
            digest = self.store.digest(name)
            if self.cache is not None:
                # Re-check under the lock (a racing miss may have landed);
                # record=False — the optimistic probe already counted.
                hit = self.cache.get(name, digest, plan_digest, record=False)
                if hit is not None:
                    return hit
            # Version observed before evaluating: if another *process*
            # invalidates meanwhile, our row is stamped stale and ignored.
            observed = self.cache.version(name) if self.cache is not None else 0
            engine = self._engine(name, digest)
            answer = engine.run(plan if plan is not None else expression)
            if self.cache is not None:
                self._cache_put_guarded(
                    lambda: self.cache.put(
                        name,
                        digest,
                        plan_digest,
                        answer,
                        expression=expression
                        if isinstance(expression, str)
                        else None,
                        version=observed,
                    )
                )
        return answer

    def run_batch(
        self,
        name: str,
        expressions: Sequence[QueryLike],
        *,
        deadline: Optional[Deadline] = None,
    ) -> list[RankedAnswer]:
        """Evaluate a workload over ``name``; answers align with inputs.

        Persistent hits are deserialized; the misses go through
        :meth:`QueryEngine.run_batch` in one bulk pricing pass, then land
        in the persistent cache.  Fraction-identical to serial
        :meth:`query` calls.  ``deadline=`` behaves as in :meth:`query`
        — the batch either completes exactly or raises typed.
        """
        if deadline is not None:
            with active(deadline):
                deadline.check()
                return self._run_batch_unbounded(name, expressions)
        return self._run_batch_unbounded(name, expressions)

    def _run_batch_unbounded(
        self, name: str, expressions: Sequence[QueryLike]
    ) -> list[RankedAnswer]:
        self._fence_check(name)
        resolved: list[tuple[QueryLike, Optional[QueryPlan], str]] = []
        answers: list[Optional[RankedAnswer]] = [None] * len(expressions)
        misses: list[int] = []
        fast_digest = self.store.digest(name) if self.cache is not None else ""
        for index, expression in enumerate(expressions):
            plan, plan_digest = self._plan_and_digest(expression)
            resolved.append((expression, plan, plan_digest))
            if self.cache is not None:
                hit = self.cache.get(name, fast_digest, plan_digest)
                if hit is not None:
                    answers[index] = hit
                    continue
            misses.append(index)
        if misses:
            with self._name_lock(name):
                digest = self.store.digest(name)
                observed = (
                    self.cache.version(name) if self.cache is not None else 0
                )
                engine = self._engine(name, digest)
                computed = engine.run_batch(
                    [
                        resolved[index][1]
                        if resolved[index][1] is not None
                        else resolved[index][0]
                        for index in misses
                    ]
                )
                for index, answer in zip(misses, computed):
                    answers[index] = answer
                    if self.cache is not None:
                        expression = resolved[index][0]
                        plan_digest = resolved[index][2]
                        self._cache_put_guarded(
                            lambda answer=answer,
                            expression=expression,
                            plan_digest=plan_digest: self.cache.put(
                                name,
                                digest,
                                plan_digest,
                                answer,
                                expression=expression
                                if isinstance(expression, str)
                                else None,
                                version=observed,
                            )
                        )
        return answers  # type: ignore[return-value]

    def query_all(
        self,
        expression: QueryLike,
        *,
        names: Optional[Sequence[str]] = None,
        glob: Optional[str] = None,
        strategy: str = "prob",
        weights: Optional[Mapping[str, WeightLike]] = None,
        rrf_k: Union[int, str, Fraction] = DEFAULT_RRF_K,
        deadline: Optional[Deadline] = None,
        allow_partial: bool = False,
    ) -> FusedAnswer:
        """Fan one query across many documents and fuse the per-document
        answers into a single ranked result (ROADMAP item 2: querying
        the dataspace *as a whole*).

        ``deadline=`` bounds the whole fan-out end-to-end: per-document
        workers carry the same budget (their engine checkpoints stop
        stragglers), and when it expires the call either raises the
        typed :class:`DeadlineExceededError` or — with
        ``allow_partial=True`` — returns the fusion of the documents
        that finished, with the unfinished names recorded in the
        answer's ``omitted`` marker (``FusedAnswer.partial`` is then
        true).  Every per-document answer that *is* fused remains exact.

        The membership is the whole store by default, or ``names=``
        (explicit list) / ``glob=`` (shell-style pattern, see
        :meth:`DocumentStore.glob`) — always resolved to the pinned
        sorted order, so fused ranks are reproducible across platforms
        and argument orders.  The plan is compiled **once** and each
        document is priced through the full serving stack —
        per-document persistent rows hit lock-free in parallel on the
        fan-out thread pool; misses price through the shared engines —
        so a warm fan-out touches no engine at all.  Cold misses share
        the service's cross-document ``literal_table`` across the pool:
        literal and small-conjunction rows derived while pricing one
        document resolve by value for every other document in the
        fan-out instead of being re-derived per document.  Fusion
        semantics
        (``strategy``, ``weights``, ``rrf_k``) are
        :func:`repro.query.fusion.fuse_answers`.

        >>> service = DataspaceService()
        >>> service.load("a", "<r><x>1</x></r>")
        >>> service.load("b", "<r><x>1</x><x>2</x></r>")
        >>> service.query_all("//x").values()
        ['1', '2']

        Fraction-identical to fusing serial :meth:`query` calls.
        """
        selected = self._select_names(names, glob, what="query_all")
        if deadline is not None:
            deadline.check()
        plan, _ = self._plan_and_digest(expression)
        if plan is None:
            # Persistent plan-memo hit: the digest is known but the
            # fan-out still wants one shared compiled plan object.
            plan = compile_plan(expression)
        pool = self._fanout_pool()
        # Keep the unbounded call shape kwarg-free so test doubles (and
        # subclasses) that shim ``query(name, plan)`` stay compatible.
        futures = [
            (
                name,
                pool.submit(self.query, name, plan)
                if deadline is None
                else pool.submit(self.query, name, plan, deadline=deadline),
            )
            for name in selected
        ]
        if deadline is None:
            answers = self._collect_fanout(futures)
            omitted: tuple = ()
        else:
            answers, omitted = self._collect_fanout_bounded(
                futures, deadline, allow_partial, what="query_all"
            )
            if omitted and weights is not None:
                # The prior renormalizes over the documents that
                # finished; a weight naming an omitted document would
                # otherwise be rejected as unknown to the fusion.
                weights = {
                    name: value
                    for name, value in weights.items()
                    if name in answers
                }
        fused = fuse_answers(
            answers, strategy=strategy, weights=weights, rrf_k=rrf_k
        )
        fused.omitted = omitted
        return fused

    def aggregate_all(
        self,
        kind: Union[str, AggregateSpec],
        target: Optional[str] = None,
        *,
        text: Optional[str] = None,
        names: Optional[Sequence[str]] = None,
        glob: Optional[str] = None,
        weights: Optional[Mapping[str, WeightLike]] = None,
        deadline: Optional[Deadline] = None,
    ) -> AggregateDistribution:
        """Fan one aggregate across many documents and return the exact
        mixture distribution under the per-document prior (see
        :func:`repro.query.fusion.fuse_aggregates`).

        The spec is compiled once; each document goes through
        :meth:`aggregate`'s serving discipline (persistent aggregate
        rows hit lock-free) on the fan-out pool.  ``deadline=`` bounds
        the fan-out; expiry raises the typed error — there is no partial
        mode here, because a mixture silently renormalized over a subset
        of documents would *misrepresent* the distribution rather than
        degrade it visibly.

        >>> service = DataspaceService()
        >>> service.load("a", "<r><p>1</p></r>")
        >>> service.load("b", "<r><p>1</p><p>2</p></r>")
        >>> service.aggregate_all("count", "p")
        {1: Fraction(1, 2), 2: Fraction(1, 2)}
        """
        selected = self._select_names(names, glob, what="aggregate_all")
        if deadline is not None:
            deadline.check()
        if isinstance(kind, AggregateSpec):
            if target is not None or text is not None:
                raise QueryError(
                    "pass either a compiled AggregateSpec or (kind,"
                    " target, text=), not both"
                )
            spec = kind
        else:
            spec = compile_aggregate(kind, target, text=text)
        pool = self._fanout_pool()
        futures = [
            (
                name,
                pool.submit(self.aggregate, name, spec)
                if deadline is None
                else pool.submit(
                    self.aggregate, name, spec, deadline=deadline
                ),
            )
            for name in selected
        ]
        if deadline is None:
            distributions = self._collect_fanout(futures)
        else:
            distributions, _ = self._collect_fanout_bounded(
                futures, deadline, allow_partial=False, what="aggregate_all"
            )
        return fuse_aggregates(distributions, weights=weights)

    def aggregate(
        self,
        name: str,
        kind: Union[str, AggregateSpec],
        target: Optional[str] = None,
        *,
        text: Optional[str] = None,
        deadline: Optional[Deadline] = None,
    ) -> AggregateDistribution:
        """Exact aggregate distribution (``count``/``sum``/``min``/
        ``max``/``exists`` — see :mod:`repro.query.aggregates`) over
        ``name``, with the same serving discipline as :meth:`query`:
        persistent hits deserialize lock-free from the aggregate rows,
        misses convolve under the name's shard lock (through the shared
        engine's document, so the in-memory memo side table is shared
        with queries) and persist the distribution.  ``deadline=``
        behaves as in :meth:`query`.

        >>> service = DataspaceService()
        >>> service.load("a", "<r><p>3</p><p>4</p></r>")
        >>> service.aggregate("a", "sum", "p")
        {7: Fraction(1, 1)}
        """
        if deadline is not None:
            with active(deadline):
                deadline.check()
                return self._aggregate_unbounded(name, kind, target, text=text)
        return self._aggregate_unbounded(name, kind, target, text=text)

    def _aggregate_unbounded(
        self,
        name: str,
        kind: Union[str, AggregateSpec],
        target: Optional[str] = None,
        *,
        text: Optional[str] = None,
    ) -> AggregateDistribution:
        if isinstance(kind, AggregateSpec):
            if target is not None or text is not None:
                # Mirror aggregate_distribution's guard: silently
                # dropping the filter would serve the wrong distribution.
                raise QueryError(
                    "pass either a compiled AggregateSpec or (kind,"
                    " target, text=), not both"
                )
            spec = kind
        else:
            spec = compile_aggregate(kind, target, text=text)
        self._fence_check(name)
        if self.cache is not None:
            # Optimistic lock-free fast path, as in query().
            hit = self.cache.get_aggregate(
                name, self.store.digest(name), spec.digest
            )
            if hit is not None:
                return hit
        with self._name_lock(name):
            digest = self.store.digest(name)
            if self.cache is not None:
                hit = self.cache.get_aggregate(
                    name, digest, spec.digest, record=False
                )
                if hit is not None:
                    return hit
            observed = self.cache.version(name) if self.cache is not None else 0
            engine = self._engine(name, digest)
            distribution = aggregate_distribution(
                engine.document, spec, cache=engine.cache
            )
            if self.cache is not None:
                self._cache_put_guarded(
                    lambda: self.cache.put_aggregate(
                        name,
                        digest,
                        spec.digest,
                        distribution,
                        spec=spec.describe(),
                        version=observed,
                    )
                )
        return distribution

    def stats(self, name: str) -> NodeStats:
        """Uncertainty census of a stored document."""
        return self._module.stats(name)

    # -- integration / feedback ---------------------------------------------

    def integrate(
        self,
        name_a: str,
        name_b: str,
        output: str,
        *,
        rules: Sequence[Rule] = (),
        oracle: Optional[Oracle] = None,
        dtd: Optional[DTD] = None,
        factor_components: bool = True,
        max_possibilities: int = 20_000,
    ) -> IntegrationReport:
        """Integrate two stored sources into a stored probabilistic
        document (see :meth:`ImpreciseModule.integrate`); invalidates any
        answers previously cached under ``output``."""
        with self._name_lock(output):
            report = self._module.integrate(
                name_a,
                name_b,
                output,
                rules=rules,
                oracle=oracle,
                dtd=dtd,
                factor_components=factor_components,
                max_possibilities=max_possibilities,
            )
            self._invalidate(output)
            return report

    def feedback(
        self, name: str, expression: str, value: str, *, correct: bool = True
    ) -> FeedbackStep:
        """Apply one piece of answer feedback, persist the conditioned
        posterior document, and invalidate ``name``'s cached answers."""
        with self._name_lock(name):
            step = self._module.feedback(name, expression, value, correct=correct)
            self._invalidate(name)
            return step

    # -- diagnostics ---------------------------------------------------------

    def cache_stats(self) -> dict:
        """Merged counters: persistent store plus in-memory engine caches."""
        stats: dict = {}
        if self.cache is not None:
            stats.update(self.cache.stats())
        with self._mu:
            engines = list(self._engines.items())
        memory_entries = 0
        memory_hits = 0
        memory_misses = 0
        memory_evictions = 0
        for _, (_, engine) in engines:
            counters = engine.cache_stats()
            memory_entries += counters.get("entries", 0)
            memory_hits += counters.get("hits", 0)
            memory_misses += counters.get("misses", 0)
            memory_evictions += counters.get("evictions", 0)
        stats.update(
            {
                "engines": len(engines),
                "memory_entries": memory_entries,
                "memory_hits": memory_hits,
                "memory_misses": memory_misses,
                "memory_evictions": memory_evictions,
                "cache_write_failures": self.cache_write_failures,
            }
        )
        # The cross-document row store is one shared instance, so its
        # counters are reported once, never summed per engine.
        for key, value in self.literal_table.stats().items():
            stats[f"literal_table_{key}"] = value
        return stats

    def close(self) -> None:
        """Release the persistent cache connection and the fan-out
        thread pool.  Idempotent — a second :meth:`close` is a no-op;
        a :meth:`query_all`/:meth:`aggregate_all` *after* close raises
        :class:`StoreError` instead of silently resurrecting the pool."""
        with self._mu:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self.cache is not None:
            self.cache.close()

    def __enter__(self) -> "DataspaceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        persistent = self.cache.path if self.cache is not None else None
        return (
            f"DataspaceService(documents={len(self.store.list())},"
            f" persistent={str(persistent)!r})"
        )
