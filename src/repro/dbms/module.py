"""The "IMPrECISE module": the paper's Figure 4 middle/top layers.

One façade object that applications talk to: load documents, integrate
them (producing stored probabilistic documents), query with ranked
answers, inspect uncertainty statistics, and apply user feedback — the
full demo workflow of §VII, minus the GUI.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..core.engine import (
    IntegrationConfig,
    IntegrationReport,
    Integrator,
)
from ..core.oracle import Oracle
from ..core.rules import Rule
from ..errors import StoreError
from ..feedback.conditioning import FeedbackSession, FeedbackStep
from ..pxml.build import certain_document
from ..pxml.model import PXDocument
from ..pxml.stats import NodeStats, tree_stats
from ..pxml.worlds import World, iter_worlds
from ..query.engine import ProbQueryEngine
from ..query.ranking import RankedAnswer
from ..xmlkit.dtd import DTD
from ..xmlkit.nodes import XDocument
from ..xmlkit.parser import parse_document
from .store import DocumentStore


class ImpreciseModule:
    """Probabilistic XML functionality over a document store.

    >>> module = ImpreciseModule()
    >>> module.load("a", "<r><x>1</x></r>")
    >>> module.load("b", "<r><x>1</x></r>")
    >>> from repro.core.rules import DeepEqualRule, LeafValueRule
    >>> report = module.integrate("a", "b", "ab",
    ...                           rules=[DeepEqualRule(), LeafValueRule()])
    >>> module.stats("ab").world_count
    1
    """

    def __init__(self, store: Optional[DocumentStore] = None):
        self.store = store if store is not None else DocumentStore()

    # -- loading ------------------------------------------------------------

    def load(self, name: str, xml_text: str) -> None:
        """Parse and store a plain XML source document."""
        self.store.put(name, parse_document(xml_text))

    def load_document(self, name: str, document: Union[XDocument, PXDocument]) -> None:
        """Store an already-built (plain or probabilistic) document."""
        self.store.put(name, document)

    def _plain(self, name: str) -> XDocument:
        document = self.store.get(name)
        if not isinstance(document, XDocument):
            raise StoreError(f"{name!r} is probabilistic; integration needs sources")
        return document

    def probabilistic(self, name: str) -> PXDocument:
        """The stored document as a :class:`PXDocument` — plain documents
        are wrapped as certain (single-world) probabilistic ones, so every
        stored name can be queried probabilistically."""
        document = self.store.get(name)
        if isinstance(document, PXDocument):
            return document
        # Querying a plain document works through its certain wrapper.
        return certain_document(document)

    # Backwards-compatible alias (pre-docs-PR name).
    _probabilistic = probabilistic

    # -- integration -----------------------------------------------------------

    def integrate(
        self,
        name_a: str,
        name_b: str,
        output: str,
        *,
        rules: Sequence[Rule] = (),
        oracle: Optional[Oracle] = None,
        dtd: Optional[DTD] = None,
        factor_components: bool = True,
        max_possibilities: int = 20_000,
    ) -> IntegrationReport:
        """Integrate two stored sources into a stored probabilistic
        document; returns the integration report."""
        config = IntegrationConfig(
            oracle=oracle if oracle is not None else Oracle(list(rules)),
            dtd=dtd,
            factor_components=factor_components,
            max_possibilities=max_possibilities,
        )
        result = Integrator(config).integrate(self._plain(name_a), self._plain(name_b))
        self.store.put(output, result.document)
        return result.report

    # -- querying ---------------------------------------------------------------

    def query(self, name: str, xpath: str) -> RankedAnswer:
        """Ranked probabilistic answer of an XPath query."""
        return ProbQueryEngine(self.probabilistic(name)).query(xpath)

    def stats(self, name: str) -> NodeStats:
        """Uncertainty census of a stored document."""
        return tree_stats(self.probabilistic(name))

    def worlds(self, name: str, *, limit: Optional[int] = 1000) -> list[World]:
        """Enumerate the possible worlds of a stored document."""
        return list(iter_worlds(self.probabilistic(name), limit=limit))

    # -- feedback ------------------------------------------------------------------

    def feedback(
        self, name: str, xpath: str, value: str, *, correct: bool = True
    ) -> FeedbackStep:
        """Apply one piece of answer feedback and persist the posterior."""
        session = FeedbackSession(self.probabilistic(name))
        step = session.confirm(xpath, value) if correct else session.reject(xpath, value)
        self.store.put(name, session.document)
        return step
