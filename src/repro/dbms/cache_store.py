"""Persistent, cross-process answer/plan cache for the dataspace service.

The in-memory amortization layers (compiled plans, per-document
:class:`~repro.pxml.events_cache.EventProbabilityCache`) die with the
process.  This module adds the third layer the ROADMAP's heavy-traffic
north star needs: an on-disk table of *priced answers*, so a restarted
service re-serves a whole workload without re-walking a single tree.

Keying — both halves are stable across processes by contract:

* the **plan** half is :attr:`repro.query.plan.QueryPlan.fingerprint_digest`
  (SHA-256 of the canonical structural fingerprint: two surface spellings
  of the same query share one entry);
* the **document** half is :func:`document_digest` — SHA-256 of the
  document's canonical serialization, i.e. exactly the bytes
  :class:`~repro.dbms.store.DocumentStore` persists.  A document edited
  in any way gets a new digest, so stale answers can never be served —
  content addressing is the correctness mechanism, invalidation below is
  only hygiene.

Values are ranked answers with **exact** ``Fraction`` probabilities;
they round-trip through a ``numerator/denominator`` wire form, so a
warm-started process returns bit-identical Fractions.  Aggregate
distributions (:mod:`repro.query.aggregates`) persist alongside them in
their own table, keyed the same way with
:attr:`~repro.query.aggregates.AggregateSpec.digest` as the plan half.

Invalidation is versioned per document name: :meth:`~AnswerCacheStore.
invalidate_document` (called by the service on ``put``/``delete``/
feedback conditioning/re-integration) bumps the name's version and drops
its rows; rows also record the version they were written under and are
ignored if it has since moved on, which keeps a concurrent writer from
resurrecting a purged answer.  A global :data:`SCHEMA_VERSION` guards the
file format itself — any change to the payload encoding or the
fingerprint encoding recreates the tables rather than misreading them.

Growth is bounded two ways: invalidation drops a mutated document's
rows, and an optional ``max_rows`` bound evicts the least-recently-hit
rows on overflow (LRU by ``last_hit``, a file-global monotonic stamp) —
an evicted answer is recomputed and re-stored on its next miss, so the
bound trades disk for recompute, never correctness.

The backing store is SQLite (stdlib, one file, safe for concurrent
readers); one :class:`AnswerCacheStore` serializes its own statements
behind a lock, so a single instance may be shared by many threads.

**Many processes, one file** (the ``imprecise serve --workers N``
deployment) is safe by construction:

* the journal is WAL, so readers never block writers and vice versa;
* every connection sets ``PRAGMA busy_timeout``, so a write that meets
  another process's write transaction *waits* instead of failing with
  ``SQLITE_BUSY``;
* every write runs as a ``BEGIN IMMEDIATE`` transaction — the write
  lock is taken up front, so a transaction can never fail mid-way on a
  lock upgrade — with a bounded retry loop on top of the timeout; a
  budget exhausted under pathological contention surfaces as the typed
  :class:`~repro.errors.CacheBusyError`, never as a raw
  ``sqlite3.OperationalError: database is locked``;
* the per-name ``versions`` table is the **cross-process invalidation
  fence**: every lookup compares the row's recorded version against the
  current one, and :meth:`~AnswerCacheStore.version` lets a service
  observe another process's invalidation and drop its own in-memory
  state (see ``DataspaceService``'s fence check).

**Corruption is quarantined, never fatal.**  The cache is derived data —
every row can be recomputed from the document store — so a corrupted
file (truncated, garbled, torn WAL) costs warmth, never correctness or
availability.  When an open, read or write classifies as corruption
(:meth:`~AnswerCacheStore._is_corruption`; transient ``busy``/``locked``
contention is explicitly *not* corruption), the store moves the file
aside to the first free ``answers.sqlite.corrupt-N`` slot (sidecar
``-wal``/``-shm`` journals included, kept for post-mortems), rebuilds an
empty cache at the original path, and carries on — reads return misses,
writes land in the fresh file, and the ``persistent_recoveries`` counter
ticks.  Siblings sharing the file follow the swap by inode: every public
operation stats the path first and reconnects when the inode changed, so
a fleet member holding a descriptor to the quarantined inode joins the
healthy replacement instead of quarantining it.  A raw ``sqlite3``
exception never escapes this module for a corrupt file.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import sqlite3
import threading
import time
from fractions import Fraction
from pathlib import Path
from typing import Callable, Optional, Union

from ..errors import CacheBusyError, StoreError, WireFormatError
from ..pxml.model import PXDocument
from ..pxml.serialize import pxml_to_text
from ..query.aggregates import AggregateDistribution, canonical_items
from ..query.ranking import RankedAnswer, RankedItem
from ..xmlkit.nodes import XDocument
from ..xmlkit.serializer import serialize

__all__ = [
    "AnswerCacheStore",
    "document_digest",
    "SCHEMA_VERSION",
    "encode_fraction",
    "decode_fraction",
    "encode_answer",
    "decode_answer",
    "encode_aggregate_distribution",
    "decode_aggregate_distribution",
]

#: Bump on any change to the payload wire format, the fingerprint
#: encoding (see ``QueryPlan.fingerprint_digest``) or the table layout;
#: existing cache files are then dropped and rebuilt, never misread.
#: 2: ``answers`` gained the ``last_hit`` LRU column (row eviction).
#: 3: the ``aggregates`` table (persisted aggregate distributions keyed
#:    by ``AggregateSpec.digest`` × document digest).
#: The pin below fingerprints the codec *surface* (field keys, table
#: columns, ``*_FIELDS`` tuples); ``impreciselint`` refuses codec edits
#: until the pin is refreshed — and a reviewer has decided whether the
#: version must bump (see docs/development.md).
SCHEMA_VERSION = 3  # impreciselint: schema-surface=f8ab7e17df51

#: Default cache file name inside a cache directory.
CACHE_FILENAME = "answers.sqlite"

#: How long (ms) a connection waits on another process's write
#: transaction before SQLite reports busy; generous because waiting is
#: always better than recomputing a priced answer.
DEFAULT_BUSY_TIMEOUT_MS = 5_000

#: Write attempts on top of the busy timeout before the typed
#: :class:`~repro.errors.CacheBusyError` surfaces.
WRITE_RETRIES = 5

#: Strict wire shape: optional sign, digits, '/', digits — no whitespace
#: (``int()`` alone would tolerate ``"1 /2"``), no floats, no hex.
_FRACTION_RE = re.compile(r"^(-?\d+)/(\d+)$")


def document_digest(document: Union[XDocument, PXDocument]) -> str:
    """Content hash of a stored document, stable across processes.

    SHA-256 over the canonical serialization (``pxml_to_text`` for
    probabilistic documents, ``serialize`` for plain ones) with a kind
    prefix, so an XML and a PXML document can never collide.  This is
    byte-identical to what :class:`~repro.dbms.store.DocumentStore`
    writes to disk, so hashing the file and hashing the materialized
    document agree.
    """
    if isinstance(document, PXDocument):
        text = "pxml\x00" + pxml_to_text(document)
    elif isinstance(document, XDocument):
        text = "xml\x00" + serialize(document)
    else:
        raise StoreError(
            f"cannot digest {type(document).__name__};"
            " expected XDocument or PXDocument"
        )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def encode_fraction(value: Fraction) -> str:
    """Exact wire form of a :class:`~fractions.Fraction`: ``"num/den"``.

    Always carries the denominator (``Fraction(1)`` → ``"1/1"``) so the
    decoder never guesses; arbitrary-precision integers survive because
    they travel as decimal strings, never floats.  This is the one
    Fraction encoding of the repository — the persistent cache rows and
    the HTTP wire format (:mod:`repro.server.wire`) both use it.
    """
    return f"{value.numerator}/{value.denominator}"


def decode_fraction(text: str) -> Fraction:
    """Inverse of :func:`encode_fraction`; strict.

    Raises :class:`~repro.errors.WireFormatError` on anything but
    ``"<int>/<positive int>"`` — this decodes cache rows and network
    payloads, so garbage must fail loudly, not half-parse.
    """
    if not isinstance(text, str):
        raise WireFormatError(
            f"fraction must be a string, got {type(text).__name__}"
        )
    match = _FRACTION_RE.match(text)
    if match is None:
        raise WireFormatError(f"malformed fraction {text!r}")
    try:
        return Fraction(int(match.group(1)), int(match.group(2)))
    except ZeroDivisionError:
        raise WireFormatError(f"malformed fraction {text!r}: zero denominator") from None


def encode_answer(answer: RankedAnswer) -> list[list[object]]:
    """Wire form of a ranked answer: ``[[value, "num/den", occurrences],
    ...]`` — JSON-ready, order-preserving, exact."""
    return [
        [item.value, encode_fraction(item.probability), item.occurrences]
        for item in answer.items
    ]


def decode_answer(payload: object) -> RankedAnswer:
    """Inverse of :func:`encode_answer`; strict (see
    :func:`decode_fraction`)."""
    if not isinstance(payload, list):
        raise WireFormatError(
            f"answer payload must be a list, got {type(payload).__name__}"
        )
    items: list[RankedItem] = []
    for entry in payload:
        if not (isinstance(entry, (list, tuple)) and len(entry) == 3):
            raise WireFormatError(f"malformed answer item {entry!r}")
        value, fraction, occurrences = entry
        if not isinstance(value, str) or not isinstance(occurrences, int) \
                or isinstance(occurrences, bool):
            raise WireFormatError(f"malformed answer item {entry!r}")
        items.append(RankedItem(value, decode_fraction(fraction), occurrences))
    return RankedAnswer(items)


def _encode_answer(answer: RankedAnswer) -> str:
    """JSON row payload: ``[[value, "num/den", occurrences], ...]``."""
    return json.dumps(encode_answer(answer), ensure_ascii=False)


def _decode_answer(payload: str) -> RankedAnswer:
    return decode_answer(json.loads(payload))


def encode_aggregate_distribution(
    distribution: AggregateDistribution,
) -> list[list[object]]:
    """Wire form of an aggregate distribution
    (:data:`repro.query.aggregates.AggregateDistribution`):
    ``[[value, "num/den"], ...]`` in canonical order (``None`` — the
    min/max no-match outcome — first, then ascending).

    Values are encoded losslessly by type: ``None`` → JSON ``null``,
    integers (counts, integral sums) → JSON integers, non-integral
    Fractions → the exact ``"num/den"`` string.  Probabilities are
    always ``"num/den"``.  For pure count distributions this emits
    exactly the ``[[count, "num/den"], ...]`` shape of
    :func:`repro.server.wire.encode_distribution`.  Ordering and key
    normalization come from the subsystem's one canonical rule,
    :func:`repro.query.aggregates.canonical_items`.
    """
    return [
        [
            encode_fraction(key) if isinstance(key, Fraction) else key,
            encode_fraction(probability),
        ]
        for key, probability in canonical_items(distribution)
    ]


def decode_aggregate_distribution(payload: object) -> AggregateDistribution:
    """Inverse of :func:`encode_aggregate_distribution`; strict.

    Integral values always decode to ``int`` (a foreign ``"4/1"``
    normalizes to ``4``) so a decoded distribution is key-identical to
    the freshly-computed one, not merely ``==``."""
    if not isinstance(payload, list):
        raise WireFormatError(
            f"aggregate distribution must be a list,"
            f" got {type(payload).__name__}"
        )
    distribution: AggregateDistribution = {}
    for entry in payload:
        if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
            raise WireFormatError(f"malformed aggregate entry {entry!r}")
        key, probability = entry
        if isinstance(key, str):
            key = decode_fraction(key)
            if key.denominator == 1:
                key = int(key)
        elif isinstance(key, bool) or not (key is None or isinstance(key, int)):
            raise WireFormatError(f"malformed aggregate value {entry[0]!r}")
        if key in distribution:
            raise WireFormatError(f"duplicate aggregate value {entry[0]!r}")
        distribution[key] = decode_fraction(probability)
    return distribution


def _encode_aggregate(distribution: AggregateDistribution) -> str:
    return json.dumps(encode_aggregate_distribution(distribution), ensure_ascii=False)


def _decode_aggregate(payload: str) -> AggregateDistribution:
    return decode_aggregate_distribution(json.loads(payload))


class AnswerCacheStore:  # impreciselint: guarded-by=_lock
    """On-disk answer/plan cache shared across processes.

    Construct with a directory (the standard layout — the SQLite file is
    created inside it) or a path to the database file itself::

        cache = AnswerCacheStore("/var/lib/imprecise/cache")
        hit = cache.get("movies", doc_digest, plan_digest)

    ``max_rows`` bounds the on-disk answer table: beyond it, the rows
    whose ``last_hit`` stamp is oldest are evicted on the next
    :meth:`put` (LRU by last hit — an answer re-served yesterday outlives
    one never asked for again).  The stamp is a file-global monotonic
    counter, so the ordering holds across processes sharing the file.
    Eviction is pure hygiene: an evicted answer is simply re-priced and
    re-stored on its next miss.  ``None`` (the default) keeps every row
    *and* keeps hits read-only — bounded stores pay one ``UPDATE`` per
    hit to maintain recency.

    Hit/miss/store/eviction counters are per-instance (process-local);
    row counts are global.  All methods are thread-safe.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        max_rows: Optional[int] = None,
        busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
        write_retries: int = WRITE_RETRIES,
    ) -> None:
        if max_rows is not None and max_rows < 1:
            raise StoreError(f"max_rows must be >= 1, got {max_rows}")
        if busy_timeout_ms < 0:
            raise StoreError(
                f"busy_timeout_ms must be >= 0, got {busy_timeout_ms}"
            )
        if write_retries < 1:
            raise StoreError(f"write_retries must be >= 1, got {write_retries}")
        path = Path(path)
        if path.suffix != ".sqlite":
            path.mkdir(parents=True, exist_ok=True)
            # impreciselint: disable=float-taint -- pathlib join, not arithmetic
            path = path / CACHE_FILENAME
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        self.path = path
        self.max_rows = max_rows
        self.busy_timeout_ms = busy_timeout_ms
        self.write_retries = write_retries
        self._lock = threading.Lock()
        # isolation_level=None: the connection stays in autocommit and
        # *this module* frames every write as an explicit BEGIN IMMEDIATE
        # transaction (the driver's implicit DEFERRED transactions would
        # acquire the write lock mid-transaction — exactly the upgrade
        # path that fails unrecoverably under multi-process contention).
        self._conn = sqlite3.connect(
            str(path), check_same_thread=False, isolation_level=None
        )
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.aggregate_hits = 0
        self.aggregate_misses = 0
        self.aggregate_stored = 0
        self.invalidations = 0
        self.evictions = 0
        self.busy_retries = 0
        self.recoveries = 0
        self._recovering = False
        self._inode: Optional[int] = None
        #: Pending recency updates, (name, doc_digest, plan_digest) ->
        #: stamp.  Bounded stores buffer hit recency here instead of
        #: writing per hit (the hit path must stay read-only: no UPDATE,
        #: no commit fsync); flushed before the next put/close, which is
        #: also when eviction decisions are made.  A crash loses pending
        #: recency only — eviction *order*, never correctness.
        self._touches: dict[tuple[str, str, str], int] = {}
        self._clock: int = 0
        with self._lock:
            try:
                self._init_schema()
                self._clock = int(
                    self._conn.execute(
                        "SELECT COALESCE(MAX(last_hit), 0) FROM answers"
                    ).fetchone()[0]
                )
                self._record_inode_locked()
            except sqlite3.DatabaseError as error:
                # A corrupt file on open is quarantined and rebuilt —
                # opening a cache must never fail because a previous
                # process died mid-write.
                if not self._is_corruption(error):
                    raise
                self._recover_locked(error)

    # -- write transactions -------------------------------------------------

    @staticmethod
    def _is_busy(error: sqlite3.OperationalError) -> bool:
        text = str(error).lower()
        return "locked" in text or "busy" in text

    #: ``sqlite3.OperationalError`` messages that mean the file itself is
    #: damaged (vs. transient contention): torn pages, a non-SQLite file
    #: at the path, a schema wiped by truncation.
    _CORRUPTION_MARKERS: tuple[str, ...] = (
        "malformed",
        "not a database",
        "corrupt",
        "no such table",
        "disk image",
        "file is encrypted",
    )

    @classmethod
    def _is_corruption(cls, error: sqlite3.DatabaseError) -> bool:
        """Classify a ``sqlite3.DatabaseError`` as file corruption.

        ``OperationalError`` is a *subclass* of ``DatabaseError`` and
        covers both transient contention (``database is locked``) and
        genuine damage (``database disk image is malformed``), so the
        operational case classifies by message — busy/locked is never
        corruption.  ``ProgrammingError`` (API misuse, closed handles)
        is never corruption either.  ``IntegrityError``/``DatabaseError``
        proper are corruption outright: this cache defines no constraints
        its own writes could violate."""
        if isinstance(error, sqlite3.ProgrammingError):
            return False
        if isinstance(error, sqlite3.OperationalError):
            if cls._is_busy(error):
                return False
            text = str(error).lower()
            return any(marker in text for marker in cls._CORRUPTION_MARKERS)
        return True

    # -- corruption quarantine ----------------------------------------------

    def _record_inode_locked(self) -> None:
        """Remember which inode currently backs ``self.path`` (the swap
        detector for sibling-process recoveries)."""
        try:
            self._inode = os.stat(self.path).st_ino
        except OSError:
            self._inode = None

    def _quarantine_locked(self) -> Optional[Path]:
        """Move the (presumed corrupt) cache file aside to the first free
        ``<name>.corrupt-N`` slot, sidecar journals included.

        Returns the quarantine path, or ``None`` when the file is already
        gone — e.g. a sibling process quarantined it first."""
        sidecars = ("-wal", "-shm")
        if not self.path.exists():
            for suffix in sidecars:
                Path(str(self.path) + suffix).unlink(missing_ok=True)
            return None
        number = 1
        while Path(f"{self.path}.corrupt-{number}").exists():
            number += 1
        target = Path(f"{self.path}.corrupt-{number}")
        try:
            self.path.rename(target)
        except OSError:
            return None  # raced a sibling's quarantine; theirs won
        for suffix in sidecars:
            sidecar = Path(str(self.path) + suffix)
            try:
                sidecar.rename(Path(str(target) + suffix))
            except OSError:
                pass  # no journal to preserve
        return target

    def _recover_locked(self, cause: sqlite3.DatabaseError) -> None:
        """Quarantine the corrupt cache file and rebuild an empty one
        (caller holds the instance lock).

        The cache is derived data: every row can be recomputed from the
        document store, so corruption costs warmth, never correctness.
        The damaged file is moved aside (``*.corrupt-N``) rather than
        deleted, for post-mortems.  Corruption striking *again* while
        rebuilding (a wrecked filesystem, not a wrecked file) aborts
        with :class:`~repro.errors.StoreError` instead of looping."""
        if self._recovering:
            raise StoreError(
                f"answer cache at {self.path} failed again while rebuilding"
                f" after corruption: {cause}"
            ) from cause
        self._recovering = True
        try:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass  # the handle is already wrecked; quarantine regardless
            self._quarantine_locked()
            self._conn = sqlite3.connect(
                str(self.path), check_same_thread=False, isolation_level=None
            )
            self._init_schema()
            self._touches.clear()
            self._clock = 0
            self._record_inode_locked()
            self.recoveries += 1
        finally:
            self._recovering = False

    def _ensure_current_locked(self) -> None:
        """Follow a sibling process's quarantine swap (caller holds the
        instance lock).

        Recovery renames the corrupt file and creates a fresh one at the
        same path; a sibling still holds a descriptor to the *renamed*
        (corrupt) inode.  Every public operation therefore stats the
        path first and reconnects when the backing inode changed or
        vanished — the sibling never quarantines the healthy
        replacement, it simply joins it (counted as a recovery)."""
        try:
            inode: Optional[int] = os.stat(self.path).st_ino
        except OSError:
            inode = None
        if inode is not None and inode == self._inode:
            return
        try:
            self._conn.close()
        except sqlite3.Error:
            pass  # stale handle to the quarantined inode
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        self._init_schema()
        self._touches.clear()
        self._clock = 0
        self._record_inode_locked()
        self.recoveries += 1

    def _write_txn_locked(self, apply: Callable[[], None]) -> None:
        """Run ``apply`` as one ``BEGIN IMMEDIATE`` write transaction
        (caller holds the instance lock).

        ``BEGIN IMMEDIATE`` takes the database write lock up front — so
        the transaction either starts with the lock or fails cleanly at
        ``BEGIN``, never half-way through on a deferred lock upgrade.
        Each attempt already waits ``busy_timeout_ms`` inside SQLite; the
        bounded retry loop on top covers writer convoys across N serving
        processes, and exhaustion raises the typed
        :class:`~repro.errors.CacheBusyError` (callers must never see a
        raw ``database is locked``).  An attempt that classifies as file
        *corruption* quarantines and rebuilds the cache
        (:meth:`_recover_locked`) and retries against the fresh file —
        the raw driver exception never escapes for a damaged file either.
        """
        last: Optional[sqlite3.DatabaseError] = None
        for attempt in range(self.write_retries):
            if attempt:
                self.busy_retries += 1
                # Exponential backoff between attempts, on top of the
                # in-driver busy wait; capped so a contended close()
                # never stalls for seconds.
                # impreciselint: disable=float-taint -- backoff seconds, not probability
                time.sleep(min(0.1, 0.005 * (1 << attempt)))
            try:
                self._conn.execute("BEGIN IMMEDIATE")
            except sqlite3.DatabaseError as error:
                if isinstance(error, sqlite3.OperationalError) and \
                        self._is_busy(error):
                    last = error
                    continue
                if self._is_corruption(error):
                    self._recover_locked(error)
                    last = error
                    continue
                raise
            try:
                apply()
                self._conn.execute("COMMIT")
                return
            except sqlite3.DatabaseError as error:
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass  # the transaction never started or already died
                if isinstance(error, sqlite3.OperationalError) and \
                        self._is_busy(error):
                    last = error
                    continue
                if self._is_corruption(error):
                    self._recover_locked(error)
                    last = error
                    continue
                raise
        raise CacheBusyError(
            f"cache write on {self.path} still locked after"
            f" {self.write_retries} attempts"
            f" (busy_timeout {self.busy_timeout_ms} ms)"
        ) from last

    # -- schema -------------------------------------------------------------

    def _init_schema(self) -> None:
        conn = self._conn
        # Pragmas run in autocommit (journal_mode cannot change inside a
        # transaction); busy_timeout first, so even the WAL switch waits
        # politely when another process is mid-write.
        conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout_ms)}")
        conn.execute("PRAGMA journal_mode=WAL")
        self._write_txn_locked(self._create_tables_locked)

    def _create_tables_locked(self) -> None:
        conn = self._conn
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is not None and row[0] != str(SCHEMA_VERSION):
            # Older/newer format: drop rather than misread.
            conn.execute("DROP TABLE IF EXISTS answers")
            conn.execute("DROP TABLE IF EXISTS aggregates")
            conn.execute("DROP TABLE IF EXISTS plans")
            conn.execute("DROP TABLE IF EXISTS versions")
            row = None
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS answers (
                doc_name TEXT NOT NULL,
                doc_digest TEXT NOT NULL,
                plan_digest TEXT NOT NULL,
                expression TEXT,
                payload TEXT NOT NULL,
                doc_version INTEGER NOT NULL,
                last_hit INTEGER NOT NULL DEFAULT 0,
                PRIMARY KEY (doc_name, doc_digest, plan_digest)
            )
            """
        )
        conn.execute(
            # The LRU clock (MAX) and eviction scan (ORDER BY ... LIMIT)
            # both walk this index instead of the table.
            "CREATE INDEX IF NOT EXISTS answers_last_hit"
            " ON answers (last_hit)"
        )
        conn.execute(
            # Persisted aggregate distributions: same keying discipline
            # as ``answers`` (content digest × stable spec digest, the
            # version-fence column), one row per distinct aggregate.
            # The table is outside the ``max_rows`` LRU — aggregate rows
            # are few (one per spec, not per answer value) and are
            # reclaimed by per-name invalidation.
            """
            CREATE TABLE IF NOT EXISTS aggregates (
                doc_name TEXT NOT NULL,
                doc_digest TEXT NOT NULL,
                agg_digest TEXT NOT NULL,
                spec TEXT,
                payload TEXT NOT NULL,
                doc_version INTEGER NOT NULL,
                PRIMARY KEY (doc_name, doc_digest, agg_digest)
            )
            """
        )
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS plans (
                expression TEXT PRIMARY KEY,
                plan_digest TEXT NOT NULL
            )
            """
        )
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS versions (
                doc_name TEXT PRIMARY KEY,
                version INTEGER NOT NULL
            )
            """
        )
        if row is None:
            conn.execute(
                "INSERT OR REPLACE INTO meta VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )

    # -- plan memo ----------------------------------------------------------

    def plan_digest(self, expression: str) -> Optional[str]:
        """Persisted fingerprint digest of a query string, if known.

        Lets a warm process key straight into :meth:`get` without
        re-compiling the expression (exact string match only; distinct
        spellings converge once compiled and remembered)."""
        with self._lock:
            try:
                self._ensure_current_locked()
                row = self._conn.execute(
                    "SELECT plan_digest FROM plans WHERE expression = ?",
                    (expression,),
                ).fetchone()
            except sqlite3.DatabaseError as error:
                if not self._is_corruption(error):
                    raise
                self._recover_locked(error)
                row = None
        if row is None:
            return None
        digest: str = row[0]
        return digest

    def remember_plan(self, expression: str, plan_digest: str) -> None:
        """Persist the expression → fingerprint-digest mapping."""
        def apply() -> None:
            self._conn.execute(
                "INSERT OR REPLACE INTO plans VALUES (?, ?)",
                (expression, plan_digest),
            )

        with self._lock:
            self._ensure_current_locked()
            self._write_txn_locked(apply)

    # -- answers ------------------------------------------------------------

    def get(
        self,
        doc_name: str,
        doc_digest: str,
        plan_digest: str,
        *,
        record: bool = True,
    ) -> Optional[RankedAnswer]:
        """Cached ranked answer, or ``None``; exact-Fraction decode.

        ``record=False`` leaves the hit/miss counters untouched — for
        double-checked lookups (an optimistic probe followed by an
        under-lock re-probe) that would otherwise count one logical miss
        twice."""
        with self._lock:
            try:
                self._ensure_current_locked()
                row = self._conn.execute(
                    "SELECT payload, doc_version FROM answers"
                    " WHERE doc_name = ? AND doc_digest = ? AND plan_digest = ?",
                    (doc_name, doc_digest, plan_digest),
                ).fetchone()
                if row is not None and row[1] != self._version_locked(doc_name):
                    row = None  # written before an invalidation; ignore
            except sqlite3.DatabaseError as error:
                if not self._is_corruption(error):
                    raise
                self._recover_locked(error)
                row = None  # the rebuilt cache is empty: a plain miss
            if row is not None and self.max_rows is not None:
                # Bounded stores maintain recency — buffered in memory,
                # so the hit path stays free of writes and fsyncs.
                self._clock += 1
                self._touches[(doc_name, doc_digest, plan_digest)] = self._clock
            if record:
                if row is None:
                    self.misses += 1
                else:
                    self.hits += 1
        if row is None:
            return None
        return _decode_answer(row[0])

    def put(
        self,
        doc_name: str,
        doc_digest: str,
        plan_digest: str,
        answer: RankedAnswer,
        *,
        expression: Optional[str] = None,
        version: Optional[int] = None,
    ) -> None:
        """Persist a priced answer under (document content, plan) keys.

        ``version`` is the document version the caller observed *before*
        evaluating (see :meth:`version`); if an invalidation lands in
        between, the row is stamped stale and :meth:`get` will ignore it
        — that is the fence the module docstring describes.  Defaults to
        the current version (no interleaving possible, e.g. writes under
        the caller's own lock)."""
        payload = _encode_answer(answer)
        evicted = 0

        def apply() -> None:
            nonlocal evicted
            evicted = 0
            self._flush_touches_locked()
            self._conn.execute(
                "INSERT OR REPLACE INTO answers VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    doc_name,
                    doc_digest,
                    plan_digest,
                    expression,
                    payload,
                    version
                    if version is not None
                    else self._version_locked(doc_name),
                    self._next_stamp_locked(),
                ),
            )
            if expression is not None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO plans VALUES (?, ?)",
                    (expression, plan_digest),
                )
            evicted = self._evict_locked()

        with self._lock:
            self._ensure_current_locked()
            self._write_txn_locked(apply)
            self._touches.clear()
            self.evictions += evicted
            self.stored += 1

    # -- aggregates ---------------------------------------------------------

    def get_aggregate(
        self,
        doc_name: str,
        doc_digest: str,
        agg_digest: str,
        *,
        record: bool = True,
    ) -> Optional[AggregateDistribution]:
        """Cached aggregate distribution, or ``None``; exact-Fraction
        decode.  ``agg_digest`` is :attr:`repro.query.aggregates.
        AggregateSpec.digest` — stable across processes, like the answer
        rows' plan digest.  ``record=False`` skips the hit/miss counters
        (double-checked lookups, as in :meth:`get`)."""
        with self._lock:
            try:
                self._ensure_current_locked()
                row = self._conn.execute(
                    "SELECT payload, doc_version FROM aggregates"
                    " WHERE doc_name = ? AND doc_digest = ? AND agg_digest = ?",
                    (doc_name, doc_digest, agg_digest),
                ).fetchone()
                if row is not None and row[1] != self._version_locked(doc_name):
                    row = None  # written before an invalidation; ignore
            except sqlite3.DatabaseError as error:
                if not self._is_corruption(error):
                    raise
                self._recover_locked(error)
                row = None  # the rebuilt cache is empty: a plain miss
            if record:
                if row is None:
                    self.aggregate_misses += 1
                else:
                    self.aggregate_hits += 1
        if row is None:
            return None
        return _decode_aggregate(row[0])

    def put_aggregate(
        self,
        doc_name: str,
        doc_digest: str,
        agg_digest: str,
        distribution: AggregateDistribution,
        *,
        spec: Optional[str] = None,
        version: Optional[int] = None,
    ) -> None:
        """Persist an aggregate distribution under (document content,
        spec digest) keys; ``version`` is the same invalidation fence
        :meth:`put` documents (``spec`` is a human-readable description,
        stored for diagnostics only)."""
        payload = _encode_aggregate(distribution)

        def apply() -> None:
            self._conn.execute(
                "INSERT OR REPLACE INTO aggregates VALUES (?, ?, ?, ?, ?, ?)",
                (
                    doc_name,
                    doc_digest,
                    agg_digest,
                    spec,
                    payload,
                    version
                    if version is not None
                    else self._version_locked(doc_name),
                ),
            )

        with self._lock:
            self._ensure_current_locked()
            self._write_txn_locked(apply)
            self.aggregate_stored += 1

    def _next_stamp_locked(self) -> int:
        """The next value of the LRU clock: past both this instance's
        in-memory clock and the file's MAX (an indexed lookup), so the
        ordering is shared by every process writing this file."""
        row = self._conn.execute(
            "SELECT COALESCE(MAX(last_hit), 0) FROM answers"
        ).fetchone()
        self._clock = max(self._clock, row[0]) + 1
        return self._clock

    def _flush_touches_locked(self) -> None:
        """Write buffered hit-recency stamps (caller holds the lock and
        commits); rows that vanished meanwhile are silent no-ops.

        Stamps are rebased above the file's current MAX at flush time —
        another process may have advanced the file clock past this
        instance's buffered values, and flushing stale stamps would rank
        this instance's hottest rows as the oldest.  Relative order
        within the buffer is preserved.  The buffer itself is cleared by
        the caller *after* the transaction commits, so a busy-retried
        attempt re-flushes the same stamps instead of dropping them."""
        if not self._touches:
            return
        stamp: int = max(
            self._conn.execute(
                "SELECT COALESCE(MAX(last_hit), 0) FROM answers"
            ).fetchone()[0],
            0,
        )
        updates: list[tuple[int, str, str, str]] = []
        for key, _ in sorted(self._touches.items(), key=lambda entry: entry[1]):
            stamp += 1
            updates.append((stamp, *key))
        self._clock = max(self._clock, stamp)
        self._conn.executemany(
            "UPDATE answers SET last_hit = ? WHERE doc_name = ?"
            " AND doc_digest = ? AND plan_digest = ?",
            updates,
        )

    def _evict_locked(self) -> int:
        """Drop least-recently-hit rows beyond ``max_rows`` (no-op when
        unbounded); caller holds the lock, inside a write transaction.
        Returns the evicted row count — the caller adds it to the
        ``evictions`` counter only once the transaction commits (a
        rolled-back, retried attempt must not double-count)."""
        if self.max_rows is None:
            return 0
        count: int = self._conn.execute(
            "SELECT COUNT(*) FROM answers"
        ).fetchone()[0]
        overflow = count - self.max_rows
        if overflow <= 0:
            return 0
        cursor = self._conn.execute(
            "DELETE FROM answers WHERE rowid IN"
            " (SELECT rowid FROM answers ORDER BY last_hit ASC, rowid ASC"
            " LIMIT ?)",
            (overflow,),
        )
        return cursor.rowcount

    # -- invalidation -------------------------------------------------------

    def _version_locked(self, doc_name: str) -> int:
        row = self._conn.execute(
            "SELECT version FROM versions WHERE doc_name = ?", (doc_name,)
        ).fetchone()
        if row is None:
            return 0
        version: int = row[0]
        return version

    def version(self, doc_name: str) -> int:
        """Monotonic invalidation counter of a document name (0 initially)."""
        with self._lock:
            try:
                self._ensure_current_locked()
                return self._version_locked(doc_name)
            except sqlite3.DatabaseError as error:
                if not self._is_corruption(error):
                    raise
                self._recover_locked(error)
                return 0  # the rebuilt cache has no version rows yet

    def invalidate_document(self, doc_name: str) -> int:
        """Drop every persisted answer of ``doc_name`` and bump its version.

        Returns the number of rows dropped.  Content addressing already
        prevents stale serving — this reclaims space and fences off
        writers that priced an answer against the superseded content.
        """
        dropped = 0

        def apply() -> None:
            nonlocal dropped
            cursor = self._conn.execute(
                "DELETE FROM answers WHERE doc_name = ?", (doc_name,)
            )
            dropped = cursor.rowcount
            self._conn.execute(
                "DELETE FROM aggregates WHERE doc_name = ?", (doc_name,)
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO versions VALUES"
                " (?, COALESCE((SELECT version FROM versions WHERE"
                " doc_name = ?), 0) + 1)",
                (doc_name, doc_name),
            )

        with self._lock:
            self._ensure_current_locked()
            for key in [k for k in self._touches if k[0] == doc_name]:
                del self._touches[key]  # never resurrect recency on re-put
            self._write_txn_locked(apply)
            self.invalidations += 1
        return dropped

    def clear(self) -> None:
        """Drop every answer and plan row (versions are kept)."""

        def apply() -> None:
            self._conn.execute("DELETE FROM answers")
            self._conn.execute("DELETE FROM aggregates")
            self._conn.execute("DELETE FROM plans")

        with self._lock:
            self._ensure_current_locked()
            self._touches.clear()
            self._write_txn_locked(apply)

    # -- diagnostics --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            try:
                self._ensure_current_locked()
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM answers"
                ).fetchone()
            except sqlite3.DatabaseError as error:
                if not self._is_corruption(error):
                    raise
                self._recover_locked(error)
                row = (0,)
        count: int = row[0]
        return count

    def stats(self) -> dict[str, int]:
        """Process-local counters plus on-disk row counts."""
        with self._lock:
            try:
                self._ensure_current_locked()
                answers: int = self._conn.execute(
                    "SELECT COUNT(*) FROM answers"
                ).fetchone()[0]
                aggregates: int = self._conn.execute(
                    "SELECT COUNT(*) FROM aggregates"
                ).fetchone()[0]
                plans: int = self._conn.execute(
                    "SELECT COUNT(*) FROM plans"
                ).fetchone()[0]
            except sqlite3.DatabaseError as error:
                if not self._is_corruption(error):
                    raise
                self._recover_locked(error)
                answers = aggregates = plans = 0
        return {
            "persistent_answers": answers,
            "persistent_aggregates": aggregates,
            "persistent_plans": plans,
            "persistent_hits": self.hits,
            "persistent_misses": self.misses,
            "persistent_stored": self.stored,
            "persistent_aggregate_hits": self.aggregate_hits,
            "persistent_aggregate_misses": self.aggregate_misses,
            "persistent_aggregate_stored": self.aggregate_stored,
            "persistent_invalidations": self.invalidations,
            "persistent_evictions": self.evictions,
            "persistent_busy_retries": self.busy_retries,
            "persistent_recoveries": self.recoveries,
        }

    def close(self) -> None:
        """Persist pending recency stamps and close the connection
        (idempotent).  Contention on the final flush is tolerated — the
        stamps are recency hygiene, not correctness — so a close() racing
        N sibling processes never raises."""
        with self._lock:
            try:
                if self._touches:
                    self._write_txn_locked(self._flush_touches_locked)
                    self._touches.clear()
            except sqlite3.DatabaseError:
                pass  # already closed, or corrupt: stamps are hygiene only
            # impreciselint: disable=no-swallow -- close() is best-effort by contract; recency stamps are expendable
            except CacheBusyError:
                pass  # recency stamps are expendable; close regardless
            self._conn.close()

    def __enter__(self) -> "AnswerCacheStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"AnswerCacheStore({str(self.path)!r}, hits={self.hits},"
            f" misses={self.misses})"
        )
