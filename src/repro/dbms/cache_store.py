"""Persistent, cross-process answer/plan cache for the dataspace service.

The in-memory amortization layers (compiled plans, per-document
:class:`~repro.pxml.events_cache.EventProbabilityCache`) die with the
process.  This module adds the third layer the ROADMAP's heavy-traffic
north star needs: an on-disk table of *priced answers*, so a restarted
service re-serves a whole workload without re-walking a single tree.

Keying — both halves are stable across processes by contract:

* the **plan** half is :attr:`repro.query.plan.QueryPlan.fingerprint_digest`
  (SHA-256 of the canonical structural fingerprint: two surface spellings
  of the same query share one entry);
* the **document** half is :func:`document_digest` — SHA-256 of the
  document's canonical serialization, i.e. exactly the bytes
  :class:`~repro.dbms.store.DocumentStore` persists.  A document edited
  in any way gets a new digest, so stale answers can never be served —
  content addressing is the correctness mechanism, invalidation below is
  only hygiene.

Values are ranked answers with **exact** ``Fraction`` probabilities;
they round-trip through a ``numerator/denominator`` wire form, so a
warm-started process returns bit-identical Fractions.

Invalidation is versioned per document name: :meth:`~AnswerCacheStore.
invalidate_document` (called by the service on ``put``/``delete``/
feedback conditioning/re-integration) bumps the name's version and drops
its rows; rows also record the version they were written under and are
ignored if it has since moved on, which keeps a concurrent writer from
resurrecting a purged answer.  A global :data:`SCHEMA_VERSION` guards the
file format itself — any change to the payload encoding or the
fingerprint encoding recreates the tables rather than misreading them.

The backing store is SQLite (stdlib, one file, safe for concurrent
readers); one :class:`AnswerCacheStore` serializes its own statements
behind a lock, so a single instance may be shared by many threads.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from fractions import Fraction
from pathlib import Path
from typing import Optional, Union

from ..errors import StoreError
from ..pxml.model import PXDocument
from ..pxml.serialize import pxml_to_text
from ..query.ranking import RankedAnswer, RankedItem
from ..xmlkit.nodes import XDocument
from ..xmlkit.serializer import serialize

__all__ = ["AnswerCacheStore", "document_digest", "SCHEMA_VERSION"]

#: Bump on any change to the payload wire format, the fingerprint
#: encoding (see ``QueryPlan.fingerprint_digest``) or the table layout;
#: existing cache files are then dropped and rebuilt, never misread.
SCHEMA_VERSION = 1

#: Default cache file name inside a cache directory.
CACHE_FILENAME = "answers.sqlite"


def document_digest(document: Union[XDocument, PXDocument]) -> str:
    """Content hash of a stored document, stable across processes.

    SHA-256 over the canonical serialization (``pxml_to_text`` for
    probabilistic documents, ``serialize`` for plain ones) with a kind
    prefix, so an XML and a PXML document can never collide.  This is
    byte-identical to what :class:`~repro.dbms.store.DocumentStore`
    writes to disk, so hashing the file and hashing the materialized
    document agree.
    """
    if isinstance(document, PXDocument):
        text = "pxml\x00" + pxml_to_text(document)
    elif isinstance(document, XDocument):
        text = "xml\x00" + serialize(document)
    else:
        raise StoreError(
            f"cannot digest {type(document).__name__};"
            " expected XDocument or PXDocument"
        )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _encode_answer(answer: RankedAnswer) -> str:
    """JSON wire form: ``[[value, "num/den", occurrences], ...]``."""
    return json.dumps(
        [
            [
                item.value,
                f"{item.probability.numerator}/{item.probability.denominator}",
                item.occurrences,
            ]
            for item in answer.items
        ],
        ensure_ascii=False,
    )


def _decode_answer(payload: str) -> RankedAnswer:
    items = []
    for value, fraction, occurrences in json.loads(payload):
        numerator, denominator = fraction.split("/")
        items.append(
            RankedItem(value, Fraction(int(numerator), int(denominator)), occurrences)
        )
    return RankedAnswer(items)


class AnswerCacheStore:
    """On-disk answer/plan cache shared across processes.

    Construct with a directory (the standard layout — the SQLite file is
    created inside it) or a path to the database file itself::

        cache = AnswerCacheStore("/var/lib/imprecise/cache")
        hit = cache.get("movies", doc_digest, plan_digest)

    Hit/miss/store counters are per-instance (process-local); row counts
    are global.  All methods are thread-safe.
    """

    def __init__(self, path: Union[str, Path]):
        path = Path(path)
        if path.suffix != ".sqlite":
            path.mkdir(parents=True, exist_ok=True)
            path = path / CACHE_FILENAME
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.invalidations = 0
        with self._lock:
            self._init_schema()

    # -- schema -------------------------------------------------------------

    def _init_schema(self) -> None:
        conn = self._conn
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is not None and row[0] != str(SCHEMA_VERSION):
            # Older/newer format: drop rather than misread.
            conn.execute("DROP TABLE IF EXISTS answers")
            conn.execute("DROP TABLE IF EXISTS plans")
            conn.execute("DROP TABLE IF EXISTS versions")
            row = None
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS answers (
                doc_name TEXT NOT NULL,
                doc_digest TEXT NOT NULL,
                plan_digest TEXT NOT NULL,
                expression TEXT,
                payload TEXT NOT NULL,
                doc_version INTEGER NOT NULL,
                PRIMARY KEY (doc_name, doc_digest, plan_digest)
            )
            """
        )
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS plans (
                expression TEXT PRIMARY KEY,
                plan_digest TEXT NOT NULL
            )
            """
        )
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS versions (
                doc_name TEXT PRIMARY KEY,
                version INTEGER NOT NULL
            )
            """
        )
        if row is None:
            conn.execute(
                "INSERT OR REPLACE INTO meta VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        conn.commit()

    # -- plan memo ----------------------------------------------------------

    def plan_digest(self, expression: str) -> Optional[str]:
        """Persisted fingerprint digest of a query string, if known.

        Lets a warm process key straight into :meth:`get` without
        re-compiling the expression (exact string match only; distinct
        spellings converge once compiled and remembered)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT plan_digest FROM plans WHERE expression = ?",
                (expression,),
            ).fetchone()
        return row[0] if row is not None else None

    def remember_plan(self, expression: str, plan_digest: str) -> None:
        """Persist the expression → fingerprint-digest mapping."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO plans VALUES (?, ?)",
                (expression, plan_digest),
            )
            self._conn.commit()

    # -- answers ------------------------------------------------------------

    def get(
        self,
        doc_name: str,
        doc_digest: str,
        plan_digest: str,
        *,
        record: bool = True,
    ) -> Optional[RankedAnswer]:
        """Cached ranked answer, or ``None``; exact-Fraction decode.

        ``record=False`` leaves the hit/miss counters untouched — for
        double-checked lookups (an optimistic probe followed by an
        under-lock re-probe) that would otherwise count one logical miss
        twice."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload, doc_version FROM answers"
                " WHERE doc_name = ? AND doc_digest = ? AND plan_digest = ?",
                (doc_name, doc_digest, plan_digest),
            ).fetchone()
            if row is not None and row[1] != self._version_locked(doc_name):
                row = None  # written before an invalidation; ignore
            if record:
                if row is None:
                    self.misses += 1
                else:
                    self.hits += 1
        if row is None:
            return None
        return _decode_answer(row[0])

    def put(
        self,
        doc_name: str,
        doc_digest: str,
        plan_digest: str,
        answer: RankedAnswer,
        *,
        expression: Optional[str] = None,
        version: Optional[int] = None,
    ) -> None:
        """Persist a priced answer under (document content, plan) keys.

        ``version`` is the document version the caller observed *before*
        evaluating (see :meth:`version`); if an invalidation lands in
        between, the row is stamped stale and :meth:`get` will ignore it
        — that is the fence the module docstring describes.  Defaults to
        the current version (no interleaving possible, e.g. writes under
        the caller's own lock)."""
        payload = _encode_answer(answer)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO answers VALUES (?, ?, ?, ?, ?, ?)",
                (
                    doc_name,
                    doc_digest,
                    plan_digest,
                    expression,
                    payload,
                    version
                    if version is not None
                    else self._version_locked(doc_name),
                ),
            )
            if expression is not None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO plans VALUES (?, ?)",
                    (expression, plan_digest),
                )
            self._conn.commit()
            self.stored += 1

    # -- invalidation -------------------------------------------------------

    def _version_locked(self, doc_name: str) -> int:
        row = self._conn.execute(
            "SELECT version FROM versions WHERE doc_name = ?", (doc_name,)
        ).fetchone()
        return row[0] if row is not None else 0

    def version(self, doc_name: str) -> int:
        """Monotonic invalidation counter of a document name (0 initially)."""
        with self._lock:
            return self._version_locked(doc_name)

    def invalidate_document(self, doc_name: str) -> int:
        """Drop every persisted answer of ``doc_name`` and bump its version.

        Returns the number of rows dropped.  Content addressing already
        prevents stale serving — this reclaims space and fences off
        writers that priced an answer against the superseded content.
        """
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM answers WHERE doc_name = ?", (doc_name,)
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO versions VALUES"
                " (?, COALESCE((SELECT version FROM versions WHERE"
                " doc_name = ?), 0) + 1)",
                (doc_name, doc_name),
            )
            self._conn.commit()
            self.invalidations += 1
        return cursor.rowcount

    def clear(self) -> None:
        """Drop every answer and plan row (versions are kept)."""
        with self._lock:
            self._conn.execute("DELETE FROM answers")
            self._conn.execute("DELETE FROM plans")
            self._conn.commit()

    # -- diagnostics --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute("SELECT COUNT(*) FROM answers").fetchone()
        return row[0]

    def stats(self) -> dict:
        """Process-local counters plus on-disk row counts."""
        with self._lock:
            answers = self._conn.execute(
                "SELECT COUNT(*) FROM answers"
            ).fetchone()[0]
            plans = self._conn.execute("SELECT COUNT(*) FROM plans").fetchone()[0]
        return {
            "persistent_answers": answers,
            "persistent_plans": plans,
            "persistent_hits": self.hits,
            "persistent_misses": self.misses,
            "persistent_stored": self.stored,
            "persistent_invalidations": self.invalidations,
        }

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "AnswerCacheStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"AnswerCacheStore({str(self.path)!r}, hits={self.hits},"
            f" misses={self.misses})"
        )
