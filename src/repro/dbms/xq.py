"""FLWOR-lite: a small XQuery-style layer over the XPath engine.

Supports ``for``/``let``/``where``/``order by``/``return`` with XPath
expressions in all operand positions::

    for $m in //movie
    where $m/year = "1995"
    order by $m/title
    return $m/title

Over plain documents the evaluation is direct; over probabilistic
documents :func:`evaluate_flwor_ranked` applies the possible-worlds
definition (evaluate per world, amalgamate ranked answers) — mirroring how
the original system ran XQuery on MonetDB beneath the probabilistic
module.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import XPathSyntaxError
from ..pxml.model import PXDocument
from ..pxml.worlds import DEFAULT_WORLD_LIMIT, iter_worlds
from ..query.ranking import RankedAnswer, RankedItem, merge_ranked
from ..xmlkit.nodes import XDocument, XElement, XText
from ..xmlkit.xpath import XPath
from ..xmlkit.xpath.evaluator import as_boolean, as_number, as_string

_KEYWORDS = ("for", "let", "where", "order by", "return")
_KEYWORD_RE = re.compile(r"\b(for|let|where|order\s+by|return)\b")
_FOR_RE = re.compile(r"^\$(\w[\w.-]*)\s+in\s+(.+)$", re.DOTALL)
_LET_RE = re.compile(r"^\$(\w[\w.-]*)\s*:=\s*(.+)$", re.DOTALL)


@dataclass(frozen=True)
class Clause:
    """One parsed FLWOR clause (everything before ``return``)."""

    kind: str                   # 'for' | 'let' | 'where' | 'order-by'
    variable: Optional[str]     # for/let
    expression: XPath
    descending: bool = False    # order-by


@dataclass(frozen=True)
class FLWORQuery:
    """A parsed FLWOR query: ordered clauses plus the return expression.

    Build with :func:`parse_flwor`; run with :func:`evaluate_flwor`
    (plain documents) or :func:`evaluate_flwor_ranked` (probabilistic,
    possible-worlds semantics)."""

    clauses: tuple[Clause, ...]
    return_expression: XPath
    source: str


def _split_clauses(text: str) -> list[tuple[str, str]]:
    """Split the query into (keyword, body) pieces, respecting quotes."""
    pieces: list[tuple[str, int, int]] = []  # (keyword, keyword_end, start)
    in_quote: Optional[str] = None
    index = 0
    while index < len(text):
        char = text[index]
        if in_quote:
            if char == in_quote:
                in_quote = None
            index += 1
            continue
        if char in ("'", '"'):
            in_quote = char
            index += 1
            continue
        match = _KEYWORD_RE.match(text, index)
        boundary_ok = index == 0 or not (text[index - 1].isalnum() or text[index - 1] in "_$@")
        if match and boundary_ok:
            keyword = "order by" if match.group(1).startswith("order") else match.group(1)
            pieces.append((keyword, index, match.end()))
            index = match.end()
            continue
        index += 1
    if not pieces:
        raise XPathSyntaxError("not a FLWOR query (no clauses found)", text=text)
    result: list[tuple[str, str]] = []
    for position, (keyword, start, body_start) in enumerate(pieces):
        body_end = pieces[position + 1][1] if position + 1 < len(pieces) else len(text)
        result.append((keyword, text[body_start:body_end].strip()))
    leading = text[: pieces[0][1]].strip()
    if leading:
        raise XPathSyntaxError(f"unexpected text before first clause: {leading!r}")
    return result


def parse_flwor(text: str) -> FLWORQuery:
    """Parse a FLWOR query.

    >>> query = parse_flwor('for $m in //movie return $m/title')
    >>> [clause.kind for clause in query.clauses]
    ['for']
    """
    clauses: list[Clause] = []
    return_expression: Optional[XPath] = None
    for keyword, body in _split_clauses(text):
        if return_expression is not None:
            raise XPathSyntaxError("'return' must be the final clause")
        if keyword == "for":
            match = _FOR_RE.match(body)
            if match is None:
                raise XPathSyntaxError(f"malformed for clause: {body!r}")
            clauses.append(Clause("for", match.group(1), XPath(match.group(2))))
        elif keyword == "let":
            match = _LET_RE.match(body)
            if match is None:
                raise XPathSyntaxError(f"malformed let clause: {body!r}")
            clauses.append(Clause("let", match.group(1), XPath(match.group(2))))
        elif keyword == "where":
            clauses.append(Clause("where", None, XPath(body)))
        elif keyword == "order by":
            descending = False
            stripped = body
            if stripped.endswith("descending"):
                descending = True
                stripped = stripped[: -len("descending")].strip()
            elif stripped.endswith("ascending"):
                stripped = stripped[: -len("ascending")].strip()
            clauses.append(Clause("order-by", None, XPath(stripped), descending))
        elif keyword == "return":
            return_expression = XPath(body)
    if return_expression is None:
        raise XPathSyntaxError("FLWOR query needs a return clause")
    if not any(clause.kind == "for" for clause in clauses):
        raise XPathSyntaxError("FLWOR query needs at least one for clause")
    return FLWORQuery(tuple(clauses), return_expression, text)


def _sort_key(value: Any) -> tuple:
    text = as_string(value)
    number = as_number(text)
    if number == number:  # not NaN → numeric sort slot
        return (0, number, text)
    return (1, 0.0, text)


def evaluate_flwor(
    document: XDocument, query: FLWORQuery | str
) -> list[Any]:
    """Run a FLWOR query on a plain document; returns the flattened
    sequence of return-expression results (nodes and/or atomic values)."""
    if isinstance(query, str):
        query = parse_flwor(query)
    environments: list[dict[str, Any]] = [{}]
    for clause in query.clauses:
        if clause.kind == "for":
            expanded: list[dict[str, Any]] = []
            for environment in environments:
                value = clause.expression.evaluate(document, environment)
                items = value if isinstance(value, list) else [value]
                for item in items:
                    bound = dict(environment)
                    bound[clause.variable] = item
                    expanded.append(bound)
            environments = expanded
        elif clause.kind == "let":
            for environment in environments:
                environment[clause.variable] = clause.expression.evaluate(
                    document, environment
                )
        elif clause.kind == "where":
            environments = [
                environment
                for environment in environments
                if as_boolean(clause.expression.evaluate(document, environment))
            ]
        elif clause.kind == "order-by":
            environments.sort(
                key=lambda environment: _sort_key(
                    clause.expression.evaluate(document, environment)
                ),
                reverse=clause.descending,
            )
    results: list[Any] = []
    for environment in environments:
        value = query.return_expression.evaluate(document, environment)
        if isinstance(value, list):
            results.extend(value)
        else:
            results.append(value)
    return results


def _result_string(value: Any) -> str:
    if isinstance(value, XElement):
        return value.text()
    if isinstance(value, XText):
        return value.value
    return as_string(value)


def evaluate_flwor_ranked(
    document: PXDocument,
    query: FLWORQuery | str,
    *,
    limit: Optional[int] = DEFAULT_WORLD_LIMIT,
) -> RankedAnswer:
    """Possible-worlds FLWOR over a probabilistic document: evaluate in
    every world, merge distinct result strings, rank by probability."""
    if isinstance(query, str):
        query = parse_flwor(query)
    items: list[RankedItem] = []
    for world in iter_worlds(document, limit=limit):
        values = {
            text
            for text in (
                _result_string(value)
                for value in evaluate_flwor(world.document, query)
            )
            if text
        }
        for text in values:
            items.append(RankedItem(text, world.probability))
    return merge_ranked(items)
