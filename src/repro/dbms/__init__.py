"""DBMS substrate: the reproduction's stand-in for MonetDB/XQuery (§IV).

The original IMPrECISE is "built as XQuery modules on top of the XML DBMS
MonetDB/XQuery" (Figure 4).  This package supplies the same three layers:

* :mod:`repro.dbms.store` — named document collections with optional
  on-disk persistence (plain XML and probabilistic XML);
* :mod:`repro.dbms.module` — the "IMPrECISE module": integration,
  querying, statistics and feedback over stored documents;
* :mod:`repro.dbms.xq` — a small FLWOR query layer (for/let/where/order
  by/return) evaluated over plain documents and, by possible-world
  semantics, over probabilistic ones.
"""

from .store import DocumentStore
from .module import ImpreciseModule
from .xq import FLWORQuery, evaluate_flwor, evaluate_flwor_ranked, parse_flwor

__all__ = [
    "DocumentStore",
    "ImpreciseModule",
    "FLWORQuery",
    "parse_flwor",
    "evaluate_flwor",
    "evaluate_flwor_ranked",
]
