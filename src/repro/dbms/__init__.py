"""DBMS substrate: the reproduction's stand-in for MonetDB/XQuery (§IV).

The original IMPrECISE is "built as XQuery modules on top of the XML DBMS
MonetDB/XQuery" (Figure 4).  This package supplies the same three layers:

* :mod:`repro.dbms.store` — thread-safe named document collections with
  optional on-disk persistence (plain XML and probabilistic XML),
  per-name sharded locks and an LRU bound on materialized documents;
* :mod:`repro.dbms.cache_store` — the persistent (cross-process)
  answer/plan cache, keyed by plan fingerprint digests and document
  content hashes, with exact-Fraction round-tripping;
* :mod:`repro.dbms.module` — the "IMPrECISE module": integration,
  querying, statistics and feedback over stored documents;
* :mod:`repro.dbms.service` — the :class:`DataspaceService` facade
  assembling store + caches + engines for concurrent callers (the
  ``imprecise serve`` entry point drives it);
* :mod:`repro.dbms.xq` — a small FLWOR query layer (for/let/where/order
  by/return) evaluated over plain documents and, by possible-world
  semantics, over probabilistic ones.
"""

from .cache_store import AnswerCacheStore, document_digest
from .module import ImpreciseModule
from .service import DataspaceService
from .store import DocumentStore
from .xq import FLWORQuery, evaluate_flwor, evaluate_flwor_ranked, parse_flwor

__all__ = [
    "AnswerCacheStore",
    "DataspaceService",
    "DocumentStore",
    "ImpreciseModule",
    "document_digest",
    "FLWORQuery",
    "parse_flwor",
    "evaluate_flwor",
    "evaluate_flwor_ranked",
]
