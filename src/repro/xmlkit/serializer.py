"""XML serialization for the plain node model.

Two renderers: :func:`serialize` (compact, canonical, round-trip safe with
the parser) and :func:`serialize_pretty` (indented, for humans; inserts
whitespace only around element-only content so it stays semantically
round-trip safe under the library's whitespace-insensitive deep equality).
"""

from __future__ import annotations

from .nodes import XDocument, XElement, XText, XChild


def escape_text(value: str) -> str:
    """Escape character data."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialization."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def _start_tag(element: XElement) -> str:
    parts = [element.tag]
    for name in sorted(element.attributes):
        parts.append(f'{name}="{escape_attribute(element.attributes[name])}"')
    return "<" + " ".join(parts) + ">"


def _serialize_node(node: XChild, out: list[str]) -> None:
    if isinstance(node, XText):
        out.append(escape_text(node.value))
        return
    if not node.children:
        out.append(_start_tag(node)[:-1] + "/>")
        return
    out.append(_start_tag(node))
    for child in node.children:
        _serialize_node(child, out)
    out.append(f"</{node.tag}>")


def serialize(node: XChild | XDocument) -> str:
    """Compact canonical serialization (attributes sorted, no added
    whitespace).  ``parse_document(serialize(doc))`` reproduces ``doc``."""
    if isinstance(node, XDocument):
        node = node.root
    out: list[str] = []
    _serialize_node(node, out)
    return "".join(out)


def _has_element_children(element: XElement) -> bool:
    return any(isinstance(child, XElement) for child in element.children)


def _pretty_node(node: XChild, out: list[str], depth: int, indent: str) -> None:
    pad = indent * depth
    if isinstance(node, XText):
        if node.value.strip():
            out.append(pad + escape_text(node.value))
        return
    if not node.children:
        out.append(pad + _start_tag(node)[:-1] + "/>")
        return
    if not _has_element_children(node):
        # Text-only content stays inline: <title>Jaws</title>
        text = "".join(
            escape_text(child.value)
            for child in node.children
            if isinstance(child, XText)
        )
        out.append(pad + _start_tag(node) + text + f"</{node.tag}>")
        return
    if any(
        isinstance(child, XText) and child.value.strip() for child in node.children
    ):
        # Mixed content: indentation would alter the text values, so this
        # subtree is rendered compactly instead.
        compact: list[str] = []
        _serialize_node(node, compact)
        out.append(pad + "".join(compact))
        return
    out.append(pad + _start_tag(node))
    for child in node.children:
        _pretty_node(child, out, depth + 1, indent)
    out.append(pad + f"</{node.tag}>")


def serialize_pretty(node: XChild | XDocument, *, indent: str = "  ") -> str:
    """Human-readable indented serialization."""
    if isinstance(node, XDocument):
        node = node.root
    out: list[str] = []
    _pretty_node(node, out, 0, indent)
    return "\n".join(out)
