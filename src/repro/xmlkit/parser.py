"""Hand-written XML parser.

Supports the XML subset the experiments need: elements, attributes (single
or double quoted), text, comments, CDATA sections, processing instructions
(skipped), an optional XML declaration and DOCTYPE (skipped), and the five
predefined entities plus decimal/hex character references.

The parser reports 1-based line/column positions in every error, checks
well-formedness (tag balance, attribute uniqueness, single root) and is
round-trip stable with :mod:`repro.xmlkit.serializer` — a property the test
suite enforces with hypothesis.
"""

from __future__ import annotations

from .nodes import XDocument, XElement, XText
from ..errors import XMLParseError

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Cursor over the input text with line/column tracking."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self, pos: int | None = None) -> tuple[int, int]:
        """1-based (line, column) of ``pos`` (default: current position)."""
        if pos is None:
            pos = self.pos
        prefix = self.text[:pos]
        line = prefix.count("\n") + 1
        column = pos - (prefix.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str, pos: int | None = None) -> XMLParseError:
        line, column = self.location(pos)
        return XMLParseError(message, line=line, column=column)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_until(self, token: str, *, context: str) -> str:
        """Consume text up to (and including) ``token``; return the text
        before the token."""
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {context}: expected {token!r}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(token)
        return chunk

    def read_name(self) -> str:
        if self.at_end() or self.peek() not in _NAME_START:
            raise self.error(f"expected a name, found {self.peek()!r}")
        start = self.pos
        while not self.at_end() and self.peek() in _NAME_CHARS:
            self.advance()
        return self.text[start : self.pos]


def _decode_references(raw: str, scanner: _Scanner, start_pos: int) -> str:
    """Replace entity and character references in ``raw``."""
    if "&" not in raw:
        return raw
    parts: list[str] = []
    index = 0
    while True:
        amp = raw.find("&", index)
        if amp < 0:
            parts.append(raw[index:])
            break
        parts.append(raw[index:amp])
        semi = raw.find(";", amp)
        if semi < 0:
            raise scanner.error("unterminated entity reference", pos=start_pos + amp)
        name = raw[amp + 1 : semi]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                parts.append(chr(int(name[2:], 16)))
            except ValueError:
                raise scanner.error(
                    f"invalid character reference &{name};", pos=start_pos + amp
                ) from None
        elif name.startswith("#"):
            try:
                parts.append(chr(int(name[1:])))
            except ValueError:
                raise scanner.error(
                    f"invalid character reference &{name};", pos=start_pos + amp
                ) from None
        elif name in _ENTITIES:
            parts.append(_ENTITIES[name])
        else:
            raise scanner.error(f"unknown entity &{name};", pos=start_pos + amp)
        index = semi + 1
    return "".join(parts)


def _parse_attributes(scanner: _Scanner) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        char = scanner.peek()
        if char in (">", "/", "?", ""):
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        if scanner.peek() != "=":
            raise scanner.error(f"expected '=' after attribute {name!r}")
        scanner.advance()
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error(f"attribute {name!r} value must be quoted")
        scanner.advance()
        value_start = scanner.pos
        raw = scanner.read_until(quote, context=f"attribute {name!r}")
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}", pos=value_start)
        attributes[name] = _decode_references(raw, scanner, value_start)


def _parse_element(scanner: _Scanner) -> XElement:
    """Parse one element starting at '<'."""
    if scanner.peek() != "<":
        raise scanner.error(f"expected '<', found {scanner.peek()!r}")
    scanner.advance()
    tag = scanner.read_name()
    element = XElement(tag, attributes=_parse_attributes(scanner))
    scanner.skip_whitespace()
    if scanner.startswith("/>"):
        scanner.advance(2)
        return element
    if scanner.peek() != ">":
        raise scanner.error(f"malformed start tag <{tag}>")
    scanner.advance()

    text_start = scanner.pos
    buffer: list[str] = []

    def flush_text() -> None:
        raw = "".join(buffer)
        buffer.clear()
        if raw:
            element.append(XText(_decode_references(raw, scanner, text_start)))

    while True:
        if scanner.at_end():
            raise scanner.error(f"unterminated element <{tag}>")
        if scanner.startswith("</"):
            flush_text()
            scanner.advance(2)
            closing = scanner.read_name()
            if closing != tag:
                raise scanner.error(
                    f"mismatched end tag </{closing}>, expected </{tag}>"
                )
            scanner.skip_whitespace()
            if scanner.peek() != ">":
                raise scanner.error(f"malformed end tag </{closing}>")
            scanner.advance()
            return element
        if scanner.startswith("<!--"):
            flush_text()
            scanner.advance(4)
            scanner.read_until("-->", context="comment")
            text_start = scanner.pos
            continue
        if scanner.startswith("<![CDATA["):
            flush_text()
            scanner.advance(9)
            element.append(XText(scanner.read_until("]]>", context="CDATA section")))
            text_start = scanner.pos
            continue
        if scanner.startswith("<?"):
            flush_text()
            scanner.advance(2)
            scanner.read_until("?>", context="processing instruction")
            text_start = scanner.pos
            continue
        if scanner.peek() == "<":
            flush_text()
            element.append(_parse_element(scanner))
            text_start = scanner.pos
            continue
        buffer.append(scanner.peek())
        scanner.advance()


def _skip_prolog(scanner: _Scanner) -> None:
    """Skip XML declaration, DOCTYPE, comments and PIs before the root."""
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("<?"):
            scanner.advance(2)
            scanner.read_until("?>", context="XML declaration")
        elif scanner.startswith("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", context="comment")
        elif scanner.startswith("<!DOCTYPE"):
            # Tolerate internal subsets by tracking bracket depth.
            scanner.advance(len("<!DOCTYPE"))
            depth = 0
            while True:
                if scanner.at_end():
                    raise scanner.error("unterminated DOCTYPE")
                char = scanner.peek()
                scanner.advance()
                if char == "[":
                    depth += 1
                elif char == "]":
                    depth -= 1
                elif char == ">" and depth <= 0:
                    break
        else:
            return


def parse_element(text: str) -> XElement:
    """Parse ``text`` as a single XML element (prolog allowed)."""
    scanner = _Scanner(text)
    _skip_prolog(scanner)
    if scanner.at_end():
        raise scanner.error("no element found in input")
    element = _parse_element(scanner)
    scanner.skip_whitespace()
    while scanner.startswith("<!--"):
        scanner.advance(4)
        scanner.read_until("-->", context="comment")
        scanner.skip_whitespace()
    if not scanner.at_end():
        raise scanner.error("content after the root element")
    return element


def parse_document(text: str) -> XDocument:
    """Parse ``text`` as an XML document (single root element)."""
    return XDocument(parse_element(text))
