"""XPath abstract syntax tree.

Plain dataclasses with no behaviour: both the plain-XML evaluator and the
probabilistic query compiler walk this tree, so it must stay free of
evaluation assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union as TUnion


class XPathNode:
    """Base class for AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(XPathNode):
    """A quoted string literal."""

    value: str


@dataclass(frozen=True)
class Number(XPathNode):
    """A numeric literal."""

    value: float


@dataclass(frozen=True)
class VarRef(XPathNode):
    """``$name`` — a variable reference."""

    name: str


@dataclass(frozen=True)
class FunctionCall(XPathNode):
    """``name(arg, …)``."""

    name: str
    args: tuple[XPathNode, ...]


@dataclass(frozen=True)
class BinaryOp(XPathNode):
    """Binary operator: ``or and = != < <= > >= + - * div mod``."""

    op: str
    left: XPathNode
    right: XPathNode


@dataclass(frozen=True)
class Negate(XPathNode):
    """Unary minus."""

    operand: XPathNode


@dataclass(frozen=True)
class Union(XPathNode):
    """``left | right`` node-set union."""

    left: XPathNode
    right: XPathNode


# Node tests ---------------------------------------------------------------

@dataclass(frozen=True)
class NameTest(XPathNode):
    """Match elements (or attributes) by name; ``*`` matches any."""

    name: str

    @property
    def is_wildcard(self) -> bool:
        return self.name == "*"


@dataclass(frozen=True)
class TextTest(XPathNode):
    """``text()`` — match text nodes."""


@dataclass(frozen=True)
class NodeTest(XPathNode):
    """``node()`` — match any node."""


AnyTest = TUnion[NameTest, TextTest, NodeTest]

# Axes supported by this subset.
AXIS_CHILD = "child"
AXIS_DESCENDANT = "descendant"            # produced by '//' shorthand
AXIS_SELF = "self"
AXIS_PARENT = "parent"
AXIS_ATTRIBUTE = "attribute"
AXES = (AXIS_CHILD, AXIS_DESCENDANT, AXIS_SELF, AXIS_PARENT, AXIS_ATTRIBUTE)


@dataclass(frozen=True)
class Step(XPathNode):
    """One location step: axis, node test, predicates."""

    axis: str
    test: AnyTest
    predicates: tuple[XPathNode, ...] = ()


@dataclass(frozen=True)
class Path(XPathNode):
    """A location path.

    ``absolute`` paths start at the document node; otherwise the path
    starts from ``base`` (a primary expression, for filter expressions like
    ``(expr)/step``) or from the context node when ``base`` is None.
    """

    steps: tuple[Step, ...]
    absolute: bool = False
    base: Optional[XPathNode] = None


@dataclass(frozen=True)
class Quantified(XPathNode):
    """``some $v in seq satisfies cond`` (or ``every``)."""

    kind: str  # 'some' | 'every'
    variable: str
    sequence: XPathNode
    condition: XPathNode
