"""Recursive-descent parser for the XPath subset.

Grammar (standard XPath 1.0 precedence, plus XQuery quantifiers)::

    Expr        := QuantExpr | OrExpr
    QuantExpr   := ('some'|'every') '$' Name 'in' Expr 'satisfies' Expr
    OrExpr      := AndExpr ('or' AndExpr)*
    AndExpr     := EqExpr ('and' EqExpr)*
    EqExpr      := RelExpr (('='|'!=') RelExpr)*
    RelExpr     := AddExpr (('<'|'<='|'>'|'>=') AddExpr)*
    AddExpr     := MulExpr (('+'|'-') MulExpr)*
    MulExpr     := UnaryExpr (('*'|'div'|'mod') UnaryExpr)*
    UnaryExpr   := '-' UnaryExpr | UnionExpr
    UnionExpr   := PathExpr ('|' PathExpr)*
    PathExpr    := LocationPath | Filter (('/'|'//') RelativePath)?
    Filter      := Literal | Number | VarRef | FunctionCall | '(' Expr ')'
    LocationPath:= ('/' RelativePath? | '//' RelativePath | RelativePath)
    RelativePath:= Step (('/'|'//') Step)*
    Step        := '.' | '..' | '@'? NodeTest Predicate*
    NodeTest    := Name | '*' | 'text()' | 'node()'
    Predicate   := '[' Expr ']'

The classic ``*`` ambiguity (wildcard vs. multiplication) is resolved by
parse position: in step position ``*`` is a wildcard, in operator position
it is multiplication.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...errors import XPathSyntaxError
from .ast import (
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    AXIS_DESCENDANT,
    AXIS_PARENT,
    AXIS_SELF,
    BinaryOp,
    FunctionCall,
    Literal,
    NameTest,
    Negate,
    NodeTest,
    Number,
    Path,
    Quantified,
    Step,
    TextTest,
    Union,
    VarRef,
    XPathNode,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(\.\d*)?|\.\d+)
  | (?P<literal>"[^"]*"|'[^']*')
  | (?P<dslash>//)
  | (?P<op><=|>=|!=|[=<>+\-*|/@\[\](),.$])
  | (?P<dotdot>\.\.)
  | (?P<name>[\w][\w.\-]*(:[\w][\w.\-]*)?)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str  # 'number' | 'literal' | 'op' | 'name' | 'eof'
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise XPathSyntaxError(
                f"unexpected character {text[pos]!r}", position=pos, text=text
            )
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "dslash":
            kind, value = "op", "//"
        elif kind == "dotdot":
            kind, value = "op", ".."
        tokens.append(_Token(kind, value, match.start()))
    # Collapse '.' '.' into '..' (the regex alternation order yields single
    # dots; parent steps are written '..').
    collapsed: list[_Token] = []
    for token in tokens:
        if (
            token.kind == "op"
            and token.value == "."
            and collapsed
            and collapsed[-1].kind == "op"
            and collapsed[-1].value == "."
            and collapsed[-1].position == token.position - 1
        ):
            collapsed[-1] = _Token("op", "..", collapsed[-1].position)
        else:
            collapsed.append(token)
    collapsed.append(_Token("eof", "", len(text)))
    return collapsed


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def at_op(self, *values: str) -> bool:
        return self.current.kind == "op" and self.current.value in values

    def at_name(self, *values: str) -> bool:
        return self.current.kind == "name" and self.current.value in values

    def expect_op(self, value: str) -> None:
        if not self.at_op(value):
            raise self.error(f"expected {value!r}")
        self.advance()

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(
            f"{message}, found {self.current.value or 'end of input'!r}",
            position=self.current.position,
            text=self.text,
        )

    # -- grammar ------------------------------------------------------------

    def parse(self) -> XPathNode:
        expr = self.parse_expr()
        if self.current.kind != "eof":
            raise self.error("unexpected trailing input")
        return expr

    def parse_expr(self) -> XPathNode:
        if self.at_name("some", "every") and self._peek_is_var():
            return self.parse_quantified()
        return self.parse_or()

    def _peek_is_var(self) -> bool:
        nxt = self.tokens[self.index + 1]
        return nxt.kind == "op" and nxt.value == "$"

    def parse_quantified(self) -> XPathNode:
        kind = self.advance().value
        self.expect_op("$")
        if self.current.kind != "name":
            raise self.error("expected variable name after '$'")
        variable = self.advance().value
        if not self.at_name("in"):
            raise self.error("expected 'in' in quantified expression")
        self.advance()
        sequence = self.parse_or()
        if not self.at_name("satisfies"):
            raise self.error("expected 'satisfies' in quantified expression")
        self.advance()
        condition = self.parse_expr()
        return Quantified(kind, variable, sequence, condition)

    def parse_or(self) -> XPathNode:
        left = self.parse_and()
        while self.at_name("or"):
            self.advance()
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> XPathNode:
        left = self.parse_equality()
        while self.at_name("and"):
            self.advance()
            left = BinaryOp("and", left, self.parse_equality())
        return left

    def parse_equality(self) -> XPathNode:
        left = self.parse_relational()
        while self.at_op("=", "!="):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_relational())
        return left

    def parse_relational(self) -> XPathNode:
        left = self.parse_additive()
        while self.at_op("<", "<=", ">", ">="):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> XPathNode:
        left = self.parse_multiplicative()
        while self.at_op("+", "-"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> XPathNode:
        left = self.parse_unary()
        while self.at_op("*") or self.at_name("div", "mod"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> XPathNode:
        if self.at_op("-"):
            self.advance()
            return Negate(self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> XPathNode:
        left = self.parse_path_expr()
        while self.at_op("|"):
            self.advance()
            left = Union(left, self.parse_path_expr())
        return left

    def parse_path_expr(self) -> XPathNode:
        # Absolute paths and paths starting with a step.
        if self.at_op("/", "//") or self._at_step_start():
            return self.parse_location_path()
        base = self.parse_filter_expr()
        if self.at_op("/", "//"):
            steps = self.parse_relative_steps()
            return Path(tuple(steps), absolute=False, base=base)
        return base

    def _at_step_start(self) -> bool:
        token = self.current
        if token.kind == "op" and token.value in ("@", ".", "..", "*"):
            return True
        if token.kind != "name":
            return False
        # A name token starts a step unless it is a function call or a
        # keyword operator in this position — but in *operand* position
        # keywords like 'div' act as element names (XPath 1.0 rule).
        nxt = self.tokens[self.index + 1]
        if nxt.kind == "op" and nxt.value == "(":
            return token.value in ("text", "node")
        return True

    def parse_filter_expr(self) -> XPathNode:
        token = self.current
        if token.kind == "literal":
            self.advance()
            return Literal(token.value[1:-1])
        if token.kind == "number":
            self.advance()
            return Number(float(token.value))
        if self.at_op("$"):
            self.advance()
            if self.current.kind != "name":
                raise self.error("expected variable name after '$'")
            return VarRef(self.advance().value)
        if self.at_op("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if token.kind == "name":
            name = self.advance().value
            self.expect_op("(")
            args: list[XPathNode] = []
            if not self.at_op(")"):
                args.append(self.parse_expr())
                while self.at_op(","):
                    self.advance()
                    args.append(self.parse_expr())
            self.expect_op(")")
            return FunctionCall(name, tuple(args))
        raise self.error("expected an expression")

    def parse_location_path(self) -> XPathNode:
        steps: list[Step] = []
        absolute = False
        if self.at_op("/"):
            absolute = True
            self.advance()
            if not self._at_step_start():
                return Path((), absolute=True)
            steps.append(self.parse_step(AXIS_CHILD))
        elif self.at_op("//"):
            absolute = True
            self.advance()
            steps.append(self.parse_step(AXIS_DESCENDANT))
        else:
            steps.append(self.parse_step(AXIS_CHILD))
        steps.extend(self.parse_relative_steps())
        return Path(tuple(steps), absolute=absolute)

    def parse_relative_steps(self) -> list[Step]:
        """Parse ``(('/'|'//') Step)*`` continuations."""
        steps: list[Step] = []
        while self.at_op("/", "//"):
            axis = AXIS_DESCENDANT if self.current.value == "//" else AXIS_CHILD
            self.advance()
            steps.append(self.parse_step(axis))
        return steps

    def parse_step(self, axis: str) -> Step:
        if self.at_op("."):
            self.advance()
            return Step(AXIS_SELF if axis == AXIS_CHILD else axis, NodeTest())
        if self.at_op(".."):
            self.advance()
            return Step(AXIS_PARENT, NodeTest())
        if self.at_op("@"):
            self.advance()
            if self.at_op("*"):
                self.advance()
                test = NameTest("*")
            elif self.current.kind == "name":
                test = NameTest(self.advance().value)
            else:
                raise self.error("expected attribute name after '@'")
            return Step(AXIS_ATTRIBUTE, test, self.parse_predicates())
        if self.at_op("*"):
            self.advance()
            return Step(axis, NameTest("*"), self.parse_predicates())
        if self.current.kind == "name":
            name = self.advance().value
            if name in ("text", "node") and self.at_op("("):
                self.advance()
                self.expect_op(")")
                test = TextTest() if name == "text" else NodeTest()
                return Step(axis, test, self.parse_predicates())
            return Step(axis, NameTest(name), self.parse_predicates())
        raise self.error("expected a location step")

    def parse_predicates(self) -> tuple[XPathNode, ...]:
        predicates: list[XPathNode] = []
        while self.at_op("["):
            self.advance()
            predicates.append(self.parse_expr())
            self.expect_op("]")
        return tuple(predicates)


def compile_xpath(text: str) -> XPathNode:
    """Parse an XPath expression into its AST.

    >>> ast = compile_xpath('//movie[.//genre="Horror"]/title')
    >>> ast.steps[0].test.name
    'movie'
    """
    if not text or not text.strip():
        raise XPathSyntaxError("empty XPath expression")
    return _Parser(text).parse()
