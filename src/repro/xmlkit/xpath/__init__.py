"""XPath 1.0 subset with XQuery-style quantified expressions.

Large enough to run both §VI paper queries verbatim::

    //movie[.//genre="Horror"]/title
    //movie[some $d in .//director satisfies contains($d,"John")]/title

The AST produced by :func:`compile_xpath` is shared with the probabilistic
query engine (:mod:`repro.query.engine`), which reinterprets the same tree
over probabilistic XML documents.
"""

from .ast import (
    BinaryOp,
    FunctionCall,
    Literal,
    Negate,
    Number,
    Path,
    Quantified,
    Step,
    Union,
    VarRef,
    XPathNode,
)
from .parser import compile_xpath
from .evaluator import XPath, evaluate_xpath, AttributeNode, XPathContext

__all__ = [
    "XPathNode",
    "Literal",
    "Number",
    "VarRef",
    "FunctionCall",
    "BinaryOp",
    "Negate",
    "Union",
    "Path",
    "Step",
    "Quantified",
    "compile_xpath",
    "XPath",
    "evaluate_xpath",
    "AttributeNode",
    "XPathContext",
]
