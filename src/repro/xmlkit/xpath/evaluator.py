"""XPath evaluation over plain XML trees.

Implements XPath 1.0 value semantics: node-sets (Python lists in document
order), strings, numbers (floats) and booleans, with the standard
existential comparison rules for node-sets and effective-boolean-value
conversions.  This evaluator is the *reference* semantics for querying: the
probabilistic engine must agree with it on every possible world (a property
the test suite checks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ...errors import XPathEvaluationError
from ..nodes import XDocument, XElement, XNode, XText
from .ast import (
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    AXIS_DESCENDANT,
    AXIS_PARENT,
    AXIS_SELF,
    BinaryOp,
    FunctionCall,
    Literal,
    NameTest,
    Negate,
    NodeTest,
    Number,
    Path,
    Quantified,
    Step,
    TextTest,
    Union,
    VarRef,
    XPathNode,
)
from .parser import compile_xpath


@dataclass(frozen=True)
class AttributeNode:
    """A synthetic node representing one attribute of an element."""

    owner: XElement
    name: str
    value: str

    def string_value(self) -> str:
        return self.value


XPathValue = Any  # list (node-set) | str | float | bool


@dataclass
class XPathContext:
    """Evaluation context: current node, proximity position/size, variables."""

    node: Any
    position: int = 1
    size: int = 1
    variables: Optional[dict[str, XPathValue]] = None

    def variable(self, name: str) -> XPathValue:
        if self.variables and name in self.variables:
            return self.variables[name]
        raise XPathEvaluationError(f"unbound variable ${name}")

    def with_node(self, node: Any, position: int, size: int) -> "XPathContext":
        return XPathContext(node, position, size, self.variables)

    def with_variable(self, name: str, value: XPathValue) -> "XPathContext":
        variables = dict(self.variables or {})
        variables[name] = value
        return XPathContext(self.node, self.position, self.size, variables)


# -- value conversions ------------------------------------------------------

def string_value(node: Any) -> str:
    """XPath string value of a node (or passthrough for atomic values)."""
    if isinstance(node, XDocument):
        return node.root.text()
    if isinstance(node, XElement):
        return node.text()
    if isinstance(node, XText):
        return node.value
    if isinstance(node, AttributeNode):
        return node.value
    raise XPathEvaluationError(f"no string value for {type(node).__name__}")


def as_string(value: XPathValue) -> str:
    """XPath 1.0 ``string()`` coercion of any evaluator value."""
    if isinstance(value, list):
        return string_value(value[0]) if value else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        if value == int(value):
            return str(int(value))
        return repr(value)
    if isinstance(value, str):
        return value
    return string_value(value)


def as_number(value: XPathValue) -> float:
    """XPath 1.0 ``number()`` coercion (NaN for unparseable strings)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, list):
        return as_number(as_string(value))
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return math.nan
    return as_number(as_string(value))


def as_boolean(value: XPathValue) -> bool:
    """Effective boolean value."""
    if isinstance(value, bool):
        return value
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, float):
        return value != 0 and not math.isnan(value)
    if isinstance(value, str):
        return bool(value)
    return True  # a single node


def _atomic_compare(op: str, a: XPathValue, b: XPathValue) -> bool:
    if op in ("=", "!="):
        if isinstance(a, bool) or isinstance(b, bool):
            result = as_boolean(a) == as_boolean(b)
        elif isinstance(a, float) or isinstance(b, float):
            result = as_number(a) == as_number(b)
        else:
            result = as_string(a) == as_string(b)
        return result if op == "=" else not result
    left, right = as_number(a), as_number(b)
    if math.isnan(left) or math.isnan(right):
        return False
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise XPathEvaluationError(f"unknown comparison operator {op!r}")


def compare_values(op: str, a: XPathValue, b: XPathValue) -> bool:
    """XPath 1.0 comparison with existential node-set semantics."""
    a_is_set = isinstance(a, list)
    b_is_set = isinstance(b, list)
    if a_is_set and b_is_set:
        return any(
            _atomic_compare(op, string_value(na), string_value(nb))
            for na in a
            for nb in b
        )
    if a_is_set:
        return any(_atomic_compare(op, string_value(na), b) for na in a)
    if b_is_set:
        return any(_atomic_compare(op, a, string_value(nb)) for nb in b)
    return _atomic_compare(op, a, b)


# -- axes ---------------------------------------------------------------------

def _children(node: Any) -> list[Any]:
    if isinstance(node, XDocument):
        return [node.root]
    if isinstance(node, XElement):
        return list(node.children)
    return []


def _descendants(node: Any) -> list[Any]:
    result: list[Any] = []
    stack = _children(node)[::-1]
    while stack:
        current = stack.pop()
        result.append(current)
        if isinstance(current, XElement):
            stack.extend(reversed(current.children))
    return result


def _matches_test(node: Any, test: Any) -> bool:
    if isinstance(test, NodeTest):
        return True
    if isinstance(test, TextTest):
        return isinstance(node, XText)
    if isinstance(test, NameTest):
        if isinstance(node, XElement):
            return test.is_wildcard or node.tag == test.name
        if isinstance(node, AttributeNode):
            return test.is_wildcard or node.name == test.name
        return False
    raise XPathEvaluationError(f"unknown node test {test!r}")


class XPath:
    """A compiled XPath expression.

    >>> from repro.xmlkit import parse_document
    >>> doc = parse_document("<a><b>1</b><b>2</b></a>")
    >>> [n.text() for n in XPath("//b").evaluate(doc)]
    ['1', '2']
    """

    def __init__(self, expression: str | XPathNode):
        if isinstance(expression, str):
            self.source: str = expression
            self.ast = compile_xpath(expression)
        else:
            self.source = "<precompiled>"
            self.ast = expression
        self._order_cache: dict[int, dict[int, int]] = {}

    # -- public API ---------------------------------------------------------

    def evaluate(
        self,
        node: Any,
        variables: Optional[dict[str, XPathValue]] = None,
    ) -> XPathValue:
        """Evaluate against a document or node; returns a node-set (list),
        string, number or boolean."""
        context = XPathContext(node, 1, 1, variables)
        return self._eval(self.ast, context)

    def select(
        self,
        node: Any,
        variables: Optional[dict[str, XPathValue]] = None,
    ) -> list[Any]:
        """Evaluate and require a node-set result."""
        value = self.evaluate(node, variables)
        if not isinstance(value, list):
            raise XPathEvaluationError(
                f"{self.source!r} returned {type(value).__name__}, expected a node-set"
            )
        return value

    def matches(
        self,
        node: Any,
        variables: Optional[dict[str, XPathValue]] = None,
    ) -> bool:
        """Effective boolean value of the evaluation."""
        return as_boolean(self.evaluate(node, variables))

    # -- document order -------------------------------------------------------

    def _top_ancestor(self, node: Any) -> Any:
        if isinstance(node, (XDocument, AttributeNode)):
            return node if not isinstance(node, AttributeNode) else self._top_ancestor(node.owner)
        current = node
        while getattr(current, "parent", None) is not None:
            current = current.parent
        return current

    def _order_index(self, anchor: Any) -> dict[int, int]:
        top = self._top_ancestor(anchor)
        key = id(top)
        cached = self._order_cache.get(key)
        if cached is not None:
            return cached
        index: dict[int, int] = {id(top): 0}
        counter = 1
        root = top.root if isinstance(top, XDocument) else top
        for node in root.iter():
            index[id(node)] = counter
            counter += 1
        self._order_cache[key] = index
        return index

    def _doc_order_key(self, node: Any, index: dict[int, int]) -> tuple:
        if isinstance(node, AttributeNode):
            owner = index.get(id(node.owner), -1)
            return (owner, 1, node.name)
        return (index.get(id(node), -1), 0, "")

    def _sort_unique(self, nodes: list[Any], anchor: Any) -> list[Any]:
        seen: set = set()
        unique: list[Any] = []
        for node in nodes:
            key = (
                (id(node.owner), node.name)
                if isinstance(node, AttributeNode)
                else id(node)
            )
            if key not in seen:
                seen.add(key)
                unique.append(node)
        if len(unique) <= 1:
            return unique
        index = self._order_index(anchor)
        unique.sort(key=lambda n: self._doc_order_key(n, index))
        return unique

    # -- evaluation ---------------------------------------------------------

    def _eval(self, node: XPathNode, ctx: XPathContext) -> XPathValue:
        if isinstance(node, Literal):
            return node.value
        if isinstance(node, Number):
            return node.value
        if isinstance(node, VarRef):
            return ctx.variable(node.name)
        if isinstance(node, Negate):
            return -as_number(self._eval(node.operand, ctx))
        if isinstance(node, BinaryOp):
            return self._eval_binary(node, ctx)
        if isinstance(node, Union):
            left = self._eval(node.left, ctx)
            right = self._eval(node.right, ctx)
            if not isinstance(left, list) or not isinstance(right, list):
                raise XPathEvaluationError("'|' requires node-set operands")
            return self._sort_unique(left + right, ctx.node)
        if isinstance(node, FunctionCall):
            return self._eval_function(node, ctx)
        if isinstance(node, Quantified):
            return self._eval_quantified(node, ctx)
        if isinstance(node, Path):
            return self._eval_path(node, ctx)
        raise XPathEvaluationError(f"cannot evaluate AST node {type(node).__name__}")

    def _eval_binary(self, node: BinaryOp, ctx: XPathContext) -> XPathValue:
        if node.op == "or":
            return as_boolean(self._eval(node.left, ctx)) or as_boolean(
                self._eval(node.right, ctx)
            )
        if node.op == "and":
            return as_boolean(self._eval(node.left, ctx)) and as_boolean(
                self._eval(node.right, ctx)
            )
        left = self._eval(node.left, ctx)
        right = self._eval(node.right, ctx)
        if node.op in ("=", "!=", "<", "<=", ">", ">="):
            return compare_values(node.op, left, right)
        a, b = as_number(left), as_number(right)
        if node.op == "+":
            return a + b
        if node.op == "-":
            return a - b
        if node.op == "*":
            return a * b
        if node.op == "div":
            if b == 0:
                return math.nan if a == 0 else math.copysign(math.inf, a)
            return a / b
        if node.op == "mod":
            return math.nan if b == 0 else math.fmod(a, b)
        raise XPathEvaluationError(f"unknown operator {node.op!r}")

    def _eval_quantified(self, node: Quantified, ctx: XPathContext) -> bool:
        sequence = self._eval(node.sequence, ctx)
        if not isinstance(sequence, list):
            sequence = [sequence]
        results = (
            as_boolean(self._eval(node.condition, ctx.with_variable(node.variable, item)))
            for item in sequence
        )
        return any(results) if node.kind == "some" else all(results)

    def _eval_path(self, node: Path, ctx: XPathContext) -> list[Any]:
        if node.absolute:
            current = [self._top_ancestor(ctx.node)]
        elif node.base is not None:
            base_value = self._eval(node.base, ctx)
            if isinstance(base_value, list):
                current = base_value
            elif isinstance(base_value, (XDocument, XElement, XText, AttributeNode)):
                # A variable bound to a single node (e.g. a FLWOR 'for'
                # binding) acts as a singleton node-set.
                current = [base_value]
            else:
                raise XPathEvaluationError("path base must be a node-set")
        else:
            current = [ctx.node]
        for step in node.steps:
            current = self._eval_step(step, current, ctx)
        return current

    def _eval_step(
        self, step: Step, context_nodes: list[Any], ctx: XPathContext
    ) -> list[Any]:
        gathered: list[Any] = []
        for context_node in context_nodes:
            candidates = self._axis_candidates(step, context_node)
            candidates = [c for c in candidates if _matches_test(c, step.test)]
            for predicate in step.predicates:
                candidates = self._filter_predicate(predicate, candidates, ctx)
            gathered.extend(candidates)
        anchor = context_nodes[0] if context_nodes else ctx.node
        return self._sort_unique(gathered, anchor)

    def _axis_candidates(self, step: Step, node: Any) -> list[Any]:
        if step.axis == AXIS_CHILD:
            return _children(node)
        if step.axis == AXIS_DESCENDANT:
            return _descendants(node)
        if step.axis == AXIS_SELF:
            return [node]
        if step.axis == AXIS_PARENT:
            parent = getattr(node, "parent", None)
            if isinstance(node, AttributeNode):
                parent = node.owner
            return [parent] if parent is not None else []
        if step.axis == AXIS_ATTRIBUTE:
            if isinstance(node, XElement):
                return [
                    AttributeNode(node, name, value)
                    for name, value in sorted(node.attributes.items())
                ]
            return []
        raise XPathEvaluationError(f"unsupported axis {step.axis!r}")

    def _filter_predicate(
        self, predicate: XPathNode, candidates: list[Any], ctx: XPathContext
    ) -> list[Any]:
        kept: list[Any] = []
        size = len(candidates)
        for position, candidate in enumerate(candidates, start=1):
            inner = ctx.with_node(candidate, position, size)
            value = self._eval(predicate, inner)
            if isinstance(value, float):
                if value == position:
                    kept.append(candidate)
            elif as_boolean(value):
                kept.append(candidate)
        return kept

    # -- functions ------------------------------------------------------------

    def _eval_function(self, node: FunctionCall, ctx: XPathContext) -> XPathValue:
        handler = _FUNCTIONS.get(node.name)
        if handler is None:
            raise XPathEvaluationError(f"unknown function {node.name}()")
        min_args, max_args, impl = handler
        if not (min_args <= len(node.args) <= max_args):
            raise XPathEvaluationError(
                f"{node.name}() takes {min_args}..{max_args} arguments,"
                f" got {len(node.args)}"
            )
        args = [self._eval(arg, ctx) for arg in node.args]
        return impl(self, ctx, args)


# Function table: name -> (min_args, max_args, impl).
_FunctionImpl = Callable[[XPath, XPathContext, list[XPathValue]], XPathValue]


def _fn_string(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> str:
    return as_string(args[0]) if args else string_value(ctx.node)


def _fn_concat(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> str:
    return "".join(as_string(arg) for arg in args)


def _fn_contains(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> bool:
    return as_string(args[1]) in as_string(args[0])


def _fn_starts_with(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> bool:
    return as_string(args[0]).startswith(as_string(args[1]))


def _fn_ends_with(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> bool:
    return as_string(args[0]).endswith(as_string(args[1]))


def _fn_substring(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> str:
    text = as_string(args[0])
    start = as_number(args[1])
    if math.isnan(start):
        return ""
    begin = int(round(start)) - 1
    if len(args) >= 3:
        length = as_number(args[2])
        if math.isnan(length):
            return ""
        end = begin + int(round(length))
    else:
        end = len(text)
    begin = max(begin, 0)
    end = min(max(end, begin), len(text))
    return text[begin:end]


def _fn_substring_before(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> str:
    text, sep = as_string(args[0]), as_string(args[1])
    index = text.find(sep)
    return text[:index] if index >= 0 else ""


def _fn_substring_after(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> str:
    text, sep = as_string(args[0]), as_string(args[1])
    index = text.find(sep)
    return text[index + len(sep):] if index >= 0 else ""


def _fn_string_length(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> float:
    text = as_string(args[0]) if args else string_value(ctx.node)
    return float(len(text))


def _fn_normalize_space(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> str:
    text = as_string(args[0]) if args else string_value(ctx.node)
    return " ".join(text.split())


def _fn_translate(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> str:
    text, source, target = (as_string(a) for a in args)
    table: dict[int, int | None] = {}
    for index, char in enumerate(source):
        if ord(char) in table:
            continue
        table[ord(char)] = ord(target[index]) if index < len(target) else None
    return text.translate(table)


def _fn_lower(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> str:
    return as_string(args[0]).lower()


def _fn_upper(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> str:
    return as_string(args[0]).upper()


def _fn_boolean(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> bool:
    return as_boolean(args[0])


def _fn_not(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> bool:
    return not as_boolean(args[0])


def _fn_true(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> bool:
    return True


def _fn_false(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> bool:
    return False


def _fn_number(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> float:
    return as_number(args[0]) if args else as_number(string_value(ctx.node))


def _fn_sum(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> float:
    nodes = args[0]
    if not isinstance(nodes, list):
        raise XPathEvaluationError("sum() requires a node-set")
    return float(sum(as_number(string_value(n)) for n in nodes))


def _fn_floor(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> float:
    return float(math.floor(as_number(args[0])))


def _fn_ceiling(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> float:
    return float(math.ceil(as_number(args[0])))


def _fn_round(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> float:
    value = as_number(args[0])
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.floor(value + 0.5))


def _fn_count(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> float:
    nodes = args[0]
    if not isinstance(nodes, list):
        raise XPathEvaluationError("count() requires a node-set")
    return float(len(nodes))


def _fn_position(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> float:
    return float(ctx.position)


def _fn_last(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> float:
    return float(ctx.size)


def _fn_name(xp: XPath, ctx: XPathContext, args: list[XPathValue]) -> str:
    if args:
        nodes = args[0]
        if not isinstance(nodes, list):
            raise XPathEvaluationError("name() requires a node-set argument")
        if not nodes:
            return ""
        target = nodes[0]
    else:
        target = ctx.node
    if isinstance(target, XElement):
        return target.tag
    if isinstance(target, AttributeNode):
        return target.name
    return ""


_FUNCTIONS: dict[str, tuple[int, int, _FunctionImpl]] = {
    "string": (0, 1, _fn_string),
    "concat": (2, 64, _fn_concat),
    "contains": (2, 2, _fn_contains),
    "starts-with": (2, 2, _fn_starts_with),
    "ends-with": (2, 2, _fn_ends_with),
    "substring": (2, 3, _fn_substring),
    "substring-before": (2, 2, _fn_substring_before),
    "substring-after": (2, 2, _fn_substring_after),
    "string-length": (0, 1, _fn_string_length),
    "normalize-space": (0, 1, _fn_normalize_space),
    "translate": (3, 3, _fn_translate),
    "lower-case": (1, 1, _fn_lower),
    "upper-case": (1, 1, _fn_upper),
    "boolean": (1, 1, _fn_boolean),
    "not": (1, 1, _fn_not),
    "true": (0, 0, _fn_true),
    "false": (0, 0, _fn_false),
    "number": (0, 1, _fn_number),
    "sum": (1, 1, _fn_sum),
    "floor": (1, 1, _fn_floor),
    "ceiling": (1, 1, _fn_ceiling),
    "round": (1, 1, _fn_round),
    "count": (1, 1, _fn_count),
    "position": (0, 0, _fn_position),
    "last": (0, 0, _fn_last),
    "name": (0, 1, _fn_name),
    "local-name": (0, 1, _fn_name),
}


def evaluate_xpath(
    node: Any,
    expression: str,
    variables: Optional[dict[str, XPathValue]] = None,
) -> XPathValue:
    """One-shot convenience: compile and evaluate ``expression``."""
    return XPath(expression).evaluate(node, variables)
