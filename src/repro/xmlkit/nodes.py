"""Plain XML node model.

A deliberately small, dependency-free document object model: elements with
string attributes, text nodes, and a document wrapper.  It exists (instead
of ``xml.etree``) because the probabilistic layer needs precise structural
control — node identity, stable child order, deep equality with an
order-insensitive mode, and exact node counting, all of which are awkward to
bolt onto ElementTree.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Union

XChild = Union["XElement", "XText"]


class XNode:
    """Base class for plain XML nodes."""

    parent: Optional["XElement"]

    def node_count(self) -> int:
        """Number of nodes in this subtree (this node included)."""
        raise NotImplementedError

    def copy(self) -> "XNode":
        """Deep copy of this subtree; the copy has no parent."""
        raise NotImplementedError


class XText(XNode):
    """A text node holding a string value."""

    __slots__ = ("value", "parent")

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"text value must be str, got {type(value).__name__}")
        self.value = value
        self.parent = None

    def node_count(self) -> int:
        return 1

    def copy(self) -> "XText":
        return XText(self.value)

    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"XText({self.value!r})"


class XElement(XNode):
    """An element node: tag, attributes, ordered children.

    Children are :class:`XElement` or :class:`XText`; the constructor also
    accepts plain strings as shorthand for text children.

    >>> person = XElement("person", children=[XElement("nm", children=["John"])])
    >>> person.find("nm").text()
    'John'
    """

    __slots__ = ("tag", "attributes", "children", "parent")

    def __init__(
        self,
        tag: str,
        attributes: Optional[dict[str, str]] = None,
        children: Optional[Iterable[Union[XChild, str]]] = None,
    ):
        if not tag or not isinstance(tag, str):
            raise ValueError(f"invalid element tag: {tag!r}")
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[XChild] = []
        self.parent = None
        for child in children or ():
            self.append(child)

    # -- construction -----------------------------------------------------

    def append(self, child: Union[XChild, str]) -> XChild:
        """Append a child (strings become text nodes) and return it."""
        if isinstance(child, str):
            child = XText(child)
        if not isinstance(child, (XElement, XText)):
            raise TypeError(f"cannot append {type(child).__name__} to an element")
        child.parent = self
        self.children.append(child)
        return child

    def extend(self, children: Iterable[Union[XChild, str]]) -> None:
        for child in children:
            self.append(child)

    def copy(self) -> "XElement":
        clone = XElement(self.tag, dict(self.attributes))
        for child in self.children:
            clone.append(child.copy())
        return clone

    # -- navigation -------------------------------------------------------

    def child_elements(self, tag: Optional[str] = None) -> list["XElement"]:
        """Element children, optionally filtered by tag."""
        return [
            child
            for child in self.children
            if isinstance(child, XElement) and (tag is None or child.tag == tag)
        ]

    def find(self, tag: str) -> Optional["XElement"]:
        """First child element with the given tag, or None."""
        for child in self.children:
            if isinstance(child, XElement) and child.tag == tag:
                return child
        return None

    def iter(self) -> Iterator[XNode]:
        """Depth-first pre-order iteration over this subtree."""
        yield self
        for child in self.children:
            if isinstance(child, XElement):
                yield from child.iter()
            else:
                yield child

    def iter_elements(self, tag: Optional[str] = None) -> Iterator["XElement"]:
        """Depth-first iteration over descendant-or-self elements."""
        for node in self.iter():
            if isinstance(node, XElement) and (tag is None or node.tag == tag):
                yield node

    def ancestors(self) -> Iterator["XElement"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # -- content ----------------------------------------------------------

    def text(self) -> str:
        """Concatenated text of all descendant text nodes (XPath string
        value of an element)."""
        parts: list[str] = []
        for node in self.iter():
            if isinstance(node, XText):
                parts.append(node.value)
        return "".join(parts)

    string_value = text

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:
        return f"XElement({self.tag!r}, children={len(self.children)})"


class XDocument:
    """A document: a single root element.

    Kept separate from :class:`XElement` because the probabilistic layer
    distinguishes documents (whose pXML counterpart is rooted at a
    probability node, §II of the paper) from element subtrees.
    """

    __slots__ = ("root",)

    def __init__(self, root: XElement):
        if not isinstance(root, XElement):
            raise TypeError("document root must be an XElement")
        self.root = root

    def copy(self) -> "XDocument":
        return XDocument(self.root.copy())

    def node_count(self) -> int:
        return self.root.node_count()

    def iter(self) -> Iterator[XNode]:
        return self.root.iter()

    def __repr__(self) -> str:
        return f"XDocument(root={self.root.tag!r}, nodes={self.node_count()})"


def _normalized_children(element: XElement) -> list[XChild]:
    """Children with whitespace-only text dropped and adjacent text merged —
    the comparison view used by deep equality."""
    merged: list[XChild] = []
    buffer: list[str] = []
    for child in element.children:
        if isinstance(child, XText):
            buffer.append(child.value)
        else:
            text = "".join(buffer)
            if text.strip():
                merged.append(XText(text))
            buffer = []
            merged.append(child)
    text = "".join(buffer)
    if text.strip():
        merged.append(XText(text))
    return merged


def canonical_key(node: XChild, *, ignore_order: bool = True) -> tuple:
    """A hashable structural key: two nodes are deep-equal iff their keys
    are equal.  With ``ignore_order`` sibling order does not matter (the
    semantics used by the paper's *deep-equal* generic rule: two elements
    describe the same real-world object if they carry the same information,
    regardless of serialisation order)."""
    if isinstance(node, XText):
        return ("#text", node.value)
    child_keys = [
        canonical_key(child, ignore_order=ignore_order)
        for child in _normalized_children(node)
    ]
    if ignore_order:
        child_keys.sort()
    return ("#elem", node.tag, tuple(sorted(node.attributes.items())), tuple(child_keys))


def deep_equal(a: XChild, b: XChild, *, ignore_order: bool = True) -> bool:
    """Structural equality of two subtrees.

    Whitespace-only text is ignored; with ``ignore_order`` (the default,
    matching the generic oracle rule) sibling order is irrelevant.
    """
    return canonical_key(a, ignore_order=ignore_order) == canonical_key(
        b, ignore_order=ignore_order
    )


def element(tag: str, *children: Union[XChild, str], **attributes: str) -> XElement:
    """Terse element constructor for tests and examples.

    >>> movie = element("movie", element("title", "Jaws"), element("year", "1975"))
    >>> movie.find("title").text()
    'Jaws'
    """
    return XElement(tag, attributes=attributes or None, children=list(children))
