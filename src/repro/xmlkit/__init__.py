"""Plain-XML substrate: node model, parser, serializer, DTD, XPath subset.

This package is the reproduction's stand-in for the XML layer of
MonetDB/XQuery (the DBMS the original IMPrECISE module ran on).  Everything
above it — the probabilistic model, integration and querying — only touches
XML through these classes.
"""

from .nodes import XDocument, XElement, XNode, XText, deep_equal
from .parser import parse_document, parse_element
from .serializer import serialize, serialize_pretty
from .dtd import DTD, Cardinality, ElementDecl, parse_dtd
from .xpath import XPath, evaluate_xpath

__all__ = [
    "XNode",
    "XElement",
    "XText",
    "XDocument",
    "deep_equal",
    "parse_document",
    "parse_element",
    "serialize",
    "serialize_pretty",
    "DTD",
    "Cardinality",
    "ElementDecl",
    "parse_dtd",
    "XPath",
    "evaluate_xpath",
]
