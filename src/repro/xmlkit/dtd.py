"""Mini-DTD: the schema knowledge that steers integration.

The paper (§III) lets a DTD rule out possibilities during integration — the
running example rejects "John has two phone numbers" because the DTD says a
person has exactly one ``tel``.  This module implements the fragment of DTD
the integration engine consumes: per-element child content models with the
standard cardinalities (``one``, ``?``, ``*``, ``+``) plus ``#PCDATA``.

Content models are interpreted as *unordered* tag→cardinality maps (data
integration cares about how many of each child may exist, not about their
order), which also matches the order-insensitive deep-equality the oracle
uses.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .nodes import XDocument, XElement, XText
from ..errors import DTDError, DTDViolation


class Cardinality(enum.Enum):
    """How many children of a tag an element may contain."""

    ONE = "1"        # exactly one
    OPTIONAL = "?"   # zero or one
    MANY = "*"       # zero or more
    PLUS = "+"       # one or more

    @property
    def repeatable(self) -> bool:
        """True when more than one occurrence is allowed."""
        return self in (Cardinality.MANY, Cardinality.PLUS)

    @property
    def required(self) -> bool:
        """True when at least one occurrence is required."""
        return self in (Cardinality.ONE, Cardinality.PLUS)

    def admits(self, count: int) -> bool:
        """Whether ``count`` occurrences satisfy this cardinality."""
        if self is Cardinality.ONE:
            return count == 1
        if self is Cardinality.OPTIONAL:
            return count <= 1
        if self is Cardinality.PLUS:
            return count >= 1
        return True


@dataclass
class ElementDecl:
    """Declaration of one element type."""

    tag: str
    children: dict[str, Cardinality] = field(default_factory=dict)
    allows_text: bool = False

    def cardinality(self, child_tag: str) -> Optional[Cardinality]:
        return self.children.get(child_tag)


@dataclass
class Violation:
    """One DTD violation found while validating a document."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


class DTD:
    """A set of element declarations.

    >>> dtd = parse_dtd('''
    ...     <!ELEMENT addressbook (person*)>
    ...     <!ELEMENT person (nm, tel)>
    ...     <!ELEMENT nm (#PCDATA)>
    ...     <!ELEMENT tel (#PCDATA)>
    ... ''')
    >>> dtd.cardinality("person", "tel")
    <Cardinality.ONE: '1'>
    """

    def __init__(self, declarations: Optional[dict[str, ElementDecl]] = None):
        self.declarations: dict[str, ElementDecl] = dict(declarations or {})

    def declare(
        self,
        tag: str,
        children: Optional[dict[str, Cardinality]] = None,
        *,
        allows_text: bool = False,
    ) -> ElementDecl:
        """Add (or replace) a declaration programmatically."""
        decl = ElementDecl(tag, dict(children or {}), allows_text)
        self.declarations[tag] = decl
        return decl

    def declaration(self, tag: str) -> Optional[ElementDecl]:
        return self.declarations.get(tag)

    def cardinality(self, parent_tag: str, child_tag: str) -> Optional[Cardinality]:
        """Cardinality of ``child_tag`` under ``parent_tag``; None when the
        parent is undeclared or the child is not part of its model."""
        decl = self.declarations.get(parent_tag)
        if decl is None:
            return None
        return decl.cardinality(child_tag)

    def is_single(self, parent_tag: str, child_tag: str) -> bool:
        """True when the DTD says at most one ``child_tag`` child may exist
        — the property that turns integration conflicts into local
        probability nodes (the "one phone number" rule of §III)."""
        card = self.cardinality(parent_tag, child_tag)
        return card is not None and not card.repeatable

    # -- validation ---------------------------------------------------------

    def validate(self, document: XDocument | XElement) -> list[Violation]:
        """All violations in the document (empty list = valid)."""
        root = document.root if isinstance(document, XDocument) else document
        return list(self._validate_element(root, f"/{root.tag}"))

    def check(self, document: XDocument | XElement) -> None:
        """Raise :class:`DTDViolation` listing all problems, if any."""
        violations = self.validate(document)
        if violations:
            details = "; ".join(str(v) for v in violations[:10])
            more = f" (+{len(violations) - 10} more)" if len(violations) > 10 else ""
            raise DTDViolation(f"document violates DTD: {details}{more}")

    def _validate_element(self, element: XElement, path: str) -> Iterator[Violation]:
        decl = self.declarations.get(element.tag)
        if decl is None:
            # Undeclared elements are permitted (open-world): integration
            # may meet source-specific wrapper tags.
            for child in element.child_elements():
                yield from self._validate_element(child, f"{path}/{child.tag}")
            return
        counts: dict[str, int] = {}
        for child in element.children:
            if isinstance(child, XText):
                if child.value.strip() and not decl.allows_text:
                    yield Violation(path, "text content not allowed")
                continue
            counts[child.tag] = counts.get(child.tag, 0) + 1
            if child.tag not in decl.children:
                yield Violation(path, f"unexpected child <{child.tag}>")
        for tag, card in decl.children.items():
            count = counts.get(tag, 0)
            if not card.admits(count):
                yield Violation(
                    path, f"child <{tag}> occurs {count}x, allowed {card.value}"
                )
        for child in element.child_elements():
            yield from self._validate_element(child, f"{path}/{child.tag}")


_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.:-]+)\s+(.+?)>", re.DOTALL)
_ITEM_RE = re.compile(r"([\w.:-]+|#PCDATA)\s*([?*+]?)")


def parse_dtd(text: str) -> DTD:
    """Parse ``<!ELEMENT …>`` declarations into a :class:`DTD`.

    Supported content models: ``EMPTY``, ``ANY``, ``(#PCDATA)``, and
    sequences/choices of named children with optional ``? * +`` suffixes.
    Sequence (``,``) and choice (``|``) separators are both accepted and
    both interpreted as the unordered tag→cardinality view described in the
    module docstring.
    """
    dtd = DTD()
    matched_any = False
    for match in _ELEMENT_RE.finditer(text):
        matched_any = True
        tag, model = match.group(1), match.group(2).strip()
        if model in ("EMPTY", "ANY"):
            dtd.declare(tag, {}, allows_text=(model == "ANY"))
            continue
        if not (model.startswith("(") and model.endswith(")")):
            raise DTDError(f"unsupported content model for <{tag}>: {model!r}")
        inner = model[1:-1]
        children: dict[str, Cardinality] = {}
        allows_text = False
        for part in re.split(r"[,|]", inner):
            part = part.strip()
            if not part:
                continue
            item = _ITEM_RE.fullmatch(part)
            if item is None:
                raise DTDError(f"unsupported content particle for <{tag}>: {part!r}")
            name, suffix = item.group(1), item.group(2)
            if name == "#PCDATA":
                allows_text = True
                continue
            if name in children:
                raise DTDError(f"duplicate child <{name}> in model of <{tag}>")
            children[name] = {
                "": Cardinality.ONE,
                "?": Cardinality.OPTIONAL,
                "*": Cardinality.MANY,
                "+": Cardinality.PLUS,
            }[suffix]
        dtd.declare(tag, children, allows_text=allows_text)
    stripped = text.strip()
    if stripped and not matched_any:
        raise DTDError("no <!ELEMENT …> declarations found")
    return dtd
