"""Incremental (multi-source) integration — the dataspace workflow.

The paper's vision (§I, and the DSSP alignment) is that sources arrive
over time: integrate, use, integrate the next source into the *uncertain*
result.  Exact sequential integration would require merging a new plain
source into every possible world; this module implements that semantics
with an explicit, principled budget:

1. the current probabilistic document is decomposed into its most
   probable distinct worlds (up to ``world_budget``; the retained mass is
   reported and the distribution renormalised — an *approximation* the
   caller sees in :class:`IncrementalReport`);
2. the new source is integrated into each retained world with the
   ordinary pairwise engine;
3. the per-world results are recombined into one probabilistic document
   (a mixture weighted by the world posteriors) and compacted.

With ``world_budget`` ≥ the world count, the procedure is exact.  User
feedback between steps keeps the world count small — which is precisely
the paper's "incrementally improving the integration" loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..errors import IntegrationError
from ..probability import ONE, ZERO
from ..pxml.build import certain_document
from ..pxml.model import PXDocument, Possibility, ProbNode
from ..pxml.simplify import simplify_fixpoint
from ..pxml.worlds import distinct_worlds
from ..xmlkit.nodes import XDocument
from .engine import IntegrationConfig, Integrator


@dataclass
class IncrementalReport:
    """What one incremental step did."""

    worlds_considered: int
    worlds_retained: int
    retained_mass: Fraction
    undecided_pairs: int
    nodes_after: int

    @property
    def is_exact(self) -> bool:
        return self.retained_mass == ONE

    def summary(self) -> str:
        exactness = "exact" if self.is_exact else (
            f"approximate (retained {float(self.retained_mass):.4f} mass)"
        )
        return (
            f"{self.worlds_retained}/{self.worlds_considered} worlds,"
            f" {self.undecided_pairs} new undecided pairs,"
            f" {self.nodes_after:,} nodes — {exactness}"
        )


@dataclass
class IncrementalIntegrator:
    """Folds a stream of sources into one probabilistic document.

    >>> # see tests/test_incremental.py and examples for usage
    """

    config: IntegrationConfig
    world_budget: int = 64
    compact: bool = True
    document: Optional[PXDocument] = None
    history: list[IncrementalReport] = field(default_factory=list)

    def add_source(self, source: XDocument) -> IncrementalReport:
        """Integrate one more plain source into the running document."""
        if self.world_budget <= 0:
            raise IntegrationError("world budget must be positive")
        if self.document is None:
            self.document = certain_document(source)
            report = IncrementalReport(1, 1, ONE, 0, self.document.node_count())
            self.history.append(report)
            return report

        worlds = distinct_worlds(self.document, limit=None)
        considered = len(worlds)
        retained = worlds[: self.world_budget]
        mass = sum((prob for _, prob in retained), ZERO)
        if mass == 0:
            raise IntegrationError("no probability mass to integrate into")

        mixture = ProbNode()
        undecided = 0
        for world_doc, prob in retained:
            result = Integrator(self.config).integrate(world_doc, source)
            undecided += result.report.undecided_pairs
            weight = prob / mass
            for possibility in result.document.root.possibilities:
                mixture.append(
                    Possibility(weight * possibility.prob, possibility.children)
                )
        document = PXDocument(mixture)
        if self.compact:
            document, _ = simplify_fixpoint(document)
        # The superseded document's cache dies with it (weak registry);
        # the replacement starts with a fresh, empty cache.
        self.document = document
        report = IncrementalReport(
            worlds_considered=considered,
            worlds_retained=len(retained),
            retained_mass=mass,
            undecided_pairs=undecided,
            nodes_after=document.node_count(),
        )
        self.history.append(report)
        return report


def integrate_many(
    sources: Sequence[XDocument],
    config: IntegrationConfig,
    *,
    world_budget: int = 64,
) -> tuple[PXDocument, list[IncrementalReport]]:
    """Fold ``sources`` left-to-right into one probabilistic document.

    Raises :class:`IntegrationError` on an empty source list.
    """
    if not sources:
        raise IntegrationError("need at least one source")
    integrator = IncrementalIntegrator(config=config, world_budget=world_budget)
    for source in sources:
        integrator.add_source(source)
    assert integrator.document is not None
    return integrator.document, integrator.history
