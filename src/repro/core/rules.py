"""Knowledge-rule framework and the paper's generic rules (§V).

Rules "make statements about when, with certainty, two elements match or
not": a rule inspects a pair of same-tag elements and returns
:data:`Decision.MATCH`, :data:`Decision.NO_MATCH`, or ``None`` (abstain).
The Oracle runs rules in order and the first absolute decision wins; when
every rule abstains, the pair stays *uncertain* and integration keeps both
possibilities.

The paper's generic rules and where they live:

* "Two deep-equal elements refer to the same rwo" — :class:`DeepEqualRule`;
* "No two siblings in one source refer to the same rwo" — not a rule
  object: it is the *injectivity* of matchings enforced by
  :mod:`repro.core.matching` (an element of one source pairs with at most
  one element of the other, and siblings of the same source never merge).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..xmlkit.dtd import DTD
from ..xmlkit.nodes import XElement, XText, deep_equal
from .similarity import person_name_similarity


class Decision(enum.Enum):
    """An absolute judgement on a pair of elements."""

    MATCH = "match"
    NO_MATCH = "no-match"


@dataclass
class MatchContext:
    """What a rule may look at besides the two elements themselves."""

    parent_tag: Optional[str] = None
    tag: Optional[str] = None
    dtd: Optional[DTD] = None
    depth: int = 0
    source_a: str = "a"
    source_b: str = "b"


class Rule:
    """Base class for knowledge rules.

    Subclasses implement :meth:`judge`; ``applies_to`` restricts a rule to
    specific element tags (None = any tag).  Rules must be *deterministic*
    and side-effect free: the oracle may call them in any order and the
    analytic size estimator re-runs them.
    """

    name: str = "rule"
    applies_to: Optional[frozenset[str]] = None

    def relevant(self, tag: str) -> bool:
        return self.applies_to is None or tag in self.applies_to

    def judge(
        self, a: XElement, b: XElement, context: MatchContext
    ) -> Optional[Decision]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def _leaf_text(element: XElement) -> Optional[str]:
    """The text of a leaf element (no element children), else None."""
    if element.child_elements():
        return None
    return element.text().strip()


class DeepEqualRule(Rule):
    """Generic: two deep-equal elements refer to the same real-world
    object.  Abstains otherwise (inequality proves nothing)."""

    name = "deep-equal"

    def judge(
        self, a: XElement, b: XElement, context: MatchContext
    ) -> Optional[Decision]:
        if deep_equal(a, b):
            return Decision.MATCH
        return None


class LeafValueRule(Rule):
    """Generic fallback for *leaf* elements (genres, phone numbers …):
    equal text matches, different text does not.

    Registered after domain rules, it stops every differing leaf pair from
    becoming an uncertain choice point — without it, integration would
    consider "Action" and "Horror" possibly the same genre.  Non-leaf
    elements abstain.
    """

    name = "leaf-value"

    def judge(
        self, a: XElement, b: XElement, context: MatchContext
    ) -> Optional[Decision]:
        text_a, text_b = _leaf_text(a), _leaf_text(b)
        if text_a is None or text_b is None:
            return None
        return Decision.MATCH if text_a == text_b else Decision.NO_MATCH


class KeyFieldRule(Rule):
    """Treat a child element as a key: equal key text ⇒ MATCH, different
    key text ⇒ NO_MATCH, missing on either side ⇒ abstain.

    ``KeyFieldRule("movie", "title")`` is the strict cousin of the paper's
    title rule (useful when sources are typo-free).
    """

    def __init__(self, tag: str, key_child: str, *, name: Optional[str] = None):
        self.applies_to = frozenset({tag})
        self.key_child = key_child
        self.name = name or f"key[{tag}.{key_child}]"

    def judge(
        self, a: XElement, b: XElement, context: MatchContext
    ) -> Optional[Decision]:
        key_a, key_b = a.find(self.key_child), b.find(self.key_child)
        if key_a is None or key_b is None:
            return None
        return (
            Decision.MATCH
            if key_a.text().strip() == key_b.text().strip()
            else Decision.NO_MATCH
        )


class PersonNameRule(Rule):
    """Person-name leaves match when their *normalised* names agree
    ('McTiernan, John' ≡ 'John McTiernan'); clearly different names do not
    match; near-misses (similarity above ``uncertain_above``) abstain, i.e.
    stay uncertain — a possible typo.
    """

    def __init__(
        self,
        tags: tuple[str, ...] = ("director",),
        *,
        uncertain_above: float = 0.90,
    ):
        self.applies_to = frozenset(tags)
        self.uncertain_above = uncertain_above
        self.name = f"person-name[{','.join(sorted(tags))}]"

    def judge(
        self, a: XElement, b: XElement, context: MatchContext
    ) -> Optional[Decision]:
        text_a, text_b = _leaf_text(a), _leaf_text(b)
        if text_a is None or text_b is None:
            return None
        similarity = person_name_similarity(text_a, text_b)
        if similarity == 1.0:
            return Decision.MATCH
        if similarity >= self.uncertain_above:
            return None
        return Decision.NO_MATCH


class TextReconciler:
    """Resolves a leaf-value conflict between two *matched* elements when
    the two texts are different renderings of the same value.

    When two matched leaves disagree, the engine asks its reconcilers
    first; a non-None result becomes the certain merged value, otherwise
    the conflict turns into a probability node (two possibilities).  This
    distinction keeps convention differences ("John McTiernan" vs
    "McTiernan, John") from fabricating possible worlds, while genuine
    conflicts (phone 1111 vs 2222) stay uncertain.
    """

    name: str = "reconciler"
    applies_to: Optional[frozenset[str]] = None

    def relevant(self, tag: str) -> bool:
        return self.applies_to is None or tag in self.applies_to

    def reconcile(self, tag: str, text_a: str, text_b: str) -> Optional[str]:
        raise NotImplementedError


class PersonNameReconciler(TextReconciler):
    """Same person under different name conventions → keep source a's
    rendering (source preference is arbitrary but deterministic)."""

    def __init__(self, tags: tuple[str, ...] = ("director",)):
        self.applies_to = frozenset(tags)
        self.name = f"person-name-reconciler[{','.join(sorted(tags))}]"

    def reconcile(self, tag: str, text_a: str, text_b: str) -> Optional[str]:
        from .similarity import normalize_person_name

        if normalize_person_name(text_a) == normalize_person_name(text_b):
            return text_a
        return None


class CaseInsensitiveReconciler(TextReconciler):
    """Case-only differences are renderings, not conflicts."""

    name = "case-insensitive-reconciler"

    def __init__(self, tags: Optional[tuple[str, ...]] = None):
        self.applies_to = frozenset(tags) if tags else None

    def reconcile(self, tag: str, text_a: str, text_b: str) -> Optional[str]:
        if text_a.lower() == text_b.lower():
            return text_a
        return None


class PredicateRule(Rule):
    """Ad-hoc rule from a callable, for tests and user-supplied knowledge.

    >>> same_len = PredicateRule(
    ...     "same-length",
    ...     lambda a, b, ctx: Decision.MATCH if a.text() == b.text() else None,
    ... )
    """

    def __init__(
        self,
        name: str,
        judge_fn: Callable[[XElement, XElement, MatchContext], Optional[Decision]],
        *,
        tags: Optional[tuple[str, ...]] = None,
    ):
        self.name = name
        self._judge_fn = judge_fn
        self.applies_to = frozenset(tags) if tags else None

    def judge(
        self, a: XElement, b: XElement, context: MatchContext
    ) -> Optional[Decision]:
        return self._judge_fn(a, b, context)
