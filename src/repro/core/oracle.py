""""The Oracle" (§IV-§V): turns knowledge rules into match probabilities.

The Oracle "determines the probability that two XML elements refer to the
same real-world object based on knowledge rules".  Its contract:

* run the relevant rules in registration order;
* the first absolute decision (MATCH / NO_MATCH) wins → probability 1 / 0;
* with ``on_conflict="error"`` all rules are consulted and contradictory
  absolute decisions raise :class:`IntegrationConflict` (useful when
  debugging rule sets);
* when every rule abstains the pair is *uncertain*: the returned
  probability comes from the configured prior (a constant, or a
  similarity-scaled estimate).

The number of uncertain judgements is the paper's headline effectiveness
metric ("only on two occasions The Oracle could not make an absolute
decision") — exposed via :class:`MatchJudgement` so the integration report
can count them.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional, Sequence

from ..errors import IntegrationConflict
from ..probability import HALF, ONE, ZERO, ProbLike, as_probability
from ..xmlkit.nodes import XElement
from .rules import Decision, MatchContext, Rule
from .similarity import title_similarity


@dataclass(frozen=True)
class MatchJudgement:
    """The Oracle's verdict on one pair of elements."""

    probability: Fraction
    fired_rules: tuple[str, ...]

    @property
    def is_certain_match(self) -> bool:
        return self.probability == ONE

    @property
    def is_certain_no_match(self) -> bool:
        return self.probability == ZERO

    @property
    def is_uncertain(self) -> bool:
        return ZERO < self.probability < ONE


class ConstantPrior:
    """Uncertain pairs get a fixed prior probability (default ½ — maximum
    ignorance, the demo's default)."""

    def __init__(self, probability: ProbLike = HALF):
        self.probability = as_probability(probability)
        if self.probability in (ZERO, ONE):
            raise ValueError("an uncertain prior must be strictly between 0 and 1")

    def __call__(self, a: XElement, b: XElement, context: MatchContext) -> Fraction:
        return self.probability


class SimilarityPrior:
    """Uncertain pairs get a prior scaled by the similarity of a child
    field (default: title), clamped into [floor, ceiling].

    This is how 'Mission: Impossible' vs 'Mission: Impossible II' ends up
    *possible but unlikely* — the "II may be a typing mistake" effect that
    produces the 21 % answer in §VI.
    """

    def __init__(
        self,
        field: str = "title",
        *,
        floor: float = 0.05,
        ceiling: float = 0.95,
        measure: Callable[[str, str], float] = title_similarity,
    ):
        if not 0.0 <= floor < ceiling <= 1.0:
            raise ValueError("need 0 <= floor < ceiling <= 1")
        self.field = field
        self.floor = floor
        self.ceiling = ceiling
        self.measure = measure

    def __call__(self, a: XElement, b: XElement, context: MatchContext) -> Fraction:
        child_a, child_b = a.find(self.field), b.find(self.field)
        if child_a is None or child_b is None:
            return HALF
        similarity = self.measure(child_a.text(), child_b.text())
        clamped = min(max(similarity, self.floor), self.ceiling)
        return as_probability(round(clamped, 6))


PriorFn = Callable[[XElement, XElement, MatchContext], Fraction]


class Oracle:
    """Rule combiner: element pair → match probability.

    >>> from repro.xmlkit.nodes import element
    >>> from repro.core.rules import DeepEqualRule, LeafValueRule
    >>> oracle = Oracle([DeepEqualRule(), LeafValueRule()])
    >>> a, b = element("genre", "Action"), element("genre", "Action")
    >>> oracle.judge(a, b, MatchContext(tag="genre")).probability
    Fraction(1, 1)
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        *,
        prior: Optional[PriorFn] = None,
        on_conflict: str = "first",
    ):
        if on_conflict not in ("first", "error"):
            raise ValueError("on_conflict must be 'first' or 'error'")
        self.rules = list(rules)
        self.prior: PriorFn = prior or ConstantPrior()
        self.on_conflict = on_conflict

    def with_rules(self, rules: Sequence[Rule]) -> "Oracle":
        """A copy of this oracle with a different rule list."""
        return Oracle(rules, prior=self.prior, on_conflict=self.on_conflict)

    def judge(
        self, a: XElement, b: XElement, context: MatchContext
    ) -> MatchJudgement:
        """Judge whether ``a`` and ``b`` refer to the same real-world
        object.  Elements of different tags never match."""
        if a.tag != b.tag:
            return MatchJudgement(ZERO, ("tag-mismatch",))
        decisions: list[tuple[str, Decision]] = []
        for rule in self.rules:
            if not rule.relevant(a.tag):
                continue
            decision = rule.judge(a, b, context)
            if decision is None:
                continue
            decisions.append((rule.name, decision))
            if self.on_conflict == "first":
                break
        if decisions:
            if self.on_conflict == "error":
                kinds = {decision for _, decision in decisions}
                if len(kinds) > 1:
                    conflict = ", ".join(
                        f"{name}→{decision.value}" for name, decision in decisions
                    )
                    raise IntegrationConflict(
                        f"rules disagree on <{a.tag}> pair: {conflict}"
                    )
            name, decision = decisions[0]
            probability = ONE if decision is Decision.MATCH else ZERO
            return MatchJudgement(probability, (name,))
        prior = self.prior(a, b, context)
        # A prior must not fabricate certainty the rules did not provide:
        # clamp degenerate priors strictly inside (0, 1).
        if prior == ZERO:
            prior = Fraction(1, 100)
        elif prior == ONE:
            prior = Fraction(99, 100)
        return MatchJudgement(prior, ())
