"""The paper's contribution: probabilistic data integration (§III–§V).

* :mod:`repro.core.similarity` — string measures the rules build on;
* :mod:`repro.core.rules` / :mod:`repro.core.domain` — knowledge rules
  (generic and movie-domain) fed to "The Oracle";
* :mod:`repro.core.oracle` — combines rules into match judgements;
* :mod:`repro.core.matching` — partial injective matchings between child
  sequences: enumeration, counting, probabilities;
* :mod:`repro.core.engine` — the recursive integration algorithm producing
  a probabilistic XML document;
* :mod:`repro.core.estimate` — exact size accounting of the would-be
  result without materialising it (how Figure 5's 10⁹-node points are
  computed).
"""

from .similarity import (
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    normalize_person_name,
    person_name_similarity,
    title_similarity,
    token_jaccard,
)
from .rules import (
    CaseInsensitiveReconciler,
    Decision,
    DeepEqualRule,
    KeyFieldRule,
    LeafValueRule,
    MatchContext,
    PersonNameReconciler,
    PersonNameRule,
    PredicateRule,
    Rule,
    TextReconciler,
)
from .domain import GenreRule, TitleRule, YearRule, movie_rules
from .oracle import ConstantPrior, MatchJudgement, Oracle, SimilarityPrior
from .matching import (
    Component,
    MatchingProblem,
    Pair,
    count_matchings,
    count_matchings_containing,
    enumerate_matchings,
    matching_distribution,
)
from .engine import (
    IntegrationConfig,
    IntegrationReport,
    IntegrationResult,
    Integrator,
    integrate,
)
from .estimate import SizeEstimate, estimate_integration
from .incremental import (
    IncrementalIntegrator,
    IncrementalReport,
    integrate_many,
)

__all__ = [
    "levenshtein",
    "levenshtein_similarity",
    "jaro_winkler",
    "token_jaccard",
    "title_similarity",
    "normalize_person_name",
    "person_name_similarity",
    "Decision",
    "MatchContext",
    "Rule",
    "DeepEqualRule",
    "LeafValueRule",
    "KeyFieldRule",
    "PersonNameRule",
    "PredicateRule",
    "TextReconciler",
    "PersonNameReconciler",
    "CaseInsensitiveReconciler",
    "GenreRule",
    "TitleRule",
    "YearRule",
    "movie_rules",
    "Oracle",
    "MatchJudgement",
    "ConstantPrior",
    "SimilarityPrior",
    "Pair",
    "Component",
    "MatchingProblem",
    "enumerate_matchings",
    "count_matchings",
    "count_matchings_containing",
    "matching_distribution",
    "IntegrationConfig",
    "IntegrationReport",
    "IntegrationResult",
    "Integrator",
    "integrate",
    "SizeEstimate",
    "estimate_integration",
    "IncrementalIntegrator",
    "IncrementalReport",
    "integrate_many",
]
