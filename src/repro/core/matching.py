"""Partial injective matchings between two sibling sequences.

Integration of two sequences of same-tag children (§III) must consider
every way of pairing elements across the sources: each element matches at
most one partner (this injectivity *is* the paper's generic rule "no two
siblings in one source refer to the same rwo"), and any subset of allowed
pairs that respects it is a possible world.

This module provides three views of that combinatorial space:

* :func:`enumerate_matchings` — explicit enumeration (what the engine
  materialises into possibility nodes), with an explosion guard;
* :func:`count_matchings` / :func:`count_matchings_containing` /
  :func:`count_matchings_weighted` — exact counting by bitmask dynamic
  programming over the smaller side, used by the analytic size estimator
  when enumeration is infeasible (Figure 5's large configurations);
* :func:`matching_distribution` — normalised probabilities: a matching
  ``M`` over allowed pairs ``A`` has weight ``Π_{p∈M} prob(p) ·
  Π_{p∈A∖M} (1−prob(p))``, renormalised over all injective matchings
  (pairwise independence does not respect injectivity, hence the
  normalisation).

Connected components of the "allowed pair" bipartite graph are independent
choices; :meth:`MatchingProblem.components` splits them so the engine can
factor the representation (one probability node per component).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Mapping, Optional, Sequence

from ..errors import ExplosionError, IntegrationConflict
from ..probability import ONE, ZERO

#: Mask-side width beyond which the counting DP refuses to run.
MAX_MASK_SIDE = 24


@dataclass(frozen=True, order=True)
class Pair:
    """An allowed match between left element ``left`` and right element
    ``right`` (indices into the two sequences), with its probability."""

    left: int
    right: int
    prob: Fraction = ONE

    def __post_init__(self):
        if not ZERO < self.prob <= ONE:
            raise ValueError(f"pair probability must be in (0, 1], got {self.prob}")


Matching = tuple[Pair, ...]


@dataclass(frozen=True)
class Component:
    """A connected component of the allowed-pair graph: choices inside a
    component are dependent (they compete for elements); choices across
    components are independent."""

    left: tuple[int, ...]
    right: tuple[int, ...]
    pairs: tuple[Pair, ...]


class MatchingProblem:
    """The full bipartite matching space for one sibling group."""

    def __init__(self, left_count: int, right_count: int, pairs: Sequence[Pair]):
        self.left_count = left_count
        self.right_count = right_count
        self.pairs: tuple[Pair, ...] = tuple(sorted(pairs))
        seen: set[tuple[int, int]] = set()
        for pair in self.pairs:
            if not (0 <= pair.left < left_count and 0 <= pair.right < right_count):
                raise ValueError(f"pair {pair} outside sequence bounds")
            key = (pair.left, pair.right)
            if key in seen:
                raise ValueError(f"duplicate pair ({pair.left}, {pair.right})")
            seen.add(key)

    def involved_left(self) -> set[int]:
        return {pair.left for pair in self.pairs}

    def involved_right(self) -> set[int]:
        return {pair.right for pair in self.pairs}

    def free_left(self) -> list[int]:
        """Left elements with no allowed partner (always copied verbatim)."""
        involved = self.involved_left()
        return [i for i in range(self.left_count) if i not in involved]

    def free_right(self) -> list[int]:
        involved = self.involved_right()
        return [j for j in range(self.right_count) if j not in involved]

    def components(self) -> list[Component]:
        """Connected components of the allowed-pair graph, in order of
        their smallest left index."""
        parent: dict[tuple[str, int], tuple[str, int]] = {}

        def find(node: tuple[str, int]) -> tuple[str, int]:
            root = node
            while parent.setdefault(root, root) != root:
                root = parent[root]
            while parent[node] != root:
                parent[node], node = root, parent[node]
            return root

        def union(a: tuple[str, int], b: tuple[str, int]) -> None:
            parent[find(a)] = find(b)

        for pair in self.pairs:
            union(("L", pair.left), ("R", pair.right))

        groups: dict[tuple[str, int], list[Pair]] = {}
        for pair in self.pairs:
            groups.setdefault(find(("L", pair.left)), []).append(pair)

        components = []
        for pairs in groups.values():
            left = tuple(sorted({p.left for p in pairs}))
            right = tuple(sorted({p.right for p in pairs}))
            components.append(Component(left, right, tuple(sorted(pairs))))
        components.sort(key=lambda c: c.left[0])
        return components

    def as_single_component(self) -> Component:
        """The whole problem as one (possibly disconnected) component —
        the paper-faithful *joint* representation."""
        return Component(
            tuple(sorted(self.involved_left())),
            tuple(sorted(self.involved_right())),
            self.pairs,
        )


def enumerate_matchings(
    component: Component, *, limit: Optional[int] = None
) -> list[Matching]:
    """All injective matchings over the component's pairs, deterministic
    order (depth-first over pairs sorted by index), empty matching first.

    Raises :class:`ExplosionError` when more than ``limit`` matchings
    exist (the count is known cheaply beforehand via
    :func:`count_matchings`, so the guard triggers before any work).
    """
    if limit is not None:
        total = count_matchings(component)
        if total > limit:
            raise ExplosionError(
                f"{total} matchings exceed the possibility budget of {limit}",
                estimated=total,
            )
    results: list[Matching] = []
    pairs = component.pairs

    def extend(index: int, used_left: set[int], used_right: set[int],
               chosen: list[Pair]) -> None:
        if index == len(pairs):
            results.append(tuple(chosen))
            return
        pair = pairs[index]
        # Branch 1: skip this pair.
        extend(index + 1, used_left, used_right, chosen)
        # Branch 2: take it, if both endpoints are free.
        if pair.left not in used_left and pair.right not in used_right:
            used_left.add(pair.left)
            used_right.add(pair.right)
            chosen.append(pair)
            extend(index + 1, used_left, used_right, chosen)
            chosen.pop()
            used_left.discard(pair.left)
            used_right.discard(pair.right)

    extend(0, set(), set(), [])
    results.sort(key=lambda matching: (len(matching), matching))
    return results


def matching_weight(matching: Matching, component: Component) -> Fraction:
    """Unnormalised weight: Π_{p∈M} prob · Π_{p∈A∖M} (1−prob)."""
    chosen = set(matching)
    weight = ONE
    for pair in component.pairs:
        weight *= pair.prob if pair in chosen else (ONE - pair.prob)
    return weight


def matching_distribution(
    component: Component, *, limit: Optional[int] = None
) -> list[tuple[Matching, Fraction]]:
    """Matchings with exact normalised probabilities (sum = 1)."""
    matchings = enumerate_matchings(component, limit=limit)
    weights = [matching_weight(matching, component) for matching in matchings]
    total = sum(weights, ZERO)
    if total == 0:
        raise IntegrationConflict(
            "all matchings have weight zero — contradictory pair probabilities"
        )
    return [
        (matching, weight / total)
        for matching, weight in zip(matchings, weights)
        if weight > 0
    ]


# -- counting by dynamic programming ----------------------------------------

def _mask_side(component: Component) -> tuple[dict[int, int], bool]:
    """Choose the smaller side as the bitmask side.

    Returns (index→bit position, left_is_mask_side).
    """
    if len(component.left) <= len(component.right):
        side, left_is_mask = component.left, True
    else:
        side, left_is_mask = component.right, False
    if len(side) > MAX_MASK_SIDE:
        raise ExplosionError(
            f"matching count DP needs 2^{len(side)} states; both sides of the"
            f" component exceed {MAX_MASK_SIDE} elements"
        )
    return {index: bit for bit, index in enumerate(side)}, left_is_mask


def _adjacency(
    component: Component,
    bits: Mapping[int, int],
    left_is_mask: bool,
    weights: Optional[Mapping[tuple[int, int], int]] = None,
) -> dict[int, list[tuple[int, int]]]:
    """For each sequential-side vertex: list of (mask-bit, weight)."""
    adjacency: dict[int, list[tuple[int, int]]] = {}
    for pair in component.pairs:
        if left_is_mask:
            sequential, masked = pair.right, pair.left
        else:
            sequential, masked = pair.left, pair.right
        weight = 1 if weights is None else weights[(pair.left, pair.right)]
        adjacency.setdefault(sequential, []).append((bits[masked], weight))
    return adjacency


def count_matchings_weighted(
    component: Component,
    weights: Optional[Mapping[tuple[int, int], int]] = None,
) -> int:
    """Σ over injective matchings of Π over matched pairs of weight(pair).

    With unit weights this is the number of matchings.  Runs in
    O(|sequential side| · 2^|mask side|); the mask side is the smaller one.
    """
    if not component.pairs:
        return 1
    bits, left_is_mask = _mask_side(component)
    adjacency = _adjacency(component, bits, left_is_mask, weights)
    # dp[mask] = total weight of matchings using exactly the masked
    # vertices in `mask`, over the sequential vertices processed so far.
    dp: dict[int, int] = {0: 1}
    for sequential in sorted(adjacency):
        updated = dict(dp)  # leaving `sequential` unmatched
        for mask, ways in dp.items():
            for bit, weight in adjacency[sequential]:
                if not mask & (1 << bit):
                    key = mask | (1 << bit)
                    updated[key] = updated.get(key, 0) + ways * weight
        dp = updated
    return sum(dp.values())


def count_matchings(component: Component) -> int:
    """Exact number of injective matchings (including the empty one).

    >>> pairs = tuple(Pair(i, j, Fraction(1, 2)) for i in range(2) for j in range(2))
    >>> count_matchings(Component((0, 1), (0, 1), pairs))
    7
    """
    return count_matchings_weighted(component, None)


def _without(component: Component, left: int, right: int) -> Component:
    """The component with one left and one right element removed."""
    pairs = tuple(
        pair
        for pair in component.pairs
        if pair.left != left and pair.right != right
    )
    return Component(
        tuple(i for i in component.left if i != left),
        tuple(j for j in component.right if j != right),
        pairs,
    )


def count_matchings_containing(component: Component, pair: Pair) -> int:
    """Number of matchings that include ``pair`` — the matchings of the
    component with both endpoints removed."""
    return count_matchings(_without(component, pair.left, pair.right))


def matched_count_by_element(
    component: Component,
) -> tuple[dict[int, int], dict[int, int]]:
    """For every element: in how many matchings is it matched?

    Returns (left index → count, right index → count).  Used by the size
    estimator: an element appears as an *unmatched copy* in
    ``total − matched`` possibilities.
    """
    left_counts = {i: 0 for i in component.left}
    right_counts = {j: 0 for j in component.right}
    for pair in component.pairs:
        with_pair = count_matchings_containing(component, pair)
        left_counts[pair.left] += with_pair
        right_counts[pair.right] += with_pair
    return left_counts, right_counts
