"""Exact size accounting of an integration result *without* building it.

Figure 5 of the paper plots integration results up to ~10⁹ nodes; no
interpreter materialises such a tree.  This estimator mirrors the engine's
construction arithmetic exactly:

* per-pair merges are materialised once each (they are element-sized, e.g.
  one merged movie) to obtain their node and world counts;
* the combinatorial part — how many matchings exist, in how many of them a
  given pair is matched, in how many a given element stays unmatched — is
  computed by the counting DP of :mod:`repro.core.matching`;
* node totals follow from linearity:
  ``Σ_M size(M) = count·overhead + Σ_pairs size(pair)·count_with(pair)
  + Σ_elements size(element)·count_unmatched(element)``.

The test suite checks ``estimate_integration(...) ==`` the materialised
``node_count`` / ``world_count`` on every configuration small enough to
build, for both representation strategies; beyond that the formulas are
the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import IntegrationError
from ..pxml.build import certain_element
from ..pxml.worlds import world_count
from ..xmlkit.nodes import XDocument, XElement, XText
from .engine import (
    IntegrationConfig,
    Integrator,
    SequenceAnalysis,
    _grouped_children,
    _leaf_text,
    analyze_sequences,
)
from .matching import (
    Component,
    count_matchings,
    count_matchings_containing,
    count_matchings_weighted,
    matched_count_by_element,
)
from .rules import MatchContext


@dataclass
class GroupEstimate:
    """Diagnostics for one uncertain sibling group."""

    parent_tag: str
    tag: str
    components: int
    joint_matchings: int          # Π over components (the joint possibility count)
    largest_component_matchings: int


@dataclass
class SizeEstimate:
    """Exact size of the would-be integration result."""

    total_nodes: int
    world_count: int
    groups: list[GroupEstimate] = field(default_factory=list)

    @property
    def possibility_count(self) -> int:
        """Joint matchings of the largest group (headline choice size)."""
        if not self.groups:
            return 1
        return max(group.joint_matchings for group in self.groups)


class _Estimator:
    def __init__(self, config: IntegrationConfig):
        self.config = config
        # A throwaway integrator provides the *actual* per-pair merges so
        # the estimate cannot drift from the engine's construction.
        self._integrator = Integrator(config)
        self.groups: list[GroupEstimate] = []

    # node/world counts of a certain (unmatched) element
    def certain_size(self, element: XElement) -> int:
        return certain_element(element).node_count()

    def merged_pair_size(self, a: XElement, b: XElement) -> tuple[int, int]:
        merged = self._integrator.merge_pair(a, b)
        return merged.node_count(), world_count(merged)

    # -- element level ------------------------------------------------------

    def element(self, a: XElement, b: XElement, depth: int) -> tuple[int, int]:
        """(nodes, worlds) of the merged element — mirrors
        ``Integrator.merge_pair``."""
        text_a, text_b = _leaf_text(a), _leaf_text(b)
        if text_a is not None and text_b is not None:
            if text_a == text_b:
                return (4, 1) if text_a else (1, 1)
            if not text_a or not text_b:
                return 4, 1
            if self._integrator.reconcile_text(a.tag, text_a, text_b) is not None:
                return 4, 1
            return 6, 2

        nodes = 1
        worlds = 1
        groups_a = _grouped_children(a)
        groups_b = _grouped_children(b)
        tags = list(groups_a)
        tags.extend(tag for tag in groups_b if tag not in groups_a)
        for tag in tags:
            group_nodes, group_worlds = self.group(
                a.tag, tag, groups_a.get(tag, []), groups_b.get(tag, []), depth
            )
            nodes += group_nodes
            worlds *= group_worlds

        stray_a = [
            child.value.strip()
            for child in a.children
            if isinstance(child, XText) and child.value.strip()
        ]
        stray_b = [
            child.value.strip()
            for child in b.children
            if isinstance(child, XText) and child.value.strip()
        ]
        nodes += 3 * len(stray_a)
        nodes += 3 * sum(1 for text in stray_b if text not in stray_a)
        return nodes, worlds

    # -- group level ---------------------------------------------------------

    def group(
        self,
        parent_tag: str,
        tag: str,
        elements_a: list[XElement],
        elements_b: list[XElement],
        depth: int,
    ) -> tuple[int, int]:
        if not elements_b:
            return sum(2 + self.certain_size(e) for e in elements_a), 1
        if not elements_a:
            return sum(2 + self.certain_size(e) for e in elements_b), 1

        dtd = self.config.dtd
        if (
            dtd is not None
            and dtd.is_single(parent_tag, tag)
            and len(elements_a) == 1
            and len(elements_b) == 1
        ):
            nodes, worlds = self.element(elements_a[0], elements_b[0], depth + 1)
            return nodes + 2, worlds

        context = MatchContext(
            parent_tag=parent_tag,
            tag=tag,
            dtd=dtd,
            depth=depth,
            source_a=self.config.source_names[0],
            source_b=self.config.source_names[1],
        )
        analysis = analyze_sequences(
            tag, elements_a, elements_b, self.config.oracle, context
        )
        if self.config.factor_components:
            return self._factored(analysis, parent_tag, elements_a, elements_b, depth)
        return self._joint(analysis, parent_tag, elements_a, elements_b, depth)

    def _pair_sizes(
        self,
        analysis: SequenceAnalysis,
        elements_a: list[XElement],
        elements_b: list[XElement],
        depth: int,
    ) -> dict[tuple[int, int], tuple[int, int]]:
        sizes: dict[tuple[int, int], tuple[int, int]] = {}
        for i, j in analysis.certain_pairs:
            sizes[(i, j)] = self.element(elements_a[i], elements_b[j], depth + 1)
        for pair in analysis.problem.pairs:
            sizes[(pair.left, pair.right)] = self.element(
                elements_a[pair.left], elements_b[pair.right], depth + 1
            )
        return sizes

    def _component_sums(
        self,
        component: Component,
        pair_sizes: dict[tuple[int, int], tuple[int, int]],
        cs_left: dict[int, int],
        cs_right: dict[int, int],
    ) -> tuple[int, int, int]:
        """(count, Σ_M content_nodes(M), weighted world count) for one
        component, where content_nodes(M) = Σ merged sizes + Σ unmatched
        certain sizes."""
        count = count_matchings(component)
        content = 0
        for pair in component.pairs:
            with_pair = count_matchings_containing(component, pair)
            content += pair_sizes[(pair.left, pair.right)][0] * with_pair
        matched_left, matched_right = matched_count_by_element(component)
        for i in component.left:
            content += cs_left[i] * (count - matched_left[i])
        for j in component.right:
            content += cs_right[j] * (count - matched_right[j])
        world_weights = {
            (pair.left, pair.right): pair_sizes[(pair.left, pair.right)][1]
            for pair in component.pairs
        }
        worlds = count_matchings_weighted(component, world_weights)
        return count, content, worlds

    def _record_group(
        self, analysis: SequenceAnalysis, parent_tag: str, counts: list[int]
    ) -> None:
        if not analysis.problem.pairs:
            return
        joint = 1
        for count in counts:
            joint *= count
        self.groups.append(
            GroupEstimate(
                parent_tag=parent_tag,
                tag=analysis.tag,
                components=len(counts),
                joint_matchings=joint,
                largest_component_matchings=max(counts),
            )
        )

    def _factored(
        self,
        analysis: SequenceAnalysis,
        parent_tag: str,
        elements_a: list[XElement],
        elements_b: list[XElement],
        depth: int,
    ) -> tuple[int, int]:
        pair_sizes = self._pair_sizes(analysis, elements_a, elements_b, depth)
        cs_left = {i: self.certain_size(e) for i, e in enumerate(elements_a)}
        cs_right = {j: self.certain_size(e) for j, e in enumerate(elements_b)}

        nodes = 0
        worlds = 1
        for i, j in analysis.certain_pairs:
            size, pair_worlds = pair_sizes[(i, j)]
            nodes += 2 + size
            worlds *= pair_worlds
        for i in analysis.free_a:
            nodes += 2 + cs_left[i]
        for j in analysis.free_b:
            nodes += 2 + cs_right[j]

        counts: list[int] = []
        for component in analysis.problem.components():
            count, content, component_worlds = self._component_sums(
                component, pair_sizes, cs_left, cs_right
            )
            counts.append(count)
            nodes += 1 + count + content
            worlds *= component_worlds
        self._record_group(analysis, parent_tag, counts)
        return nodes, worlds

    def _joint(
        self,
        analysis: SequenceAnalysis,
        parent_tag: str,
        elements_a: list[XElement],
        elements_b: list[XElement],
        depth: int,
    ) -> tuple[int, int]:
        pair_sizes = self._pair_sizes(analysis, elements_a, elements_b, depth)
        cs_left = {i: self.certain_size(e) for i, e in enumerate(elements_a)}
        cs_right = {j: self.certain_size(e) for j, e in enumerate(elements_b)}

        base = 0
        base_worlds = 1
        for i, j in analysis.certain_pairs:
            size, pair_worlds = pair_sizes[(i, j)]
            base += size
            base_worlds *= pair_worlds
        base += sum(cs_left[i] for i in analysis.free_a)
        base += sum(cs_right[j] for j in analysis.free_b)

        components = analysis.problem.components()
        counts: list[int] = []
        contents: list[int] = []
        joint_worlds = base_worlds
        for component in components:
            count, content, component_worlds = self._component_sums(
                component, pair_sizes, cs_left, cs_right
            )
            counts.append(count)
            contents.append(content)
            joint_worlds *= component_worlds

        joint_count = 1
        for count in counts:
            joint_count *= count

        # One probability node; each of the joint_count possibilities
        # carries the base children plus its per-component content.
        nodes = 1 + joint_count * (1 + base)
        for count, content in zip(counts, contents):
            nodes += (joint_count // count) * content
        self._record_group(analysis, parent_tag, counts)
        return nodes, joint_worlds


def estimate_integration(
    doc_a: XDocument, doc_b: XDocument, config: IntegrationConfig
) -> SizeEstimate:
    """Exact node and world counts of ``Integrator(config).integrate(doc_a,
    doc_b)`` — without materialising the possibility cross products.

    Matches the engine bit-for-bit on feasible inputs (property-tested);
    unlike the engine it ignores ``max_possibilities`` (estimating an
    explosion is the whole point).
    """
    if doc_a.root.tag != doc_b.root.tag:
        raise IntegrationError(
            f"root tags differ (<{doc_a.root.tag}> vs <{doc_b.root.tag}>);"
            " schema alignment is assumed (§III)"
        )
    estimator = _Estimator(config)
    nodes, worlds = estimator.element(doc_a.root, doc_b.root, 0)
    return SizeEstimate(
        total_nodes=nodes + 2,  # the document's root probability+possibility
        world_count=worlds,
        groups=estimator.groups,
    )
