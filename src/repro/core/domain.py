"""The paper's movie-domain rules (§V).

Quoted from the paper:

* *Genre rule*: "no typos occur in genres" — genre values can be trusted
  exactly, so two movies whose genre sets are disjoint cannot be the same
  movie.  Overlap proves nothing (many movies share 'Action'), so the rule
  abstains then.
* *Title rule*: "two movies cannot match if their titles are not
  sufficiently similar".
* *Year rule*: "movies of different years cannot match".

All three only ever rule *out* matches — that is exactly why they are
cheap to state and safe: a wrong MATCH would merge different movies, while
a missing one merely leaves uncertainty for querying/feedback to resolve.
"""

from __future__ import annotations

from typing import Optional

from ..xmlkit.nodes import XElement
from .rules import Decision, MatchContext, Rule
from .similarity import title_similarity


def _child_texts(element: XElement, tag: str) -> list[str]:
    return [child.text().strip() for child in element.child_elements(tag)]


class GenreRule(Rule):
    """No typos occur in genres: disjoint genre sets ⇒ NO_MATCH."""

    name = "genre"
    applies_to = frozenset({"movie"})

    def __init__(self, genre_tag: str = "genre"):
        self.genre_tag = genre_tag

    def judge(
        self, a: XElement, b: XElement, context: MatchContext
    ) -> Optional[Decision]:
        genres_a = {g.lower() for g in _child_texts(a, self.genre_tag)}
        genres_b = {g.lower() for g in _child_texts(b, self.genre_tag)}
        if not genres_a or not genres_b:
            return None
        if genres_a.isdisjoint(genres_b):
            return Decision.NO_MATCH
        return None


class TitleRule(Rule):
    """Two movies cannot match if their titles are not sufficiently
    similar (similarity below ``threshold``)."""

    name = "title"
    applies_to = frozenset({"movie"})

    def __init__(self, threshold: float = 0.65, title_tag: str = "title"):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.title_tag = title_tag

    def judge(
        self, a: XElement, b: XElement, context: MatchContext
    ) -> Optional[Decision]:
        title_a, title_b = a.find(self.title_tag), b.find(self.title_tag)
        if title_a is None or title_b is None:
            return None
        if title_similarity(title_a.text(), title_b.text()) < self.threshold:
            return Decision.NO_MATCH
        return None


class YearRule(Rule):
    """Movies of different years cannot match."""

    name = "year"
    applies_to = frozenset({"movie"})

    def __init__(self, year_tag: str = "year"):
        self.year_tag = year_tag

    def judge(
        self, a: XElement, b: XElement, context: MatchContext
    ) -> Optional[Decision]:
        year_a, year_b = a.find(self.year_tag), b.find(self.year_tag)
        if year_a is None or year_b is None:
            return None
        value_a, value_b = year_a.text().strip(), year_b.text().strip()
        if not value_a or not value_b:
            return None
        return Decision.NO_MATCH if value_a != value_b else None


_RULE_FACTORIES = {
    "genre": GenreRule,
    "title": TitleRule,
    "year": YearRule,
}


def movie_rules(*names: str, title_threshold: float = 0.65) -> list[Rule]:
    """Build the domain rule set for Table I's configurations.

    ``movie_rules()`` → no domain rules; ``movie_rules("genre", "title",
    "year")`` → the paper's full set.  Unknown names raise ``ValueError``.

    >>> [rule.name for rule in movie_rules("genre", "title")]
    ['genre', 'title']
    """
    rules: list[Rule] = []
    for name in names:
        factory = _RULE_FACTORIES.get(name)
        if factory is None:
            raise ValueError(
                f"unknown movie rule {name!r}; choose from {sorted(_RULE_FACTORIES)}"
            )
        if name == "title":
            rules.append(TitleRule(threshold=title_threshold))
        else:
            rules.append(factory())
    return rules
