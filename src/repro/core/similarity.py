"""String similarity measures used by knowledge rules.

The paper's title rule ("two movies cannot match if their titles are not
sufficiently similar") needs a title measure that tolerates punctuation and
casing but stays sensitive to sequel markers ('Die Hard' vs 'Die Hard 2');
director matching needs order-insensitive person-name comparison
('John McTiernan' vs 'McTiernan, John').  Everything here is pure,
deterministic and dependency-free.
"""

from __future__ import annotations

import re

# Scores here are lossy heuristic *measurements*, not probabilities: the
# knowledge rules threshold them into exact Fractions before anything
# enters the possible-worlds model (see repro/core/rules.py).
# impreciselint: disable-file=float-taint -- similarity scores are heuristic measurements, thresholded before probabilities form

_WORD_RE = re.compile(r"[a-z0-9]+")
_ROMAN_NUMERALS = {
    "i": "1", "ii": "2", "iii": "3", "iv": "4", "v": "5",
    "vi": "6", "vii": "7", "viii": "8", "ix": "9", "x": "10",
}


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute, all cost 1).

    >>> levenshtein("jaws", "jaws 2")
    2
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to [0, 1] (1 = equal)."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    matches_a = [False] * len(a)
    matches_b = [False] * len(b)
    matches = 0
    for i, char in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len(b))
        for j in range(start, end):
            if matches_b[j] or b[j] != char:
                continue
            matches_a[i] = True
            matches_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(matches_a):
        if not matched:
            continue
        while not matches_b[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, *, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by a shared prefix of up to 4 chars."""
    base = jaro(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def tokens(text: str) -> list[str]:
    """Lower-cased alphanumeric word tokens, roman numerals normalised to
    digits ('Mission: Impossible II' → ['mission', 'impossible', '2'])."""
    raw = _WORD_RE.findall(text.lower())
    return [_ROMAN_NUMERALS.get(token, token) for token in raw]


def token_jaccard(a: str, b: str) -> float:
    """Jaccard overlap of word-token sets."""
    set_a, set_b = set(tokens(a)), set(tokens(b))
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


#: Containment score discount: a title whose tokens all occur in the other
#: title is *very* likely the same franchise entry, but not certainly the
#: same movie — 'Jaws' could be 'Jaws: The Revenge' listed sloppily.
_CONTAINMENT_WEIGHT = 0.9


def title_similarity(a: str, b: str) -> float:
    """Movie-title similarity in [0, 1].

    Three signals, the strongest wins:

    * normalised edit distance on token-joined forms (small differences);
    * token Jaccard overlap (punctuation/order robustness);
    * token *containment* — when one title's tokens are a subset of the
      other's ('Jaws' ⊂ 'Jaws: The Revenge', 'Die Hard' ⊂ 'Die Hard 2'),
      the pair is franchise-confusable: that is precisely the confusion
      §V's sequel experiments are built on.

    >>> title_similarity("Mission: Impossible II", "Mission Impossible 2") > 0.9
    True
    >>> title_similarity("Jaws", "Jaws: The Revenge") >= 0.65
    True
    >>> title_similarity("Die Hard", "Jaws") < 0.2
    True
    """
    joined_a = " ".join(tokens(a))
    joined_b = " ".join(tokens(b))
    if joined_a == joined_b:
        return 1.0
    edit = levenshtein_similarity(joined_a, joined_b)
    overlap = token_jaccard(a, b)
    combined = 0.5 * edit + 0.5 * overlap
    set_a, set_b = set(tokens(a)), set(tokens(b))
    if set_a and set_b:
        containment = len(set_a & set_b) / min(len(set_a), len(set_b))
    else:
        containment = 0.0
    return max(combined, _CONTAINMENT_WEIGHT * containment)


def normalize_person_name(name: str) -> str:
    """Canonical form of a person name: lower-cased given-name-first.

    Handles the two conventions the paper's sources disagree on:

    >>> normalize_person_name("McTiernan, John")
    'john mctiernan'
    >>> normalize_person_name("John  McTiernan")
    'john mctiernan'
    """
    name = name.strip()
    if "," in name:
        family, _, given = name.partition(",")
        name = f"{given.strip()} {family.strip()}"
    return " ".join(name.lower().split())


def person_name_similarity(a: str, b: str) -> float:
    """Similarity of two person names after normalisation (Jaro-Winkler,
    which tolerates initials and small typos)."""
    norm_a, norm_b = normalize_person_name(a), normalize_person_name(b)
    if norm_a == norm_b:
        return 1.0
    return jaro_winkler(norm_a, norm_b)
