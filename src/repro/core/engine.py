"""The recursive probabilistic integration algorithm (§III).

``integrate(doc_a, doc_b)`` walks both documents from their (aligned)
roots.  At every merged element, children are grouped by tag:

* a tag the DTD declares single-valued forces the two children to merge —
  conflicting leaf values become a local probability node (the "John has
  one phone number, 1111 *or* 2222" case of Figure 2/§III);
* a repeatable tag becomes a matching problem: the Oracle judges every
  cross pair, certain matches merge outright, certain non-matches are
  kept apart, and the remaining *uncertain* pairs span a space of partial
  injective matchings, each of which becomes one possibility node.

Two representation strategies are provided:

* ``factor_components=False`` — one probability node per sibling group
  enumerating *joint* matchings; every possibility carries the full
  child list.  This is the representation whose sizes match the paper's
  Table I / Figure 5 numbers (and it explodes the same way).
* ``factor_components=True`` (default) — independent connected components
  of the allowed-pair graph get their own probability nodes and certain
  children stay outside the choices; same distribution over worlds,
  dramatically smaller trees (our ablation A1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..errors import IntegrationError
from ..probability import HALF, ONE, ProbLike, as_probability
from ..probability import normalize as pnormalize
from ..pxml.build import certain_element, certain_prob, choice_prob
from ..pxml.model import PXDocument, PXElement, PXText, Possibility, ProbNode
from ..pxml.stats import tree_stats
from ..xmlkit.dtd import DTD
from ..xmlkit.nodes import XDocument, XElement, XText, deep_equal
from .matching import Matching, MatchingProblem, Pair, matching_distribution
from .oracle import MatchJudgement, Oracle
from .rules import MatchContext, Rule, TextReconciler


@dataclass
class IntegrationConfig:
    """Everything that parameterises an integration run."""

    oracle: Oracle
    dtd: Optional[DTD] = None
    factor_components: bool = True
    max_possibilities: int = 20_000
    source_weights: tuple[ProbLike, ProbLike] = (HALF, HALF)
    source_names: tuple[str, str] = ("a", "b")
    reconcilers: tuple[TextReconciler, ...] = ()

    #: Float weights are coerced through ``as_probability`` (decimal
    #: reading, denominator-capped), which can leave an exact sum a hair
    #: off 1 even when the floats summed to exactly 1.0 — e.g. the common
    #: ``(w, 1 - w)`` pattern with a high-precision ``w``.  Deviations
    #: within this slack are renormalized exactly; larger ones are real
    #: user errors and raise.
    _WEIGHT_SLACK = Fraction(1, 10**6)

    def __post_init__(self):
        weight_a = as_probability(self.source_weights[0], allow_zero=False)
        weight_b = as_probability(self.source_weights[1], allow_zero=False)
        total = weight_a + weight_b
        if total != 1:
            if abs(total - 1) > self._WEIGHT_SLACK:
                raise IntegrationError(
                    f"source weights must sum to 1, got {weight_a} + {weight_b}"
                )
            weight_a, weight_b = pnormalize([weight_a, weight_b])
        self.source_weights = (weight_a, weight_b)


@dataclass
class IntegrationReport:
    """Bookkeeping the paper reports on: how often the Oracle decided,
    how big the result is, where the uncertainty sits."""

    pairs_judged: int = 0
    certain_matches: int = 0
    certain_non_matches: int = 0
    undecided_pairs: int = 0
    ambiguous_matches: int = 0  # certain matches demoted for injectivity
    components: int = 0
    choice_points: int = 0
    largest_choice: int = 0
    value_conflicts: int = 0
    attribute_conflicts: int = 0
    dtd_fallbacks: int = 0
    rule_firings: Counter = field(default_factory=Counter)
    total_nodes: int = 0
    world_count: int = 0

    def summary(self) -> str:
        return (
            f"{self.total_nodes} nodes, {self.world_count} worlds;"
            f" {self.pairs_judged} pairs judged"
            f" ({self.certain_matches} match, {self.certain_non_matches} no-match,"
            f" {self.undecided_pairs} undecided);"
            f" {self.choice_points} choice points"
            f" (largest {self.largest_choice} possibilities)"
        )


@dataclass
class IntegrationResult:
    """The probabilistic document plus the run's report."""

    document: PXDocument
    report: IntegrationReport


@dataclass
class SequenceAnalysis:
    """Shared between the engine and the size estimator: the Oracle's
    verdicts on one sibling group, split into certain matches, the
    uncertain matching problem, and free (unambiguous) elements."""

    tag: str
    certain_pairs: list[tuple[int, int]]
    problem: MatchingProblem
    free_a: list[int]
    free_b: list[int]
    judgements: dict[tuple[int, int], MatchJudgement]
    ambiguous_pairs: frozenset[tuple[int, int]] = frozenset()


#: When one element certainly matches several partners (e.g. deep-equal
#: duplicate siblings), each individual pairing is demoted to this
#: probability — the element is certainly *a* match, but with whom is
#: ambiguous, and "no two siblings in one source refer to the same rwo"
#: forbids merging with both.
AMBIGUOUS_MATCH_PRIOR = HALF


def analyze_sequences(
    tag: str,
    elements_a: Sequence[XElement],
    elements_b: Sequence[XElement],
    oracle: Oracle,
    context: MatchContext,
) -> SequenceAnalysis:
    """Judge all cross pairs and classify the group.

    Certain matches that would violate injectivity (one element certainly
    matching two partners — duplicate-looking siblings) are demoted to
    uncertain pairs with :data:`AMBIGUOUS_MATCH_PRIOR`; the possible-worlds
    machinery then covers every consistent pairing.
    """
    judgements: dict[tuple[int, int], MatchJudgement] = {}
    certain: list[tuple[int, int]] = []
    for i, a in enumerate(elements_a):
        for j, b in enumerate(elements_b):
            judgement = oracle.judge(a, b, context)
            judgements[(i, j)] = judgement
            if judgement.is_certain_match:
                certain.append((i, j))

    count_a = Counter(i for i, _ in certain)
    count_b = Counter(j for _, j in certain)
    ambiguous = {
        (i, j)
        for i, j in certain
        if count_a[i] > 1 or count_b[j] > 1
    }
    certain = [pair for pair in certain if pair not in ambiguous]

    matched_a = {i for i, _ in certain}
    matched_b = {j for _, j in certain}
    uncertain = [
        Pair(i, j, AMBIGUOUS_MATCH_PRIOR if (i, j) in ambiguous
             else judgement.probability)
        for (i, j), judgement in sorted(judgements.items())
        if ((i, j) in ambiguous or judgement.is_uncertain)
        and i not in matched_a
        and j not in matched_b
    ]
    problem = MatchingProblem(len(elements_a), len(elements_b), uncertain)
    involved_a = problem.involved_left() | matched_a
    involved_b = problem.involved_right() | matched_b
    return SequenceAnalysis(
        tag=tag,
        certain_pairs=sorted(certain),
        problem=problem,
        free_a=[i for i in range(len(elements_a)) if i not in involved_a],
        free_b=[j for j in range(len(elements_b)) if j not in involved_b],
        judgements=judgements,
        ambiguous_pairs=frozenset(ambiguous),
    )


def _leaf_text(element: XElement) -> Optional[str]:
    if element.child_elements():
        return None
    return element.text().strip()


def _grouped_children(element: XElement) -> dict[str, list[XElement]]:
    groups: dict[str, list[XElement]] = {}
    for child in element.child_elements():
        groups.setdefault(child.tag, []).append(child)
    return groups


class Integrator:
    """Stateful façade over one integration run (state = the report)."""

    def __init__(self, config: IntegrationConfig):
        self.config = config
        self.report = IntegrationReport()

    # -- public API ---------------------------------------------------------

    def integrate(self, doc_a: XDocument, doc_b: XDocument) -> IntegrationResult:
        """Integrate two plain documents into one probabilistic document."""
        self.report = IntegrationReport()
        if doc_a.root.tag != doc_b.root.tag:
            raise IntegrationError(
                f"root tags differ (<{doc_a.root.tag}> vs <{doc_b.root.tag}>);"
                " schema alignment is assumed (§III)"
            )
        merged = self.merge_pair(doc_a.root, doc_b.root)
        document = PXDocument(certain_prob(merged))
        stats = tree_stats(document)
        self.report.total_nodes = stats.total
        self.report.world_count = stats.world_count
        self.report.choice_points = stats.choice_points
        self.report.largest_choice = stats.max_branching
        return IntegrationResult(document, self.report)

    def merge_pair(
        self, a: XElement, b: XElement, *, depth: int = 0
    ) -> PXElement:
        """Merge two elements that refer to the same real-world object."""
        if a.tag != b.tag:
            raise IntegrationError(f"cannot merge <{a.tag}> with <{b.tag}>")
        merged = PXElement(a.tag, self._merge_attributes(a, b))

        text_a, text_b = _leaf_text(a), _leaf_text(b)
        if text_a is not None and text_b is not None:
            # Two leaves: equal text stays certain, different text becomes
            # a local choice weighted by source reliability.
            if text_a == text_b:
                if text_a:
                    merged.append(certain_prob(PXText(text_a)))
            elif not text_a:
                merged.append(certain_prob(PXText(text_b)))
            elif not text_b:
                merged.append(certain_prob(PXText(text_a)))
            else:
                reconciled = self.reconcile_text(a.tag, text_a, text_b)
                if reconciled is not None:
                    merged.append(certain_prob(PXText(reconciled)))
                else:
                    self.report.value_conflicts += 1
                    weight_a, weight_b = self.config.source_weights
                    merged.append(
                        choice_prob(
                            [
                                (weight_a, [PXText(text_a)]),
                                (weight_b, [PXText(text_b)]),
                            ]
                        )
                    )
            return merged

        groups_a = _grouped_children(a)
        groups_b = _grouped_children(b)
        tags = list(groups_a)
        tags.extend(tag for tag in groups_b if tag not in groups_a)
        for tag in tags:
            for node in self._merge_group(
                a.tag, tag, groups_a.get(tag, []), groups_b.get(tag, []), depth
            ):
                merged.append(node)
        # Mixed content: stray text alongside elements is kept verbatim
        # (deduplicated across the sources).
        stray_a = [
            child.value.strip()
            for child in a.children
            if isinstance(child, XText) and child.value.strip()
        ]
        stray_b = [
            child.value.strip()
            for child in b.children
            if isinstance(child, XText) and child.value.strip()
        ]
        for text in stray_a:
            merged.append(certain_prob(PXText(text)))
        for text in stray_b:
            if text not in stray_a:
                merged.append(certain_prob(PXText(text)))
        return merged

    def reconcile_text(self, tag: str, text_a: str, text_b: str) -> Optional[str]:
        """First applicable reconciler's verdict on a leaf conflict, or
        None when the conflict is genuine (→ probability node)."""
        for reconciler in self.config.reconcilers:
            if not reconciler.relevant(tag):
                continue
            value = reconciler.reconcile(tag, text_a, text_b)
            if value is not None:
                return value
        return None

    # -- internals ------------------------------------------------------------

    def _merge_attributes(self, a: XElement, b: XElement) -> dict[str, str]:
        merged = dict(a.attributes)
        for name, value in b.attributes.items():
            if name in merged and merged[name] != value:
                # Attributes cannot host probability nodes in this model;
                # source a wins and the conflict is reported.
                self.report.attribute_conflicts += 1
            else:
                merged.setdefault(name, value)
        return merged

    def _merge_group(
        self,
        parent_tag: str,
        tag: str,
        elements_a: list[XElement],
        elements_b: list[XElement],
        depth: int,
    ) -> list[ProbNode]:
        if not elements_b:
            return [certain_prob(certain_element(e)) for e in elements_a]
        if not elements_a:
            return [certain_prob(certain_element(e)) for e in elements_b]

        dtd = self.config.dtd
        if dtd is not None and dtd.is_single(parent_tag, tag):
            if len(elements_a) == 1 and len(elements_b) == 1:
                # Single-valued child of one real-world object: forced merge.
                merged = self.merge_pair(elements_a[0], elements_b[0], depth=depth + 1)
                return [certain_prob(merged)]
            # The data violates the DTD; fall back to sequence semantics.
            self.report.dtd_fallbacks += 1

        context = MatchContext(
            parent_tag=parent_tag,
            tag=tag,
            dtd=dtd,
            depth=depth,
            source_a=self.config.source_names[0],
            source_b=self.config.source_names[1],
        )
        analysis = analyze_sequences(
            tag, elements_a, elements_b, self.config.oracle, context
        )
        self._account(analysis)

        merged_cache: dict[tuple[int, int], PXElement] = {}

        def merged_pair(i: int, j: int) -> PXElement:
            if (i, j) not in merged_cache:
                merged_cache[(i, j)] = self.merge_pair(
                    elements_a[i], elements_b[j], depth=depth + 1
                )
            # Fresh copy per use: each possibility needs its own choice
            # variables (a shared subtree would correlate exclusive worlds).
            return merged_cache[(i, j)].copy()

        if self.config.factor_components:
            return self._build_factored(analysis, elements_a, elements_b, merged_pair)
        return self._build_joint(analysis, elements_a, elements_b, merged_pair)

    def _account(self, analysis: SequenceAnalysis) -> None:
        self.report.pairs_judged += len(analysis.judgements)
        self.report.ambiguous_matches += len(analysis.ambiguous_pairs)
        for judgement in analysis.judgements.values():
            if judgement.is_certain_match:
                self.report.certain_matches += 1
            elif judgement.is_certain_no_match:
                self.report.certain_non_matches += 1
            else:
                self.report.undecided_pairs += 1
            for rule in judgement.fired_rules:
                self.report.rule_firings[rule] += 1
        self.report.components += len(analysis.problem.components())

    def _possibility_children(
        self,
        matching: Matching,
        component_left: Sequence[int],
        component_right: Sequence[int],
        elements_a: list[XElement],
        elements_b: list[XElement],
        merged_pair,
    ) -> list[PXElement]:
        matched_left = {pair.left for pair in matching}
        matched_right = {pair.right for pair in matching}
        children: list[PXElement] = []
        for pair in sorted(matching):
            children.append(merged_pair(pair.left, pair.right))
        for i in component_left:
            if i not in matched_left:
                children.append(certain_element(elements_a[i]))
        for j in component_right:
            if j not in matched_right:
                children.append(certain_element(elements_b[j]))
        return children

    def _build_factored(
        self,
        analysis: SequenceAnalysis,
        elements_a: list[XElement],
        elements_b: list[XElement],
        merged_pair,
    ) -> list[ProbNode]:
        nodes: list[ProbNode] = []
        for i, j in analysis.certain_pairs:
            nodes.append(certain_prob(merged_pair(i, j)))
        for i in analysis.free_a:
            nodes.append(certain_prob(certain_element(elements_a[i])))
        for j in analysis.free_b:
            nodes.append(certain_prob(certain_element(elements_b[j])))
        for component in analysis.problem.components():
            distribution = matching_distribution(
                component, limit=self.config.max_possibilities
            )
            possibilities = [
                Possibility(
                    probability,
                    self._possibility_children(
                        matching,
                        component.left,
                        component.right,
                        elements_a,
                        elements_b,
                        merged_pair,
                    ),
                )
                for matching, probability in distribution
            ]
            nodes.append(ProbNode(possibilities))
        return nodes

    def _build_joint(
        self,
        analysis: SequenceAnalysis,
        elements_a: list[XElement],
        elements_b: list[XElement],
        merged_pair,
    ) -> list[ProbNode]:
        component = analysis.problem.as_single_component()
        distribution = matching_distribution(
            component, limit=self.config.max_possibilities
        )
        possibilities = []
        for matching, probability in distribution:
            children = [merged_pair(i, j) for i, j in analysis.certain_pairs]
            children.extend(
                self._possibility_children(
                    matching,
                    component.left,
                    component.right,
                    elements_a,
                    elements_b,
                    merged_pair,
                )
            )
            children.extend(
                certain_element(elements_a[i]) for i in analysis.free_a
            )
            children.extend(
                certain_element(elements_b[j]) for j in analysis.free_b
            )
            possibilities.append(Possibility(probability, children))
        return [ProbNode(possibilities)]


def integrate(
    doc_a: XDocument,
    doc_b: XDocument,
    *,
    rules: Optional[Sequence[Rule]] = None,
    oracle: Optional[Oracle] = None,
    dtd: Optional[DTD] = None,
    factor_components: bool = True,
    max_possibilities: int = 20_000,
) -> IntegrationResult:
    """Convenience wrapper: integrate two documents with a rule list.

    >>> from repro.xmlkit import parse_document
    >>> from repro.core.rules import DeepEqualRule, LeafValueRule
    >>> a = parse_document("<r><x>1</x></r>")
    >>> b = parse_document("<r><x>1</x></r>")
    >>> result = integrate(a, b, rules=[DeepEqualRule(), LeafValueRule()])
    >>> result.document.is_certain()
    True
    """
    if oracle is None:
        oracle = Oracle(list(rules or ()))
    elif rules is not None:
        raise IntegrationError("pass either rules or an oracle, not both")
    config = IntegrationConfig(
        oracle=oracle,
        dtd=dtd,
        factor_components=factor_components,
        max_possibilities=max_possibilities,
    )
    return Integrator(config).integrate(doc_a, doc_b)
