"""End-to-end request deadlines as exact wall-clock budgets.

A :class:`Deadline` is an absolute point on the monotonic clock; every
layer of the serving stack measures against the same instance, so the
budget is end-to-end rather than per-hop: the HTTP front parses
``deadline_ms`` into a deadline, :class:`~repro.dbms.service.
DataspaceService` threads it through its fan-out, and the query engine
polls :func:`checkpoint` from its evaluation loops.  When the budget
expires, the checkpoint raises the typed
:class:`~repro.errors.DeadlineExceededError` — evaluation stops at the
next loop iteration instead of running to completion, so a straggler
cancelled by the fan-out actually releases its thread.

Propagation is **thread-local** (:func:`active` / :func:`current`), not
a parameter threaded through every engine call: one query evaluates
entirely on one executor thread, so the engine's hot loops can stay
signature-stable while still honouring the budget.  Crossing a thread
boundary (the service's fan-out pool) is explicit — the submitting side
passes the ``Deadline`` object and the worker re-activates it.

Deadlines bound *time*, never *precision*: a request either finishes
with the exact answer, is cut off with the typed error, or (under
``allow_partial``) yields a fused answer over the documents that
finished — each of those per-document answers is itself exact.

This module deliberately measures in monotonic seconds (floats) — it is
a scheduling concern, not probability arithmetic, and is therefore
outside impreciselint's float-taint scope.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, Optional

from contextlib import contextmanager

from .errors import DeadlineExceededError

__all__ = [
    "Deadline",
    "active",
    "checkpoint",
    "current",
]


class Deadline:
    """An absolute monotonic-clock expiry shared by every layer of one
    request.

    >>> budget = Deadline.from_ms(50)
    >>> budget.expired()
    False
    """

    __slots__ = ("expires_at", "budget_ms")

    def __init__(self, expires_at: float, budget_ms: int):
        self.expires_at = expires_at
        self.budget_ms = budget_ms

    @classmethod
    def from_ms(cls, budget_ms: int) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now.

        ``budget_ms`` must be a positive integer — it arrives from the
        wire, and rejecting junk here keeps every later layer simple.
        """
        if isinstance(budget_ms, bool) or not isinstance(budget_ms, int):
            raise ValueError(f"deadline_ms must be an integer, got {budget_ms!r}")
        if budget_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {budget_ms!r}")
        return cls(time.monotonic() + budget_ms / 1000.0, budget_ms)

    def remaining_seconds(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` when the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(
                f"deadline of {self.budget_ms}ms exceeded"
            )

    def __repr__(self) -> str:
        remaining = self.remaining_seconds()
        return f"Deadline({self.budget_ms}ms, {remaining * 1000.0:+.1f}ms left)"


class _ActiveDeadline(threading.local):
    """The per-thread active deadline (one query runs on one thread)."""

    def __init__(self) -> None:
        self.deadline: Optional[Deadline] = None


_ACTIVE = _ActiveDeadline()


def current() -> Optional[Deadline]:
    """The deadline active on this thread, or ``None``."""
    return _ACTIVE.deadline


@contextmanager
def active(deadline: Optional[Deadline]) -> Iterator[None]:
    """Make ``deadline`` the active deadline on this thread for the span
    of the ``with`` block (``None`` deactivates, restoring on exit).

    Re-entrant: the previous deadline is restored when the block ends,
    so nested scopes (a fan-out worker running under the request's
    deadline) compose.
    """
    previous = _ACTIVE.deadline
    _ACTIVE.deadline = deadline
    try:
        yield
    finally:
        _ACTIVE.deadline = previous


def checkpoint() -> None:
    """Raise :class:`DeadlineExceededError` when this thread's active
    deadline has expired; a no-op (two attribute reads) otherwise.

    This is the hook the engine's evaluation loops poll — cheap enough
    to call per step, and inert for the overwhelmingly common
    no-deadline request.
    """
    deadline = _ACTIVE.deadline
    if deadline is not None and deadline.expired():
        raise DeadlineExceededError(
            f"deadline of {deadline.budget_ms}ms exceeded"
        )
