"""Monte-Carlo approximate querying.

For documents whose event computation or enumeration is too heavy,
answers can be estimated by sampling worlds: each sampled world is a plain
document, the query runs on it with the ordinary XPath engine, and value
frequencies estimate the answer probabilities.  Estimates carry a
standard-error column so callers can decide whether the sample suffices
— "good is good enough" applies to evaluation effort too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..errors import QueryError
from ..pxml.model import PXDocument
from ..pxml.sampling import sample_worlds
from ..xmlkit.nodes import XElement, XText
from ..xmlkit.xpath import XPath
from .ranking import RankedAnswer, RankedItem


@dataclass(frozen=True)
class ApproximateItem:
    """One estimated answer value."""

    value: str
    estimate: float
    standard_error: float
    hits: int

    def __str__(self) -> str:
        return (
            f"{self.estimate * 100:5.1f}% ±{self.standard_error * 100:4.1f}%"
            f"  {self.value}"
        )


@dataclass
class ApproximateAnswer:
    """Sampled ranked answer with per-item standard errors."""

    items: list[ApproximateItem]
    samples: int

    def values(self) -> list[str]:
        return [item.value for item in self.items]

    def estimate_of(self, value: str) -> float:
        for item in self.items:
            if item.value == value:
                return item.estimate
        return 0.0

    def as_ranked(self) -> RankedAnswer:
        """Drop the error bars (e.g. to feed quality measures)."""
        return RankedAnswer(
            [
                RankedItem(
                    item.value,
                    Fraction(item.hits, self.samples),
                    item.hits,
                )
                for item in self.items
            ]
        )

    def as_table(self) -> str:
        if not self.items:
            return "(empty answer)"
        return "\n".join(str(item) for item in self.items)


def approximate_query(
    document: PXDocument,
    expression: str,
    *,
    samples: int = 1000,
    seed: Optional[int] = None,
) -> ApproximateAnswer:
    """Estimate the ranked answer from ``samples`` sampled worlds.

    The standard error per value is the binomial one,
    ``sqrt(p̂(1−p̂)/n)`` — exact enough for ranking decisions at a few
    hundred samples.
    """
    if samples <= 0:
        raise QueryError("sample count must be positive")
    xpath = XPath(expression)
    hits: dict[str, int] = {}
    for world in sample_worlds(document, samples, seed=seed):
        result = xpath.evaluate(world.document)
        if not isinstance(result, list):
            raise QueryError("probabilistic queries must select nodes")
        values = set()
        for node in result:
            if isinstance(node, XElement):
                value = node.text()
            elif isinstance(node, XText):
                value = node.value
            else:
                value = getattr(node, "value", "")
            if value:
                values.add(value)
        for value in values:
            hits[value] = hits.get(value, 0) + 1

    items = []
    for value, count in hits.items():
        estimate = count / samples
        error = math.sqrt(estimate * (1.0 - estimate) / samples)
        items.append(ApproximateItem(value, estimate, error, count))
    items.sort(key=lambda item: (-item.estimate, item.value))
    return ApproximateAnswer(items, samples)
