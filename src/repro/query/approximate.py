"""Monte-Carlo approximate querying.

For documents whose event computation or enumeration is too heavy,
answers can be estimated by sampling worlds: each sampled world is a plain
document, the query runs on it with the ordinary XPath engine, and value
frequencies estimate the answer probabilities.  Estimates carry a
standard-error column so callers can decide whether the sample suffices
— "good is good enough" applies to evaluation effort too.

The hybrid mode (``exact_top=k``) re-prices the top-k estimated values
exactly through the document's shared event-probability cache
(:mod:`repro.pxml.events_cache`): head-of-ranking answers — the ones
users actually read — get exact probabilities at the cost of one cached
event evaluation, while the long tail keeps its cheap sampled estimate.
"""

from __future__ import annotations

# Sampling estimates are approximate *by contract* (the paper's
# "good is good enough" applied to evaluation effort); exactness lives
# in the event kernel, and the hybrid mode re-prices the head exactly.
# impreciselint: disable-file=float-taint -- Monte-Carlo estimates and standard errors are floats by contract

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..errors import QueryError
from ..pxml.events_cache import EventProbabilityCache
from ..pxml.model import PXDocument
from ..pxml.sampling import sample_worlds
from ..xmlkit.nodes import XElement, XText
from ..xmlkit.xpath import XPath
from .ranking import RankedAnswer, RankedItem


@dataclass(frozen=True)
class ApproximateItem:
    """One estimated answer value."""

    value: str
    estimate: float
    standard_error: float
    hits: int
    exact: bool = False  # True when re-priced exactly via the event cache

    def __str__(self) -> str:
        if self.exact:
            return f"{self.estimate * 100:5.1f}% (exact)  {self.value}"
        return (
            f"{self.estimate * 100:5.1f}% ±{self.standard_error * 100:4.1f}%"
            f"  {self.value}"
        )


@dataclass
class ApproximateAnswer:
    """Sampled ranked answer with per-item standard errors."""

    items: list[ApproximateItem]
    samples: int

    def values(self) -> list[str]:
        return [item.value for item in self.items]

    def estimate_of(self, value: str) -> float:
        for item in self.items:
            if item.value == value:
                return item.estimate
        return 0.0

    def as_ranked(self) -> RankedAnswer:
        """Drop the error bars (e.g. to feed quality measures)."""
        return RankedAnswer(
            [
                RankedItem(
                    item.value,
                    Fraction(item.hits, self.samples),
                    item.hits,
                )
                for item in self.items
            ]
        )

    def as_table(self) -> str:
        if not self.items:
            return "(empty answer)"
        return "\n".join(str(item) for item in self.items)


def approximate_query(
    document: PXDocument,
    expression: str,
    *,
    samples: int = 1000,
    seed: Optional[int] = None,
    exact_top: int = 0,
    cache: Optional[EventProbabilityCache] = None,
) -> ApproximateAnswer:
    """Estimate the ranked answer from ``samples`` sampled worlds.

    The standard error per value is the binomial one,
    ``sqrt(p̂(1−p̂)/n)`` — exact enough for ranking decisions at a few
    hundred samples.

    With ``exact_top=k`` the k highest-estimate values are re-priced
    *exactly* through the event engine and the document's shared
    probability cache (``cache`` overrides which one; repeated calls on
    the same document reuse the cached answer events).
    """
    if samples <= 0:
        raise QueryError("sample count must be positive")
    if exact_top < 0:
        raise QueryError("exact_top must be non-negative")
    xpath = XPath(expression)
    hits: dict[str, int] = {}
    for world in sample_worlds(document, samples, seed=seed):
        result = xpath.evaluate(world.document)
        if not isinstance(result, list):
            raise QueryError("probabilistic queries must select nodes")
        values = set()
        for node in result:
            if isinstance(node, XElement):
                value = node.text()
            elif isinstance(node, XText):
                value = node.value
            else:
                value = getattr(node, "value", "")
            if value:
                values.add(value)
        for value in values:
            hits[value] = hits.get(value, 0) + 1

    items = []
    for value, count in hits.items():
        estimate = count / samples
        error = math.sqrt(estimate * (1.0 - estimate) / samples)
        items.append(ApproximateItem(value, estimate, error, count))
    items.sort(key=lambda item: (-item.estimate, item.value))

    if exact_top and items:
        from .engine import ProbQueryEngine  # deferred: engine imports ranking

        engine = ProbQueryEngine(document, cache=cache)
        events = engine.answer_events(expression)
        # One bulk pricing pass over the head of the ranking: the shared
        # cache orders it smallest-event-first, so the top-k occurrence
        # events factor through each other instead of re-expanding per
        # value (and land in the document's memo for the next caller).
        head = [
            item for item in items[:exact_top] if item.value in events
        ]
        exact_probs = engine.probabilities([events[item.value][0] for item in head])
        exact_by_value = {
            item.value: prob for item, prob in zip(head, exact_probs)
        }
        refined = []
        for rank, item in enumerate(items):
            exact = exact_by_value.get(item.value) if rank < exact_top else None
            if exact is not None:
                refined.append(
                    ApproximateItem(item.value, float(exact), 0.0, item.hits, True)
                )
            else:
                refined.append(item)
        refined.sort(key=lambda item: (-item.estimate, item.value))
        items = refined
    return ApproximateAnswer(items, samples)
