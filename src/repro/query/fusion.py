"""Rank fusion: one answer for a query fanned across many documents.

IMPrECISE's premise is that a dataspace is queryable *as a whole* — yet a
:class:`~repro.query.ranking.RankedAnswer` describes one document.  This
module fuses the per-document answers of a fan-out (see
:meth:`repro.dbms.service.DataspaceService.query_all`) into a single
ranked result, under two pluggable strategies:

``prob`` — probability-weighted fusion
    Each document ``d`` carries a prior weight ``w_d`` (defaulting to a
    uniform prior, normalized to sum exactly 1 — the same convention as
    :attr:`repro.core.engine.IntegrationConfig.source_weights`).  The
    fused score of a value ``v`` is the exact probability that ``v``
    occurs in the answer of a document drawn from that prior::

        score(v) = Σ_d  w_d · P_d(v ∈ answer)

``rrf`` — reciprocal rank fusion
    The classic retrieval combinator, computed in exact rationals
    (never the floats of the usual implementations)::

        score(v) = Σ_d  w_d / (k + rank_d(v))

    where ``rank_d(v)`` is ``v``'s 1-based position in document ``d``'s
    ranked answer (most probable first, ties broken by value — the
    deterministic order :class:`RankedAnswer` pins) and ``k`` is the
    usual dampening constant (default :data:`DEFAULT_RRF_K` = 60).
    Values missing from a document contribute nothing.

Every score is an exact :class:`~fractions.Fraction` end to end; this
module is in ``impreciselint``'s float-taint scope, so no float can creep
into fusion arithmetic.  Fusion is deterministic and permutation
invariant: documents are processed in sorted-name order and fused items
sort by ``(-score, value)``, so the result does not depend on the order
the per-document answers arrived in.

Each fused item keeps its provenance — which documents contributed the
value, at what local rank, with what exact local probability — so a
fused result can always be traced back to its sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Mapping, Optional, Sequence, Union

from ..errors import QueryError
from ..probability import ONE, ZERO, as_probability, format_percent, normalize
from .aggregates import AggregateDistribution
from .ranking import RankedAnswer

__all__ = [
    "DEFAULT_RRF_K",
    "FUSION_STRATEGIES",
    "DocumentContribution",
    "FusedItem",
    "FusedAnswer",
    "fusion_weights",
    "fuse_answers",
    "fuse_aggregates",
]

#: The pluggable fusion strategies :func:`fuse_answers` accepts.
FUSION_STRATEGIES = ("prob", "rrf")

#: Standard reciprocal-rank-fusion dampening constant (k in the formula
#: above); 60 is the value the retrieval literature settled on.
DEFAULT_RRF_K = 60

#: Weight values accepted by :func:`fusion_weights`: exact rationals
#: (``Fraction``, ``int``, or a string such as ``"2/3"``) pass through
#: exactly; floats are read decimally via
#: :func:`repro.probability.as_probability` and must lie in (0, 1].
WeightLike = Union[Fraction, int, str, float]


@dataclass(frozen=True)
class DocumentContribution:
    """One document's contribution to a fused value: where the value
    ranked locally (1-based) and its exact local probability."""

    document: str
    rank: int
    probability: Fraction

    def __str__(self) -> str:
        return f"{self.document}#{self.rank}"


@dataclass(frozen=True)
class FusedItem:
    """One fused answer value with its exact score and provenance
    (contributions sorted by document name)."""

    value: str
    score: Fraction
    sources: tuple[DocumentContribution, ...]


@dataclass
class FusedAnswer:
    """The fused result of a fan-out, highest score first.

    ``documents`` is the fan-out membership in the pinned sorted order
    ranks were computed under; ``weights`` the normalized per-document
    prior (sums to exactly 1); ``rrf_k`` the dampening constant used
    (``None`` unless the strategy is ``rrf``).

    ``omitted`` is the graceful-degradation marker: document names the
    fan-out selected but did not fuse because a deadline expired before
    they finished (``allow_partial`` mode — see
    :meth:`repro.dbms.service.DataspaceService.query_all`).  A partial
    answer is *explicitly* partial, never silently smaller: every fused
    item is still exact, and ``partial`` is how callers must check
    before treating the result as the whole dataspace's answer.
    """

    strategy: str
    items: list[FusedItem] = field(default_factory=list)
    documents: tuple[str, ...] = ()
    weights: dict[str, Fraction] = field(default_factory=dict)
    rrf_k: Optional[Fraction] = None
    omitted: tuple[str, ...] = ()

    @property
    def partial(self) -> bool:
        """Whether any selected document was cut off by the deadline."""
        return bool(self.omitted)

    def __iter__(self) -> Iterator[FusedItem]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def values(self) -> list[str]:
        """Fused answer values, best first."""
        return [item.value for item in self.items]

    def score_of(self, value: str) -> Fraction:
        """The fused score of ``value`` (0 when absent)."""
        for item in self.items:
            if item.value == value:
                return item.score
        return ZERO

    def sources_of(self, value: str) -> tuple[DocumentContribution, ...]:
        """Provenance of ``value`` (empty when absent)."""
        for item in self.items:
            if item.value == value:
                return item.sources
        return ()

    def top(self, count: int) -> list[FusedItem]:
        return self.items[:count]

    def as_table(self) -> str:
        """Display table: score, value, contributing ``document#rank``
        provenance.  ``prob`` scores are probabilities and render as the
        paper's percentages; ``rrf`` scores render as exact fractions."""
        if not self.items:
            if self.partial:
                return f"(empty answer; omitted: {', '.join(self.omitted)})"
            return "(empty answer)"
        lines = []
        for item in self.items:
            if self.strategy == "prob":
                score = format_percent(item.score)
            else:
                score = str(item.score)
            origin = ", ".join(str(source) for source in item.sources)
            lines.append(f"{score:>4} {item.value}  [{origin}]")
        if self.partial:
            lines.append(
                f"(partial: deadline omitted {', '.join(self.omitted)})"
            )
        return "\n".join(lines)


def _as_weight(value: WeightLike, document: str) -> Fraction:
    """Coerce one prior weight to a positive exact rational."""
    if isinstance(value, bool):
        raise QueryError(f"weight for {document!r} must be a number, not a bool")
    if isinstance(value, (int, Fraction)):
        weight = Fraction(value)
    elif isinstance(value, str):
        try:
            weight = Fraction(value)
        except (ValueError, ZeroDivisionError):
            raise QueryError(
                f"weight for {document!r} must be rational, got {value!r}"
            ) from None
    else:
        # Floats (and anything else numeric) go through the library's
        # one decimal-reading coercion; (0, 1] is enough for a prior.
        try:
            weight = as_probability(value, allow_zero=False)
        except Exception:
            raise QueryError(
                f"weight for {document!r} must be rational, got {value!r}"
            ) from None
    if weight <= 0:
        raise QueryError(
            f"weight for {document!r} must be positive, got {value!r}"
        )
    return weight


def fusion_weights(
    documents: Sequence[str],
    weights: Optional[Mapping[str, WeightLike]] = None,
) -> dict[str, Fraction]:
    """The normalized per-document prior for a fan-out.

    ``weights`` maps document names to relative weights (see
    :data:`WeightLike`); unnamed documents default to 1, so a sparse
    mapping boosts or dampens a few sources against a uniform rest.
    Naming a document outside the fan-out is an error (almost certainly
    a typo).  The result sums to exactly 1 — the same exact
    normalization :func:`repro.probability.normalize` gives integration
    source weights.

    >>> fusion_weights(["a", "b"], {"a": 3})
    {'a': Fraction(3, 4), 'b': Fraction(1, 4)}
    """
    names = list(documents)
    if not names:
        raise QueryError("cannot fuse over an empty document selection")
    if len(set(names)) != len(names):
        raise QueryError(f"duplicate documents in fan-out selection: {names!r}")
    raw: dict[str, Fraction] = {name: ONE for name in names}
    if weights is not None:
        unknown = sorted(set(weights) - set(names))
        if unknown:
            raise QueryError(
                f"weights name documents outside the fan-out: {unknown!r}"
            )
        for name, value in weights.items():
            raw[name] = _as_weight(value, name)
    normalized = normalize(raw[name] for name in names)
    return dict(zip(names, normalized))


def _as_rank_offset(value: Union[int, str, Fraction]) -> Fraction:
    """Coerce the RRF ``k`` constant to a non-negative exact rational.

    Floats are rejected outright — ``k`` feeds exact score arithmetic,
    and ``"121/2"`` says what ``60.5`` only approximates."""
    if isinstance(value, bool):
        raise QueryError(f"rrf k must be a number, not {value!r}")
    if isinstance(value, (int, Fraction)):
        k = Fraction(value)
    elif isinstance(value, str):
        try:
            k = Fraction(value)
        except (ValueError, ZeroDivisionError):
            raise QueryError(f"rrf k must be rational, got {value!r}") from None
    else:
        raise QueryError(
            f"rrf k must be an int, Fraction or rational string, got {value!r}"
        )
    if k < 0:
        raise QueryError(f"rrf k must be >= 0, got {value!r}")
    return k


def fuse_answers(
    answers: Mapping[str, RankedAnswer],
    *,
    strategy: str = "prob",
    weights: Optional[Mapping[str, WeightLike]] = None,
    rrf_k: Union[int, str, Fraction] = DEFAULT_RRF_K,
) -> FusedAnswer:
    """Fuse per-document ranked answers into one :class:`FusedAnswer`.

    ``answers`` maps document names to their
    :class:`~repro.query.ranking.RankedAnswer` for one query; iteration
    order does not matter (documents are processed sorted by name).
    ``strategy`` is one of :data:`FUSION_STRATEGIES`; ``weights`` the
    optional per-document prior (see :func:`fusion_weights`); ``rrf_k``
    the dampening constant, used only by ``rrf``.

    >>> from repro.query.ranking import RankedAnswer, RankedItem
    >>> fused = fuse_answers({
    ...     "a": RankedAnswer([RankedItem("x", Fraction(1))]),
    ...     "b": RankedAnswer([RankedItem("x", Fraction(1, 2))]),
    ... })
    >>> fused.score_of("x")
    Fraction(3, 4)
    """
    if strategy not in FUSION_STRATEGIES:
        raise QueryError(
            f"unknown fusion strategy {strategy!r}"
            f" (expected one of {', '.join(FUSION_STRATEGIES)})"
        )
    names = sorted(answers)
    prior = fusion_weights(names, weights)
    k = _as_rank_offset(rrf_k) if strategy == "rrf" else None
    scores: dict[str, Fraction] = {}
    sources: dict[str, list[DocumentContribution]] = {}
    for name in names:
        weight = prior[name]
        for rank, item in enumerate(answers[name].items, start=1):
            if strategy == "prob":
                gain = weight * item.probability
            else:
                assert k is not None
                depth = k + rank  # > 0: k >= 0 and ranks are 1-based
                gain = weight * Fraction(depth.denominator, depth.numerator)
            scores[item.value] = scores.get(item.value, ZERO) + gain
            sources.setdefault(item.value, []).append(
                DocumentContribution(name, rank, item.probability)
            )
    items = [
        FusedItem(value, score, tuple(sources[value]))
        for value, score in scores.items()
    ]
    items.sort(key=lambda item: (-item.score, item.value))
    return FusedAnswer(
        strategy=strategy,
        items=items,
        documents=tuple(names),
        weights=prior,
        rrf_k=k,
    )


def _aggregate_sort_key(
    entry: tuple[Optional[Union[int, Fraction]], Fraction]
) -> tuple[int, Fraction]:
    value = entry[0]
    return (0, ZERO) if value is None else (1, Fraction(value))


def fuse_aggregates(
    distributions: Mapping[str, AggregateDistribution],
    *,
    weights: Optional[Mapping[str, WeightLike]] = None,
) -> AggregateDistribution:
    """Fuse per-document aggregate distributions into their exact
    mixture under the per-document prior: ``P(v) = Σ_d w_d · P_d(v)``.

    This is the distribution of the aggregate over a document drawn
    from the prior — total mass exactly 1 when every input sums to 1.
    Keys are returned in pinned order (the no-match ``None`` outcome
    first, then ascending values).

    >>> fuse_aggregates({"a": {2: Fraction(1)}, "b": {3: Fraction(1)}})
    {2: Fraction(1, 2), 3: Fraction(1, 2)}
    """
    names = sorted(distributions)
    prior = fusion_weights(names, weights)
    mixture: AggregateDistribution = {}
    for name in names:
        weight = prior[name]
        for value, probability in distributions[name].items():
            mixture[value] = mixture.get(value, ZERO) + weight * probability
    return dict(sorted(mixture.items(), key=_aggregate_sort_key))
