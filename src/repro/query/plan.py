"""Compiled query plans for probabilistic XPath evaluation.

Parsing and re-validating an XPath on every execution wastes work that is
identical across runs, and defers "this query has no possible-worlds
semantics" errors to evaluation time.  A :class:`QueryPlan` front-loads
everything that is static:

* **validation** — the whole AST is checked once at compile time against
  the probabilistically-supported subset (axes, functions, operators,
  variable scoping); unsupported constructs raise
  :class:`~repro.errors.QueryError` *before* any document is touched;
* **pre-resolved axis steps** — every location step is resolved to a
  :class:`StepPlan` whose node matcher is specialized for its test kind
  (named element/attribute, wildcard, ``text()``, ``node()``), so the
  per-candidate hot loop does one precomputed check instead of
  re-dispatching on AST node types;
* **predicate event templates** — each step's predicates are kept as
  validated sub-ASTs ready to be instantiated into boolean events at each
  candidate node (instantiation must happen per node; validation must
  not);
* **static-structure fingerprint** — a canonical hashable form of the
  AST, independent of surface syntax (whitespace, redundant syntax), used
  by :class:`repro.pxml.events_cache.EventProbabilityCache` to key
  per-document answer caches: two engines compiling ``//a/b`` and
  ``//a/b`` (or the same plan reused) share one cached answer-event map.

Plans are immutable and document-independent: compile once, run against
any number of documents, from any number of engines.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..errors import QueryError
from ..pxml.model import PXElement, PXText
from ..xmlkit.xpath.ast import (
    AXES,
    BinaryOp,
    FunctionCall,
    Literal,
    NameTest,
    Negate,
    NodeTest,
    Number,
    Path,
    Quantified,
    Step,
    TextTest,
    Union as UnionExpr,
    VarRef,
    XPathNode,
)
from ..xmlkit.xpath.parser import compile_xpath

__all__ = ["PAttr", "StepPlan", "QueryPlan", "compile_plan"]

#: Functions with a possible-worlds compilation in the engine.
SUPPORTED_FUNCTIONS = frozenset(
    {"not", "true", "false", "contains", "starts-with", "ends-with"}
)

#: Comparison operators with an event compilation; ``and``/``or`` are
#: handled structurally.
SUPPORTED_COMPARISONS = frozenset({"=", "!=", "<", "<=", ">", ">="})


@dataclass(frozen=True)
class PAttr:
    """Attribute pseudo-node of a probabilistic element."""

    owner: PXElement
    name: str
    value: str


def _make_matcher(test: object) -> Callable[[object], bool]:
    """Specialize the node test into a single-call matcher."""
    if isinstance(test, NodeTest):
        return lambda node: not isinstance(node, PAttr)
    if isinstance(test, TextTest):
        return lambda node: isinstance(node, PXText)
    if isinstance(test, NameTest):
        if test.is_wildcard:
            return lambda node: isinstance(node, (PXElement, PAttr))
        name = test.name
        return lambda node: (
            node.tag == name
            if isinstance(node, PXElement)
            else isinstance(node, PAttr) and node.name == name
        )
    raise QueryError(f"unknown node test {test!r}")


@dataclass(frozen=True)
class StepPlan:
    """One pre-resolved location step.

    ``matches`` is the specialized node matcher; ``predicates`` are the
    validated predicate event templates, instantiated per candidate node
    by the engine.
    """

    axis: str
    test: object
    predicates: tuple[XPathNode, ...]
    matches: Callable[[object], bool]

    @classmethod
    def resolve(cls, step: Step) -> "StepPlan":
        if step.axis not in AXES:
            raise QueryError(
                f"unsupported axis {step.axis!r} over probabilistic XML"
            )
        return cls(step.axis, step.test, step.predicates, _make_matcher(step.test))


class QueryPlan:
    """A compiled, reusable, document-independent query.

    Use :func:`compile_plan` (or ``QueryEngine.compile``) rather than
    constructing directly.
    """

    __slots__ = ("expression", "ast", "fingerprint", "_steps", "_digest")

    def __init__(self, expression: Optional[str], ast: XPathNode) -> None:
        self.expression = expression
        self.ast = ast
        _validate(ast, scope=frozenset(), as_nodeset=True)
        steps: dict[Step, StepPlan] = {}
        _collect_steps(ast, steps)
        self._steps = steps
        self.fingerprint: tuple[object, ...] = _fingerprint(ast)
        self._digest: Optional[str] = None

    @property
    def fingerprint_digest(self) -> str:
        """Hex digest of the structural fingerprint — the plan's
        *persistent* identity.

        **Stability contract**: the digest is a SHA-256 over a canonical
        byte encoding of :attr:`fingerprint` (which contains only axis
        names, test names, operators, literals and tuple shapes — no
        object ids, no hash randomization), so it is stable across
        processes, interpreter restarts and platforms.  On-disk caches
        (:mod:`repro.dbms.cache_store`) key persisted answers by it;
        changing the fingerprint encoding is a cache-format break and
        must bump :data:`repro.dbms.cache_store.SCHEMA_VERSION`.
        """
        digest = self._digest
        if digest is None:
            digest = hashlib.sha256(
                _encode_fingerprint(self.fingerprint).encode("utf-8")
            ).hexdigest()
            self._digest = digest
        return digest

    def step(self, step: Step) -> StepPlan:
        """The pre-resolved plan of one of this query's location steps."""
        plan = self._steps.get(step)
        if plan is None:  # step injected from outside this plan's AST
            plan = StepPlan.resolve(step)
        return plan

    @property
    def step_count(self) -> int:
        return len(self._steps)

    def __repr__(self) -> str:
        shown = self.expression if self.expression is not None else self.ast
        return f"QueryPlan({shown!r}, steps={len(self._steps)})"


def compile_plan(expression: Union[str, XPathNode, QueryPlan]) -> QueryPlan:
    """Compile an XPath string or AST into a :class:`QueryPlan`.

    Idempotent on plans.  Raises :class:`~repro.errors.QueryError` when
    the query falls outside the probabilistically-supported subset
    (positional predicates, arithmetic, unknown functions, unbound
    variables, unsupported axes).

    >>> plan = compile_plan("//person/tel")
    >>> plan.fingerprint == compile_plan("//person/tel").fingerprint
    True
    """
    if isinstance(expression, QueryPlan):
        return expression
    if isinstance(expression, str):
        return QueryPlan(expression, compile_xpath(expression))
    if isinstance(expression, XPathNode):
        return QueryPlan(None, expression)
    raise QueryError(
        f"cannot compile {type(expression).__name__} into a query plan"
    )


# -- compile-time validation ---------------------------------------------------

def _validate(ast: XPathNode, scope: frozenset[str], as_nodeset: bool) -> None:
    """Check ``ast`` against the supported subset.

    ``scope`` carries the variables bound by enclosing quantifiers;
    ``as_nodeset`` distinguishes node-selecting positions from predicate
    positions (the sets of legal constructs differ).
    """
    if isinstance(ast, Path):
        if ast.base is not None:
            _validate(ast.base, scope, as_nodeset=True)
        for step in ast.steps:
            if step.axis not in AXES:
                raise QueryError(
                    f"unsupported axis {step.axis!r} over probabilistic XML"
                )
            for predicate in step.predicates:
                _validate_predicate(predicate, scope)
        return
    if isinstance(ast, UnionExpr):
        _validate(ast.left, scope, as_nodeset=True)
        _validate(ast.right, scope, as_nodeset=True)
        return
    if isinstance(ast, VarRef):
        if ast.name not in scope:
            raise QueryError(f"unbound variable ${ast.name}")
        return
    if as_nodeset:
        raise QueryError(
            f"expression does not select nodes: {type(ast).__name__}"
        )
    _validate_predicate(ast, scope)


def _validate_predicate(ast: XPathNode, scope: frozenset[str]) -> None:
    if isinstance(ast, (Path, UnionExpr, VarRef)):
        _validate(ast, scope, as_nodeset=True)
        return
    if isinstance(ast, Literal):
        return
    if isinstance(ast, Number):
        raise QueryError(
            "positional predicates have no possible-worlds semantics here"
        )
    if isinstance(ast, Negate):
        raise QueryError("arithmetic is not supported in probabilistic queries")
    if isinstance(ast, BinaryOp):
        if ast.op in ("and", "or"):
            _validate_predicate(ast.left, scope)
            _validate_predicate(ast.right, scope)
            return
        if ast.op in SUPPORTED_COMPARISONS:
            _validate_operand(ast.left, scope)
            _validate_operand(ast.right, scope)
            return
        raise QueryError(
            f"operator {ast.op!r} is not supported in probabilistic queries"
        )
    if isinstance(ast, FunctionCall):
        if ast.name not in SUPPORTED_FUNCTIONS:
            raise QueryError(
                f"function {ast.name}() is not supported in probabilistic queries"
            )
        if ast.name == "not":
            if len(ast.args) != 1:
                raise QueryError("not() takes exactly one argument")
            _validate_predicate(ast.args[0], scope)
        elif ast.name in ("true", "false"):
            if ast.args:
                raise QueryError(f"{ast.name}() takes no arguments")
        else:
            if len(ast.args) != 2:
                raise QueryError(f"{ast.name}() takes exactly two arguments")
            for arg in ast.args:
                _validate_operand(arg, scope)
        return
    if isinstance(ast, Quantified):
        if ast.kind not in ("some", "every"):
            raise QueryError(f"unknown quantifier {ast.kind!r}")
        _validate(ast.sequence, scope, as_nodeset=True)
        _validate_predicate(ast.condition, scope | {ast.variable})
        return
    raise QueryError(f"unsupported predicate {type(ast).__name__}")


def _validate_operand(ast: XPathNode, scope: frozenset[str]) -> None:
    if isinstance(ast, (Literal, Number)):
        return
    if isinstance(ast, (Path, UnionExpr, VarRef)):
        _validate(ast, scope, as_nodeset=True)
        return
    raise QueryError(f"unsupported comparison operand {type(ast).__name__}")


# -- step collection -----------------------------------------------------------

def _collect_steps(ast: XPathNode, into: dict[Step, StepPlan]) -> None:
    if isinstance(ast, Path):
        if ast.base is not None:
            _collect_steps(ast.base, into)
        for step in ast.steps:
            if step not in into:
                into[step] = StepPlan.resolve(step)
            for predicate in step.predicates:
                _collect_steps(predicate, into)
    elif isinstance(ast, UnionExpr):
        _collect_steps(ast.left, into)
        _collect_steps(ast.right, into)
    elif isinstance(ast, BinaryOp):
        _collect_steps(ast.left, into)
        _collect_steps(ast.right, into)
    elif isinstance(ast, FunctionCall):
        for arg in ast.args:
            _collect_steps(arg, into)
    elif isinstance(ast, Negate):
        _collect_steps(ast.operand, into)
    elif isinstance(ast, Quantified):
        _collect_steps(ast.sequence, into)
        _collect_steps(ast.condition, into)


# -- fingerprints --------------------------------------------------------------

def _fingerprint(ast: XPathNode) -> tuple[object, ...]:
    """A canonical, hashable form of the AST's static structure.

    Stable across process runs for string-compiled queries (it contains
    only axis names, test names, operators, literals and shapes), so it
    doubles as a persistent cache key."""
    if isinstance(ast, Path):
        return (
            "path",
            ast.absolute,
            _fingerprint(ast.base) if ast.base is not None else None,
            tuple(
                (
                    "step",
                    step.axis,
                    _test_fingerprint(step.test),
                    tuple(_fingerprint(p) for p in step.predicates),
                )
                for step in ast.steps
            ),
        )
    if isinstance(ast, UnionExpr):
        return ("union", _fingerprint(ast.left), _fingerprint(ast.right))
    if isinstance(ast, VarRef):
        return ("var", ast.name)
    if isinstance(ast, Literal):
        return ("lit", ast.value)
    if isinstance(ast, Number):
        return ("num", ast.value)
    if isinstance(ast, BinaryOp):
        return ("op", ast.op, _fingerprint(ast.left), _fingerprint(ast.right))
    if isinstance(ast, Negate):
        return ("neg", _fingerprint(ast.operand))
    if isinstance(ast, FunctionCall):
        return ("fn", ast.name, tuple(_fingerprint(a) for a in ast.args))
    if isinstance(ast, Quantified):
        return (
            "quant",
            ast.kind,
            ast.variable,
            _fingerprint(ast.sequence),
            _fingerprint(ast.condition),
        )
    raise QueryError(f"cannot fingerprint {type(ast).__name__}")


def _encode_fingerprint(value: object) -> str:
    """Canonical, unambiguous string encoding of a fingerprint tuple.

    Length-prefixed strings (no escaping ambiguity), explicit type tags,
    ``repr`` for numbers (exact for floats in Python ≥3.1).  Only the
    types that :func:`_fingerprint` can emit are accepted — anything else
    is a programming error, surfaced loudly rather than hashed lossily.
    """
    if value is None:
        return "N"
    if value is True:
        return "T"
    if value is False:
        return "F"
    if isinstance(value, str):
        return f"s{len(value)}:{value}"
    if isinstance(value, float):
        return f"f{value!r}"
    if isinstance(value, int):
        return f"i{value!r}"
    if isinstance(value, tuple):
        return "(" + ",".join(_encode_fingerprint(item) for item in value) + ")"
    raise QueryError(
        f"cannot encode fingerprint component {type(value).__name__}"
    )


def _test_fingerprint(test: object) -> tuple[object, ...]:
    if isinstance(test, NameTest):
        return ("name", test.name)
    if isinstance(test, TextTest):
        return ("text",)
    if isinstance(test, NodeTest):
        return ("node",)
    raise QueryError(f"unknown node test {test!r}")
