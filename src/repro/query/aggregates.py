"""Exact distributions of aggregate queries over probabilistic XML.

A count query (``count(//movie)``) has no single answer on an uncertain
document — it has a *distribution*.  For structural counts (no predicates
coupling distinct subtrees) the distribution is computable exactly by a
bottom-up convolution over the tree, without enumerating worlds:

* a text node contributes a constant;
* an element contributes its own indicator plus the *convolution* of its
  children's distributions (children are independent given the element
  exists);
* a probability node contributes the *mixture* of its possibilities'
  distributions.

For queries whose predicates couple subtrees, use
:func:`count_distribution_enumerated` (the per-world definition) — the
test suite checks both agree wherever both apply.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Union

from ..errors import QueryError
from ..probability import ONE, ZERO
from ..pxml.events_cache import EventProbabilityCache, cache_for
from ..pxml.model import PXDocument, PXElement, PXText, Possibility, ProbNode
from ..pxml.worlds import DEFAULT_WORLD_LIMIT, iter_worlds
from ..xmlkit.xpath import XPath

#: A distribution over non-negative integer counts.
CountDistribution = dict[int, Fraction]


def _convolve(a: CountDistribution, b: CountDistribution) -> CountDistribution:
    # Point-mass factors are the overwhelmingly common case (certain
    # subtrees contribute {k: 1}); shifting the other factor's keys skips
    # the quadratic loop and the Fraction multiplications by one.
    if len(a) == 1:
        (count_a, prob_a), = a.items()
        if prob_a == ONE:
            return {count_a + count_b: prob_b for count_b, prob_b in b.items()}
    if len(b) == 1:
        (count_b, prob_b), = b.items()
        if prob_b == ONE:
            return {count_a + count_b: prob_a for count_a, prob_a in a.items()}
    result: CountDistribution = {}
    for count_a, prob_a in a.items():
        for count_b, prob_b in b.items():
            key = count_a + count_b
            result[key] = result.get(key, ZERO) + prob_a * prob_b
    return result


def _mixture(parts: list[tuple[Fraction, CountDistribution]]) -> CountDistribution:
    result: CountDistribution = {}
    for weight, distribution in parts:
        for count, prob in distribution.items():
            result[count] = result.get(count, ZERO) + weight * prob
    return result


class _StructuralCounter:
    """Counts elements matching (tag, optional leaf-text equality) — the
    fragment with exact tree-convolution semantics."""

    def __init__(self, tag: str, text: Optional[str] = None):
        self.tag = tag
        self.text = text

    def matches(self, element: PXElement) -> Optional[bool]:
        if self.tag != "*" and element.tag != self.tag:
            return False
        if self.text is None:
            return True
        return None  # needs the text realisation — handled in traversal

    def count_element(self, element: PXElement) -> CountDistribution:
        own: CountDistribution
        verdict = self.matches(element)
        if verdict is False:
            own = {0: ONE}
        elif verdict is True:
            own = {1: ONE}
        else:
            own = self._text_indicator(element)
        total = own
        for prob_child in element.children:
            total = _convolve(total, self.count_prob(prob_child))
        return total

    def _text_indicator(self, element: PXElement) -> CountDistribution:
        """P(element's string value equals the target text) for leaf-ish
        elements: mixture over the element's direct text choices."""
        hit = ZERO
        miss = ZERO
        if not element.children:
            return {1 if self.text == "" else 0: ONE}
        if len(element.children) != 1:
            raise QueryError(
                "text-matching counts support single-choice leaves only;"
                " use count_distribution_enumerated for general shapes"
            )
        for possibility in element.children[0].possibilities:
            texts = [
                child.value
                for child in possibility.children
                if isinstance(child, PXText)
            ]
            if any(isinstance(c, PXElement) for c in possibility.children):
                raise QueryError(
                    "text-matching counts support leaf elements only;"
                    " use count_distribution_enumerated for general shapes"
                )
            value = "".join(texts).strip()
            if value == self.text:
                hit += possibility.prob
            else:
                miss += possibility.prob
        distribution: CountDistribution = {}
        if miss > 0:
            distribution[0] = miss
        if hit > 0:
            distribution[1] = hit
        return distribution

    def count_prob(self, node: ProbNode) -> CountDistribution:
        parts = []
        for possibility in node.possibilities:
            branch: CountDistribution = {0: ONE}
            for child in possibility.children:
                if isinstance(child, PXElement):
                    branch = _convolve(branch, self.count_element(child))
            parts.append((possibility.prob, branch))
        return _mixture(parts)


def count_distribution(
    document: PXDocument,
    tag: str,
    *,
    text: Optional[str] = None,
    cache: Optional[EventProbabilityCache] = None,
    use_cache: bool = True,
) -> CountDistribution:
    """Exact distribution of ``count(//tag)`` (optionally of elements whose
    text equals ``text``), computed by tree convolution.

    Results are memoized in the document's shared
    :class:`~repro.pxml.events_cache.EventProbabilityCache` (same table
    the query engine uses, same invalidation rules; distributions live
    in the aggregate side table, which the memo's entry bound does not
    evict), so repeated aggregate queries — dashboards polling the same
    counts — cost one convolution per document lifetime.  Pass
    ``use_cache=False`` to force recomputation.

    >>> from repro.pxml import certain_document
    >>> from repro.xmlkit import parse_document
    >>> doc = certain_document(parse_document("<r><m/><m/></r>"))
    >>> count_distribution(doc, "m")
    {2: Fraction(1, 1)}
    """
    if cache is None and use_cache:
        cache = cache_for(document)
    key = ("count", tag, text)
    if cache is not None:
        cached = cache.aggregate(document, key)
        if cached is not None:
            return dict(cached)
    counter = _StructuralCounter(tag, text)
    distribution = dict(sorted(counter.count_prob(document.root).items()))
    if cache is not None:
        cache.store_aggregate(document, key, distribution)
    return dict(distribution)


def count_distribution_enumerated(
    document: PXDocument,
    expression: str,
    *,
    limit: Optional[int] = DEFAULT_WORLD_LIMIT,
) -> CountDistribution:
    """Distribution of ``count(<expression>)`` by per-world evaluation —
    the reference semantics, supporting arbitrary XPath."""
    xpath = XPath(expression)
    distribution: CountDistribution = {}
    for world in iter_worlds(document, limit=limit):
        result = xpath.evaluate(world.document)
        if not isinstance(result, list):
            raise QueryError("count queries must select nodes")
        key = len(result)
        distribution[key] = distribution.get(key, ZERO) + world.probability
    return dict(sorted(distribution.items()))


def expected_count(distribution: CountDistribution) -> Fraction:
    """Mean of a count distribution."""
    return sum((Fraction(count) * prob for count, prob in distribution.items()), ZERO)


def count_quantile(distribution: CountDistribution, quantile: Fraction) -> int:
    """Smallest count c with P(count ≤ c) ≥ quantile."""
    if not ZERO <= quantile <= ONE:
        raise QueryError(f"quantile {quantile} outside [0, 1]")
    cumulative = ZERO
    last = 0
    for count in sorted(distribution):
        cumulative += distribution[count]
        last = count
        if cumulative >= quantile:
            return count
    return last
